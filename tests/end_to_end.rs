//! Cross-crate integration tests through the public facade: topology →
//! fabric → manager → database, compared against ground truth.

use advanced_switching::prelude::*;
use advanced_switching::topo;
use std::collections::BTreeSet;

fn discovered_dsns(bench: &Bench) -> BTreeSet<u64> {
    bench.db().devices().map(|d| d.info.dsn).collect()
}

fn truth_dsns(t: &Topology) -> BTreeSet<u64> {
    t.nodes()
        .map(|(id, _)| advanced_switching::fabric::DSN_BASE | u64::from(id.0))
        .collect()
}

#[test]
fn every_table1_quick_topology_is_fully_discovered_by_every_algorithm() {
    for spec in Table1::quick() {
        let t = spec.build();
        for alg in Algorithm::all() {
            let bench = Bench::start(&t, &Scenario::new(alg), &[]);
            assert_eq!(
                discovered_dsns(&bench),
                truth_dsns(&t),
                "{} with {alg}",
                spec.name()
            );
            assert_eq!(
                bench.db().link_count(),
                t.links().len(),
                "{} with {alg}: link count",
                spec.name()
            );
        }
    }
}

#[test]
fn large_instances_fully_discovered_by_each_algorithm() {
    // One large instance per algorithm, sized so the whole test stays
    // debug-mode friendly: 512-device mesh for the packet-serial walk,
    // a full 3-level 8-ary fat-tree, and a 512-switch irregular fabric
    // for the parallel engine (which peaks above a thousand outstanding
    // requests there).
    let cases = [
        (Algorithm::SerialPacket, Table1::Mesh(16)),
        (Algorithm::SerialDevice, Table1::FatTree(8, 3)),
        (Algorithm::Parallel, Table1::Irregular(512)),
    ];
    for (alg, spec) in cases {
        let t = spec.build();
        let bench = Bench::start(&t, &Scenario::new(alg), &[]);
        assert_eq!(
            discovered_dsns(&bench),
            truth_dsns(&t),
            "{} with {alg}",
            spec.name()
        );
        let run = bench.last_run();
        assert_eq!(run.devices_found, t.node_count(), "{alg} device count");
        assert_eq!(run.timeouts, 0, "{alg} clean run");
        assert!(run.peak_outstanding >= 1, "{alg} tracked occupancy");
    }
}

#[test]
fn discovery_is_deterministic() {
    let t = Table1::Torus(4).build();
    let collect = || {
        let bench = Bench::start(&t, &Scenario::new(Algorithm::Parallel).with_seed(99), &[]);
        let run = bench.last_run();
        (
            run.discovery_time(),
            run.requests_sent,
            run.bytes_sent,
            discovered_dsns(&bench),
        )
    };
    let a = collect();
    let b = collect();
    assert_eq!(a, b, "identical seeds must give identical runs");
}

#[test]
fn change_experiment_is_reproducible_and_correct() {
    let t = topo::mesh(4, 4).topology;
    let s = Scenario::new(Algorithm::SerialDevice).with_seed(1234);
    let (run1, active1) = change_experiment(&t, &s, true);
    let (run2, active2) = change_experiment(&t, &s, true);
    assert_eq!(run1.discovery_time(), run2.discovery_time());
    assert_eq!(active1, active2);
    assert_eq!(run1.devices_found, active1);
}

#[test]
fn per_algorithm_request_counts_are_similar() {
    // The paper: "the amount of discovery packets employed by the serial
    // and parallel discovery algorithms is very similar".
    let t = topo::mesh(4, 4).topology;
    let mut counts = Vec::new();
    for alg in Algorithm::all() {
        let bench = Bench::start(&t, &Scenario::new(alg), &[]);
        counts.push(bench.last_run().requests_sent);
    }
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    assert!(
        max / min < 1.05,
        "request counts diverge across algorithms: {counts:?}"
    );
}

#[test]
fn fm_bytes_scale_with_fabric_size() {
    let small = Bench::start(
        &topo::mesh(3, 3).topology,
        &Scenario::new(Algorithm::Parallel),
        &[],
    );
    let large = Bench::start(
        &topo::mesh(6, 6).topology,
        &Scenario::new(Algorithm::Parallel),
        &[],
    );
    let rs = small.last_run();
    let rl = large.last_run();
    assert!(rl.bytes_sent > rs.bytes_sent * 3);
    assert!(rl.bytes_received > rs.bytes_received * 3);
    // Completions with data outweigh requests.
    assert!(rs.bytes_received > rs.bytes_sent);
}

#[test]
fn multi_port_endpoint_host_probes_all_its_ports() {
    // A 2-port FM endpoint attached to two disjoint switches must
    // discover both sides.
    let mut t = Topology::new("dual-homed");
    let fm_ep = t.add_endpoint_with_ports(2, "fm");
    let sw_a = t.add_switch(16, "swA");
    let sw_b = t.add_switch(16, "swB");
    t.connect(fm_ep, 0, sw_a, 0).unwrap();
    t.connect(fm_ep, 1, sw_b, 0).unwrap();
    let ep_a = t.add_endpoint("epA");
    let ep_b = t.add_endpoint("epB");
    t.connect(sw_a, 1, ep_a, 0).unwrap();
    t.connect(sw_b, 1, ep_b, 0).unwrap();
    // Note: without a switch-to-switch link the two sides are only
    // reachable through the FM's two ports.
    let bench = Bench::start(&t, &Scenario::new(Algorithm::Parallel), &[]);
    assert_eq!(bench.db().device_count(), 5);
}

#[test]
fn spec_pool_mode_discovers_what_it_can_address() {
    // Run discovery with the strict 31-bit pool on a fabric whose far
    // corners need more turn bits: the FM must finish (no hang) and
    // discover at least the addressable region.
    let t = topo::mesh(8, 8).topology;
    let mut fabric = Fabric::new(&t, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let fm_node = topo::default_fm_endpoint(&t).unwrap();
    let fm = DevId(fm_node.0);
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.pool_capacity = advanced_switching::proto::SPEC_POOL_BITS;
    fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    let db = agent.db().expect("discovery terminated");
    let spec = topo::spec_reachability(&t, fm_node);
    // Everything within 7 switch hops (31/4 bits) is found; the rest is
    // not addressable. BFS layering means the discovered set is at least
    // the spec-addressable set.
    assert!(db.device_count() >= spec.within_spec);
    assert!(db.device_count() < t.node_count());
}

#[test]
fn counters_balance_after_a_clean_discovery() {
    let t = topo::mesh(4, 4).topology;
    let bench = Bench::start(&t, &Scenario::new(Algorithm::Parallel), &[]);
    let counters = bench.fabric.counters();
    assert_eq!(counters.total_dropped(), 0, "clean run must not drop");
    let run = bench.last_run();
    assert_eq!(run.timeouts, 0);
    assert_eq!(run.requests_sent, run.responses_received);
    // Every FM request was injected and delivered (plus replies).
    assert!(counters.delivered >= 2 * run.requests_sent);
}
