//! The grand tour: one fabric lifetime exercising every subsystem in
//! sequence — bring-up, election, discovery, PI-5 configuration, path
//! distribution, data traffic over distributed routes, multicast, a
//! switch failure with failover of the manager itself, and re-discovery
//! by the promoted secondary.

use advanced_switching::core::{
    decode_route_table, fm::StandbyConfig, plan_multicast, role_of, Claim, DiscoveryTrigger,
    DistributedRole, FmRole, TOKEN_CONFIGURE_MCAST,
};
use advanced_switching::fabric::DSN_BASE;
use advanced_switching::prelude::*;
use advanced_switching::proto::{CapabilityAddr, CAP_ROUTE_TABLE};
use advanced_switching::topo::{shortest_route, torus};
use std::any::Any;

#[derive(Default)]
struct Counting {
    data: u32,
    mcast: u32,
    inject: Vec<(u8, Packet)>,
}

impl FabricAgent for Counting {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx, p: Packet) {
        match p.payload {
            Payload::Data { .. } => self.data += 1,
            Payload::Mcast { .. } => self.mcast += 1,
            _ => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx, _t: u64) {
        for (port, pkt) in self.inject.drain(..) {
            ctx.send(port, pkt);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn full_lifecycle() {
    let g = torus(4, 4);
    let topo = &g.topology;
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(500_000_000);

    // ---- Phase 1: staggered bring-up ---------------------------------
    fabric.activate_all(SimDuration::from_ns(200));
    fabric.run_until_idle();

    // ---- Phase 2: election by claim walk ------------------------------
    // Two contenders; both walk the fabric with claim partitioning.
    let cand_a = DevId(g.endpoint_at(0, 0).0);
    let cand_b = DevId(g.endpoint_at(2, 2).0);
    for dev in [cand_a, cand_b] {
        let mut cfg =
            FmConfig::new(Algorithm::Parallel).with_distributed(DistributedRole::Primary {
                expected_reports: 0,
            });
        cfg.auto_rediscover = false;
        fabric.set_agent(dev, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(dev, SimDuration::from_us(1), TOKEN_START_DISCOVERY);
    }
    fabric.run_until_idle();
    let dsn = |d: DevId| DSN_BASE | u64::from(d.0);
    let claim = |d: DevId| Claim::new(0, dsn(d));
    let rivals_a: Vec<Claim> = fabric
        .agent_as::<FmAgent>(cand_a)
        .unwrap()
        .rivals
        .iter()
        .map(|&d| Claim::new(0, d))
        .collect();
    // Higher DSN wins: cand_b (endpoint (2,2) has the larger index).
    assert_eq!(role_of(claim(cand_a), &rivals_a), FmRole::Secondary);
    let primary = cand_b;
    let secondary = cand_a;

    // ---- Phase 3: the primary re-runs a clean full discovery with path
    // distribution; the loser drops into standby. ----------------------
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.distribute_paths = true;
    fabric.set_agent(primary, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(primary, SimDuration::from_us(1), TOKEN_START_DISCOVERY);

    let watch = shortest_route(topo, g.endpoint_at(0, 0), g.endpoint_at(2, 2)).unwrap();
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.standby = Some(StandbyConfig::new(
        watch.source_port,
        watch
            .encode(topo, advanced_switching::proto::MAX_POOL_BITS)
            .unwrap(),
    ));
    fabric.set_agent(secondary, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(
        secondary,
        SimDuration::from_us(5),
        advanced_switching::core::TOKEN_START_STANDBY,
    );
    fabric.run_until(SimTime::from_ms(20));
    {
        let p = fabric.agent_as::<FmAgent>(primary).unwrap();
        assert_eq!(p.db().unwrap().device_count(), 32);
        assert_eq!(p.distributions.len(), 1);
        assert_eq!(p.distributions[0].failures, 0);
    }

    // PI-5 routes from the primary's database.
    let routes: Vec<(u64, u8, TurnPool)> = {
        let db = fabric.agent_as::<FmAgent>(primary).unwrap().db().unwrap();
        let host = db.host_dsn();
        db.devices()
            .filter(|d| d.info.dsn != host)
            .filter_map(|d| {
                db.route_between(d.info.dsn, host, advanced_switching::proto::MAX_POOL_BITS)
                    .and_then(Result::ok)
                    .map(|r| (d.info.dsn, r.egress, r.pool))
            })
            .collect()
    };
    for (d, egress, pool) in routes {
        fabric.set_fm_route(
            DevId((d & 0xFFFF_FFFF) as u32),
            advanced_switching::fabric::FmRoute { egress, pool },
        );
    }

    // ---- Phase 4: a user endpoint sends data over its distributed
    // route table. -------------------------------------------------------
    let user = DevId(g.endpoint_at(1, 1).0);
    let peer = DevId(g.endpoint_at(3, 3).0);
    let entry = {
        let cs = fabric.config_space(user);
        let mut words = Vec::new();
        let mut offset = 0u16;
        while words.len() < 6 * 31 {
            words.extend(
                cs.read(
                    CapabilityAddr {
                        capability: CAP_ROUTE_TABLE,
                        offset,
                    },
                    6,
                )
                .unwrap(),
            );
            offset += 6;
        }
        decode_route_table(&words)
            .into_iter()
            .find(|e| e.dest_dsn == dsn(peer))
            .expect("distributed route present")
    };
    let hdr = advanced_switching::proto::RouteHeader::forward(
        advanced_switching::proto::ProtocolInterface::Data,
        0,
        entry.pool.clone(),
    );
    let mut sender = Counting::default();
    sender
        .inject
        .push((entry.egress, Packet::new(hdr, Payload::Data { len: 256 })));
    fabric.set_agent(user, Box::new(sender));
    fabric.set_agent(peer, Box::new(Counting::default()));
    fabric.schedule_agent_timer(user, SimDuration::from_us(1), 0);
    // Bounded runs from here on: the secondary's keepalive loop keeps the
    // event queue alive forever, so run_until_idle would never return.
    let deadline = fabric.now() + SimDuration::from_ms(1);
    fabric.run_until(deadline);
    assert_eq!(fabric.agent_as::<Counting>(peer).unwrap().data, 1);

    // ---- Phase 5: multicast group across three corners ----------------
    const GROUP: u16 = 11;
    let members = [
        g.endpoint_at(1, 1),
        g.endpoint_at(3, 0),
        g.endpoint_at(0, 3),
    ];
    let member_dsns: Vec<u64> = members.iter().map(|m| DSN_BASE | u64::from(m.0)).collect();
    {
        let agent = fabric.agent_as_mut::<FmAgent>(primary).unwrap();
        // The plan itself must be valid against the discovered database.
        assert!(plan_multicast(agent.db().unwrap(), GROUP, &member_dsns).is_ok());
        agent.queue_multicast(GROUP, member_dsns);
    }
    fabric.schedule_agent_timer(primary, SimDuration::from_us(1), TOKEN_CONFIGURE_MCAST);
    let deadline = fabric.now() + SimDuration::from_ms(5);
    fabric.run_until(deadline);
    assert!(fabric.agent_as::<FmAgent>(primary).unwrap().mcast_settled());
    let hdr = advanced_switching::proto::RouteHeader::forward(
        advanced_switching::proto::ProtocolInterface::Multicast,
        0,
        TurnPool::new_spec(),
    );
    let mut mc_sender = Counting::default();
    mc_sender.inject.push((
        0,
        Packet::new(
            hdr,
            Payload::Mcast {
                group: GROUP,
                len: 100,
                hops: 32,
            },
        ),
    ));
    fabric.set_agent(DevId(members[0].0), Box::new(mc_sender));
    for &m in &members[1..] {
        fabric.set_agent(DevId(m.0), Box::new(Counting::default()));
    }
    fabric.schedule_agent_timer(DevId(members[0].0), SimDuration::from_us(1), 0);
    let deadline = fabric.now() + SimDuration::from_ms(1);
    fabric.run_until(deadline);
    for &m in &members[1..] {
        assert_eq!(fabric.agent_as::<Counting>(DevId(m.0)).unwrap().mcast, 1);
    }

    // ---- Phase 6: the primary's endpoint dies; the secondary promotes
    // and re-discovers the surviving fabric. ----------------------------
    fabric.schedule_deactivate(primary, SimDuration::from_us(10));
    fabric.run_until(SimTime::from_ms(80));
    fabric.run_until_idle();
    let s = fabric.agent_as::<FmAgent>(secondary).unwrap();
    assert!(s.promoted, "secondary never took over");
    let run = s.last_run().unwrap();
    assert_eq!(run.trigger, DiscoveryTrigger::Failover);
    // 32 devices minus the dead primary endpoint.
    assert_eq!(run.devices_found, 31);
    assert!(!s.db().unwrap().contains(dsn(primary)));
}
