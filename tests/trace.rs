//! Integration tests for the discovery-trace observability layer: a
//! traced run's event counts must reconcile exactly with the
//! `DiscoveryRun` aggregates the paper's tables are built from, and the
//! JSONL export must round-trip the stream losslessly.

use advanced_switching::harness::{trace_from_jsonl, trace_to_jsonl, RingCollector, TraceSummary};
use advanced_switching::prelude::*;
use advanced_switching::sim::TraceHandle;

/// Runs one traced full discovery and returns (run, collected records).
fn traced_run(topo: &Topology, algorithm: Algorithm) -> (DiscoveryRun, Vec<asi_sim::TraceRecord>) {
    let collector = RingCollector::shared(1 << 20);
    let scenario = Scenario::new(algorithm).with_trace(TraceHandle::to(collector.clone()));
    let bench = Bench::start(topo, &scenario, &[]);
    let run = bench.last_run();
    let records = collector.borrow_mut().take();
    assert_eq!(collector.borrow().dropped(), 0, "ring buffer overflowed");
    (run, records)
}

#[test]
fn trace_counts_reconcile_with_discovery_run_aggregates() {
    // Table-1 style mesh, the paper's Parallel algorithm.
    let t = mesh(3, 3).topology;
    let (run, records) = traced_run(&t, Algorithm::Parallel);
    let s = TraceSummary::of(&records);

    assert_eq!(s.count("run-started"), 1);
    assert_eq!(s.count("run-finished"), 1);
    assert_eq!(s.count("request-injected"), run.requests_sent);
    assert_eq!(s.count("request-completed"), run.responses_received);
    assert_eq!(s.count("request-timed-out"), run.timeouts);
    assert_eq!(s.count("device-discovered"), run.devices_found as u64);
    // 18 devices in a 3x3 mesh of switch+endpoint pairs.
    assert_eq!(run.devices_found, 18);
    // Every activation is traced too (fabric side).
    assert_eq!(s.count("device-activated"), 18);
    // Parallel keeps more than one request in flight at its peak.
    assert!(
        s.max_pending > 1,
        "Parallel peak pending = {}",
        s.max_pending
    );
}

#[test]
fn trace_counts_reconcile_for_every_algorithm() {
    let t = mesh(3, 3).topology;
    for alg in Algorithm::all() {
        let (run, records) = traced_run(&t, alg);
        let s = TraceSummary::of(&records);
        assert_eq!(s.count("request-injected"), run.requests_sent, "{alg}");
        assert_eq!(
            s.count("request-completed"),
            run.responses_received,
            "{alg}"
        );
        assert_eq!(s.count("request-timed-out"), run.timeouts, "{alg}");
        assert_eq!(
            s.count("device-discovered"),
            run.devices_found as u64,
            "{alg}"
        );
        // Serial Packet never has more than one request outstanding.
        if alg == Algorithm::SerialPacket {
            assert_eq!(s.max_pending, 1, "{alg}");
        }
    }
}

#[test]
fn trace_timestamps_are_monotone_and_jsonl_round_trips() {
    let t = mesh(3, 3).topology;
    let (_, records) = traced_run(&t, Algorithm::SerialDevice);
    assert!(!records.is_empty());
    // Records are time-ordered per emitter; `fm-idle` is stamped
    // retrospectively at the span start (see docs/TRACE_FORMAT.md), so
    // skip busy/idle spans when checking stream order.
    let ordered: Vec<_> = records
        .iter()
        .filter(|r| !matches!(r.event.kind(), "fm-busy" | "fm-idle"))
        .collect();
    for pair in ordered.windows(2) {
        assert!(pair[0].time <= pair[1].time, "timestamps must be monotone");
    }
    let text = trace_to_jsonl(&records);
    assert_eq!(trace_from_jsonl(&text).unwrap(), records);
}

#[test]
fn disabled_trace_changes_nothing() {
    let t = mesh(3, 3).topology;
    let plain = Bench::start(&t, &Scenario::new(Algorithm::Parallel), &[]).last_run();
    let (traced, _) = traced_run(&t, Algorithm::Parallel);
    assert_eq!(plain.requests_sent, traced.requests_sent);
    assert_eq!(plain.discovery_time(), traced.discovery_time());
}

#[test]
fn change_assimilation_is_traced_as_a_second_run() {
    let t = mesh(3, 3).topology;
    let collector = RingCollector::shared(1 << 20);
    let scenario =
        Scenario::new(Algorithm::Parallel).with_trace(TraceHandle::to(collector.clone()));
    let mut bench = Bench::start(&t, &scenario, &[]);
    let victim = bench.pick_victim_switch();
    bench.remove_switch(victim);
    let records = collector.borrow_mut().take();
    let s = TraceSummary::of(&records);
    // The removal triggers at least one assimilation run on top of the
    // initial discovery (PI-5 bursts may trigger more than one).
    assert!(s.count("run-started") >= 2, "initial + assimilation");
    assert_eq!(s.count("run-finished"), s.count("run-started"));
    assert_eq!(s.count("device-deactivated"), 1);
    // The removal is reported by neighbours via PI-5 before re-discovery.
    assert!(s.count("pi5-emitted") >= 1);
    assert!(s.count("pi5-received") >= 1);
}
