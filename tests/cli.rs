//! Integration tests for the `asi-fabric-sim` command-line runner.

use advanced_switching::harness::json::{parse, Json};
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let (stdout, stderr, code) = run_coded(args);
    (stdout, stderr, code == Some(0))
}

fn run_coded(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_asi-fabric-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn json_output_is_parseable_and_complete() {
    let (stdout, _, ok) = run(&["--topology", "mesh:3x3", "--algorithm", "all", "--json"]);
    assert!(ok);
    let reports: Json = parse(&stdout).expect("valid JSON");
    let arr = reports.as_array().expect("array of reports");
    assert_eq!(arr.len(), 3);
    for r in arr {
        assert_eq!(*r.get("devices_found"), 18);
        assert_eq!(*r.get("links_found"), 21);
        assert_eq!(*r.get("timeouts"), 0);
        assert!(r.get("discovery_time_s").as_f64().unwrap() > 0.0);
    }
    // Paper ordering holds through the CLI too.
    let t = |i: usize| arr[i].get("discovery_time_s").as_f64().unwrap();
    assert!(t(2) < t(1) && t(1) < t(0));
}

#[test]
fn change_scenario_reports_the_shrunken_fabric() {
    let (stdout, _, ok) = run(&[
        "--topology",
        "torus:3x3",
        "--algorithm",
        "parallel",
        "--change",
        "remove",
        "--json",
        "--seed",
        "5",
    ]);
    assert!(ok);
    let reports: Json = parse(&stdout).unwrap();
    // Torus stays connected: exactly the victim switch + its endpoint gone.
    assert_eq!(*reports.idx(0).get("devices_found"), 16);
    assert_eq!(*reports.idx(0).get("scenario"), "remove");
}

#[test]
fn lossy_run_with_retries_recovers() {
    let (stdout, _, ok) = run(&[
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "parallel",
        "--loss",
        "0.05",
        "--retries",
        "8",
        "--seed",
        "3",
        "--json",
    ]);
    assert!(ok);
    let reports: Json = parse(&stdout).unwrap();
    assert_eq!(
        *reports.idx(0).get("devices_found"),
        18,
        "retries must recover"
    );
}

#[test]
fn table_output_mentions_all_algorithms() {
    let (stdout, _, ok) = run(&["--topology", "fattree:4,2", "--algorithm", "all"]);
    assert!(ok);
    for name in ["Serial Packet", "Serial Device", "Parallel"] {
        assert!(stdout.contains(name), "{name} missing from table output");
    }
}

#[test]
fn trace_flag_writes_a_reconciling_jsonl_dump() {
    use advanced_switching::harness::{trace_from_jsonl, TraceSummary};

    let dir = std::env::temp_dir().join("asi-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    let (stdout, stderr, ok) = run(&[
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "parallel",
        "--json",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("records written"), "{stderr}");

    let records = trace_from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let summary = TraceSummary::of(&records);
    let report = parse(&stdout).unwrap();
    // The trace reconciles with the CLI's own aggregate report.
    assert_eq!(
        summary.count("request-injected"),
        report.idx(0).get("requests").as_u64().unwrap()
    );
    assert_eq!(
        summary.count("device-discovered"),
        report.idx(0).get("devices_found").as_u64().unwrap()
    );
    assert_eq!(
        summary.count("request-timed-out"),
        report.idx(0).get("timeouts").as_u64().unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let (_, stderr, ok) = run(&["--topology", "klein-bottle:4"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}

/// Asserts `args` dies with exit code 2 and a friendly one-line error
/// (never a panic: panics abort with code 101 and a backtrace-style
/// message on stderr).
fn assert_usage_error(args: &[&str], needle: &str) {
    let (stdout, stderr, code) = run_coded(args);
    assert_eq!(code, Some(2), "args {args:?}: stderr = {stderr}");
    assert!(stdout.is_empty(), "args {args:?} wrote to stdout: {stdout}");
    assert!(
        stderr.contains(needle),
        "args {args:?}: expected {needle:?} in stderr, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "args {args:?} panicked: {stderr}"
    );
}

#[test]
fn malformed_flags_report_friendly_errors_not_panics() {
    fn with<'a>(extra: &[&'a str]) -> Vec<&'a str> {
        [&["--topology", "mesh:3x3"], extra].concat()
    }
    assert_usage_error(&with(&["--seed", "banana"]), "--seed must be an integer");
    assert_usage_error(&with(&["--seed", "-3"]), "--seed must be an integer");
    assert_usage_error(
        &with(&["--fm-factor", "fast"]),
        "--fm-factor must be a number",
    );
    assert_usage_error(
        &with(&["--device-factor", "2x"]),
        "--device-factor must be a number",
    );
    assert_usage_error(&with(&["--loss", "lots"]), "--loss must be a probability");
    assert_usage_error(&with(&["--loss", "1.5"]), "--loss must be in [0, 1)");
    assert_usage_error(
        &with(&["--retries", "many"]),
        "--retries must be an integer",
    );
    assert_usage_error(&with(&["--algorithm", "psychic"]), "unknown algorithm");
    assert_usage_error(&with(&["--change", "rename"]), "unknown change");
}

#[test]
fn malformed_fault_flags_report_friendly_errors_not_panics() {
    fn with<'a>(extra: &[&'a str]) -> Vec<&'a str> {
        [&["--topology", "mesh:3x3"], extra].concat()
    }
    assert_usage_error(&with(&["--loss-model", "gaussian"]), "unknown loss model");
    assert_usage_error(&with(&["--corrupt", "1.5"]), "--corrupt must be in [0, 1]");
    assert_usage_error(
        &with(&["--corrupt", "often"]),
        "--corrupt must be a probability",
    );
    assert_usage_error(
        &with(&["--duplicate", "2"]),
        "--duplicate must be in [0, 1]",
    );
    assert_usage_error(
        &with(&["--flap", "100:3"]),
        "--flap wants <at_us>:<device>:<port>:<down_us>",
    );
    assert_usage_error(
        &with(&["--flap", "soon:3:0:200"]),
        "is not a time in \u{b5}s",
    );
    assert_usage_error(
        &with(&["--hang", "100:3:50:9"]),
        "--hang wants <at_us>:<device>:<dur_us>",
    );
    assert_usage_error(
        &with(&["--slow", "100:3:0:50"]),
        "--slow factor must be positive",
    );
    assert_usage_error(
        &with(&["--slow", "100:3:-2:50"]),
        "--slow factor must be positive",
    );
    assert_usage_error(
        &with(&["--retry-policy", "psychic"]),
        "unknown retry policy",
    );
    assert_usage_error(
        &with(&["--retry-policy", "deadline"]),
        "--retry-policy deadline needs --deadline-us",
    );
    assert_usage_error(
        &with(&["--retry-policy", "deadline", "--deadline-us", "soon"]),
        "--deadline-us must be an integer",
    );
    assert_usage_error(
        &with(&["--deadline-us", "5000"]),
        "--deadline-us only applies with --retry-policy deadline",
    );
    assert_usage_error(
        &with(&["--timeout-us", "fast"]),
        "--timeout-us must be an integer",
    );
    // The `faults` subcommand shares the same validation.
    assert_usage_error(&["faults"], "--topology is required");
    assert_usage_error(
        &[
            "faults",
            "--topology",
            "mesh:3x3",
            "--loss-model",
            "gaussian",
        ],
        "unknown loss model",
    );
}

#[test]
fn faults_mode_converges_for_every_algorithm_under_bursty_loss() {
    // The acceptance scenario: 5% bursty (Gilbert-Elliott) loss on a
    // Table 1 topology, exponential backoff — every algorithm must
    // still discover the full topology, visibly exercising retries.
    let (stdout, stderr, ok) = run(&[
        "faults",
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "all",
        "--loss",
        "0.05",
        "--loss-model",
        "bursty",
        "--retry-policy",
        "exponential",
        "--retries",
        "10",
        "--seed",
        "1",
        "--json",
    ]);
    assert!(ok, "{stderr}");
    let reports: Json = parse(&stdout).unwrap();
    let arr = reports.as_array().unwrap();
    assert_eq!(arr.len(), 3);
    for r in arr {
        assert_eq!(*r.get("scenario"), "faults");
        assert_eq!(*r.get("devices_found"), 18, "degraded: {r:?}");
        assert_eq!(*r.get("links_found"), 21);
        assert!(
            r.get("retries").as_u64().unwrap() > 0,
            "loss never bit: {r:?}"
        );
    }
}

#[test]
fn zero_probability_fault_plan_reproduces_the_loss_free_run_bytes() {
    // An armed Gilbert-Elliott model with mean loss 0 must not perturb
    // the simulation: same stdout, same trace, byte for byte.
    let dir = std::env::temp_dir().join("asi-cli-ge-zero-test");
    std::fs::create_dir_all(&dir).unwrap();
    let clean = dir.join("clean.jsonl");
    let armed = dir.join("armed.jsonl");
    let base = [
        "faults",
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "all",
        "--json",
        "--trace",
    ];
    let (out_clean, _, ok1) = run(&[&base[..], &[clean.to_str().unwrap()]].concat());
    let (out_armed, _, ok2) = run(&[
        &base[..],
        &[
            armed.to_str().unwrap(),
            "--loss",
            "0",
            "--loss-model",
            "bursty",
        ],
    ]
    .concat());
    assert!(ok1 && ok2);
    assert_eq!(
        out_clean, out_armed,
        "GE(p=0) must replay the loss-free run"
    );
    assert_eq!(
        std::fs::read(&clean).unwrap(),
        std::fs::read(&armed).unwrap(),
        "GE(p=0) trace must be byte-identical to the loss-free trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_topologies_report_friendly_errors_not_builder_panics() {
    // Each of these previously tripped an `assert!` inside the topology
    // builders (exit code 101); they must now be usage errors.
    assert_usage_error(
        &["--topology", "mesh:1x5"],
        "sides must be between 2 and 64",
    );
    assert_usage_error(
        &["--topology", "torus:0x0"],
        "sides must be between 2 and 64",
    );
    assert_usage_error(&["--topology", "mesh:3"], "wants WxH dimensions");
    assert_usage_error(&["--topology", "mesh:axb"], "dimensions must be integers");
    assert_usage_error(&["--topology", "fattree:3,2"], "port count must be even");
    assert_usage_error(&["--topology", "fattree:4,0"], "levels must be in 1..=8");
    assert_usage_error(&["--topology", "fattree:4"], "wants m,n parameters");
    assert_usage_error(&["--topology", "irregular:0"], "switch count must be in");
    assert_usage_error(&["--topology", "mesh"], "missing its parameters");
    assert_usage_error(&["--topology", "ring:9"], "unknown topology kind");
}

#[test]
fn missing_topology_is_a_usage_error() {
    assert_usage_error(&["--algorithm", "parallel"], "--topology is required");
}

#[test]
fn sweep_rejects_bad_grid_and_jobs() {
    assert_usage_error(&["sweep", "--grid", "fig99"], "unknown grid");
    assert_usage_error(&["sweep", "--jobs", "zero"], "--jobs must be an integer");
    assert_usage_error(&["sweep", "--jobs", "0"], "--jobs must be at least 1");
}

#[test]
fn sweep_output_is_identical_for_any_job_count() {
    // The tentpole guarantee: worker count never changes the bytes.
    let (json1, stderr1, ok1) = run(&["sweep", "--grid", "smoke", "--jobs", "1", "--json"]);
    let (json8, _, ok8) = run(&["sweep", "--grid", "smoke", "--jobs", "8", "--json"]);
    assert!(ok1 && ok8, "{stderr1}");
    assert_eq!(json1, json8, "sweep JSON must not depend on --jobs");

    let (csv1, _, c1) = run(&["sweep", "--grid", "smoke", "--jobs", "1", "--csv"]);
    let (csv4, _, c4) = run(&["sweep", "--grid", "smoke", "--jobs", "4", "--csv"]);
    assert!(c1 && c4);
    assert_eq!(csv1, csv4, "sweep CSV must not depend on --jobs");

    // And the JSON is well-formed with one cell per grid point.
    let v = parse(&json1).unwrap();
    let cells = v.get("cells").as_array().expect("cells array");
    assert!(!cells.is_empty());
    for c in cells {
        assert_eq!(c.get("completed"), &Json::Bool(true));
        assert!(c.get("discovery_time_s").as_f64().unwrap() > 0.0);
    }
}

#[test]
fn fault_sweep_is_identical_for_any_job_count_and_converges() {
    // Identical (seed, FaultPlan) must sweep byte-identically whatever
    // the worker count — fault and RNG state is all per-cell.
    let (json1, stderr1, ok1) = run(&[
        "sweep", "--grid", "faults", "--quick", "--jobs", "1", "--json",
    ]);
    let (json4, _, ok4) = run(&[
        "sweep", "--grid", "faults", "--quick", "--jobs", "4", "--json",
    ]);
    assert!(ok1 && ok4, "{stderr1}");
    assert_eq!(json1, json4, "fault sweep JSON must not depend on --jobs");

    // Convergence under the grid's 5% bursty loss: every aggregate
    // reaches the full topology on every rep, and the degradation
    // metrics show the loss was real.
    let v = parse(&json1).unwrap();
    let aggregates = v.get("aggregates").as_array().expect("aggregates");
    assert!(!aggregates.is_empty());
    for a in aggregates {
        assert_eq!(
            a.get("full_topology"),
            a.get("completed"),
            "partial topology in {a:?}"
        );
        assert!(
            a.get("mean_retries").as_f64().unwrap() > 0.0,
            "no retries in {a:?}"
        );
    }
}

#[test]
fn snapshot_save_load_verify_round_trip() {
    let dir = std::env::temp_dir().join("asi-cli-snapshot-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bin = dir.join("fabric.snap");
    let jsonl = dir.join("fabric.jsonl");
    let resaved = dir.join("resaved.snap");

    // save: cold discovery → snapshot on disk, summary on stdout.
    let (stdout, stderr, ok) = run(&[
        "snapshot",
        "save",
        "--topology",
        "mesh:3x3",
        "--out",
        bin.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "{stderr}");
    let summary = parse(&stdout).unwrap();
    assert_eq!(*summary.get("devices"), 18);
    assert_eq!(*summary.get("links"), 21);

    // Same discovery in JSONL form.
    let (_, _, ok) = run(&[
        "snapshot",
        "save",
        "--topology",
        "mesh:3x3",
        "--out",
        jsonl.to_str().unwrap(),
        "--format",
        "jsonl",
    ]);
    assert!(ok);

    // load sniffs both formats and reports the same checksum.
    let (sum_bin, _, ok1) = run(&["snapshot", "load", "--in", bin.to_str().unwrap(), "--json"]);
    let (sum_jsonl, _, ok2) = run(&[
        "snapshot",
        "load",
        "--in",
        jsonl.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok1 && ok2);
    assert_eq!(
        parse(&sum_bin).unwrap().get("checksum"),
        parse(&sum_jsonl).unwrap().get("checksum"),
        "binary and JSONL renderings must describe the same snapshot"
    );

    // load --resave: JSONL → binary re-save is byte-identical to the
    // directly saved binary file.
    let (_, _, ok) = run(&[
        "snapshot",
        "load",
        "--in",
        jsonl.to_str().unwrap(),
        "--resave",
        resaved.to_str().unwrap(),
    ]);
    assert!(ok);
    assert_eq!(
        std::fs::read(&bin).unwrap(),
        std::fs::read(&resaved).unwrap(),
        "re-saved snapshot must be byte-identical"
    );

    // diff against itself: identical.
    let (stdout, _, ok) = run(&[
        "snapshot",
        "diff",
        "--old",
        bin.to_str().unwrap(),
        "--new",
        jsonl.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let delta = parse(&stdout).unwrap();
    assert_eq!(*delta.get("identical"), Json::Bool(true));
    assert_eq!(*delta.get("change_count"), 0);

    // verify on the unchanged fabric: every cached device verified with
    // one probe, no mismatches, no fallback.
    let (stdout, stderr, ok) = run(&[
        "snapshot",
        "verify",
        "--topology",
        "mesh:3x3",
        "--in",
        bin.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok, "{stderr}");
    let report = parse(&stdout).unwrap();
    assert_eq!(*report.get("trigger"), "warm-start");
    assert_eq!(*report.get("probes_verified"), 17);
    assert_eq!(*report.get("verify_mismatches"), 0);
    assert_eq!(*report.get("warm_fallback"), Json::Bool(false));
    assert_eq!(*report.get("devices_found"), 18);
    assert_eq!(*report.get("requests"), 17);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_workflows_emit_reconciling_traces() {
    use advanced_switching::harness::{trace_from_jsonl, TraceSummary};

    let dir = std::env::temp_dir().join("asi-cli-snapshot-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("fabric.snap");
    let save_trace = dir.join("save.jsonl");
    let verify_trace = dir.join("verify.jsonl");

    let (_, stderr, ok) = run(&[
        "snapshot",
        "save",
        "--topology",
        "mesh:3x3",
        "--out",
        snap.to_str().unwrap(),
        "--trace",
        save_trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let records = trace_from_jsonl(&std::fs::read_to_string(&save_trace).unwrap()).unwrap();
    let summary = TraceSummary::of(&records);
    assert_eq!(summary.count("snapshot-saved"), 1);

    let (stdout, stderr, ok) = run(&[
        "snapshot",
        "verify",
        "--topology",
        "mesh:3x3",
        "--in",
        snap.to_str().unwrap(),
        "--json",
        "--trace",
        verify_trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let report = parse(&stdout).unwrap();
    let records = trace_from_jsonl(&std::fs::read_to_string(&verify_trace).unwrap()).unwrap();
    let summary = TraceSummary::of(&records);
    assert_eq!(summary.count("snapshot-loaded"), 1);
    assert_eq!(
        summary.count("warm-verified"),
        report.get("probes_verified").as_u64().unwrap()
    );
    assert_eq!(summary.count("verify-mismatch"), 0);
    assert_eq!(summary.count("warm-fallback"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_diff_reports_a_removed_switch() {
    let dir = std::env::temp_dir().join("asi-cli-snapshot-diff-test");
    std::fs::create_dir_all(&dir).unwrap();
    let full = dir.join("full.snap");
    let small = dir.join("small.snap");
    let (_, _, ok1) = run(&[
        "snapshot",
        "save",
        "--topology",
        "mesh:3x3",
        "--out",
        full.to_str().unwrap(),
    ]);
    let (_, _, ok2) = run(&[
        "snapshot",
        "save",
        "--topology",
        "mesh:2x3",
        "--out",
        small.to_str().unwrap(),
    ]);
    assert!(ok1 && ok2);
    let (stdout, _, ok) = run(&[
        "snapshot",
        "diff",
        "--old",
        full.to_str().unwrap(),
        "--new",
        small.to_str().unwrap(),
        "--json",
    ]);
    assert!(ok);
    let delta = parse(&stdout).unwrap();
    assert_eq!(*delta.get("identical"), Json::Bool(false));
    assert_eq!(delta.get("removed_devices").as_array().unwrap().len(), 6);
    assert!(delta.get("change_count").as_u64().unwrap() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_mode_rejects_malformed_invocations() {
    assert_usage_error(&["snapshot"], "snapshot wants a subcommand");
    assert_usage_error(&["snapshot", "freeze"], "unknown snapshot subcommand");
    assert_usage_error(
        &["snapshot", "save", "--topology", "mesh:3x3"],
        "--out is required",
    );
    assert_usage_error(
        &["snapshot", "save", "--out", "x.snap"],
        "--topology is required",
    );
    assert_usage_error(
        &[
            "snapshot",
            "save",
            "--topology",
            "mesh:3x3",
            "--out",
            "x",
            "--format",
            "yaml",
        ],
        "unknown snapshot format",
    );
    assert_usage_error(
        &[
            "snapshot",
            "save",
            "--topology",
            "mesh:3x3",
            "--out",
            "x",
            "--algorithm",
            "all",
        ],
        "snapshot mode wants one algorithm",
    );
    assert_usage_error(&["snapshot", "load"], "--in is required");
    assert_usage_error(
        &["snapshot", "load", "--in", "/nonexistent/fabric.snap"],
        "cannot load snapshot",
    );
    assert_usage_error(
        &["snapshot", "diff", "--old", "a.snap"],
        "--new is required",
    );
    assert_usage_error(
        &["snapshot", "verify", "--topology", "mesh:3x3"],
        "--in is required",
    );
    let dir = std::env::temp_dir().join("asi-cli-snapshot-err-test");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("t.snap");
    let (_, _, ok) = run(&[
        "snapshot",
        "save",
        "--topology",
        "mesh:2x2",
        "--out",
        snap.to_str().unwrap(),
    ]);
    assert!(ok);
    assert_usage_error(
        &[
            "snapshot",
            "verify",
            "--topology",
            "mesh:2x2",
            "--in",
            snap.to_str().unwrap(),
            "--threshold",
            "1.5",
        ],
        "--threshold must be in [0, 1]",
    );
    // Corrupt snapshots die with the friendly error, not a panic.
    let garbled = dir.join("garbled.snap");
    let mut bytes = std::fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&garbled, &bytes).unwrap();
    assert_usage_error(
        &["snapshot", "load", "--in", garbled.to_str().unwrap()],
        "cannot load snapshot",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warmstart_sweep_grid_runs_and_is_jobs_invariant() {
    let (csv1, stderr, ok1) = run(&[
        "sweep",
        "--grid",
        "warmstart",
        "--quick",
        "--jobs",
        "1",
        "--csv",
    ]);
    let (csv2, _, ok2) = run(&[
        "sweep",
        "--grid",
        "warmstart",
        "--quick",
        "--jobs",
        "2",
        "--csv",
    ]);
    assert!(ok1 && ok2, "{stderr}");
    assert_eq!(csv1, csv2, "warm sweep CSV must not depend on --jobs");
    let header = csv1.lines().next().unwrap();
    for col in [
        "warm",
        "probes_verified",
        "verify_mismatches",
        "warm_fallback",
    ] {
        assert!(header.contains(col), "{col} missing from CSV header");
    }
}

#[test]
fn sweep_text_table_names_every_algorithm() {
    let (stdout, _, ok) = run(&["sweep", "--grid", "smoke"]);
    assert!(ok);
    for name in ["Serial Packet", "Serial Device", "Parallel"] {
        assert!(stdout.contains(name), "{name} missing from sweep table");
    }
}

#[test]
fn stress_reports_full_topology_and_throughput() {
    let (stdout, stderr, ok) = run(&[
        "stress",
        "--topology",
        "mesh:8x8",
        "--algorithm",
        "parallel",
        "--json",
    ]);
    assert!(ok, "{stderr}");
    let report = parse(&stdout).unwrap();
    assert_eq!(report.get("full_topology"), &Json::Bool(true));
    assert_eq!(*report.get("devices"), 128);
    assert_eq!(*report.get("devices_found"), 128);
    assert_eq!(*report.get("timeouts"), 0);
    // The wall-clock metrics exist and are non-trivial, but their values
    // are execution-dependent — never byte-compare them.
    assert!(report.get("events_per_sec").as_u64().unwrap() > 0);
    assert!(report.get("sim_events").as_u64().unwrap() > 0);
    assert!(report.get("wall_time_s").as_f64().unwrap() > 0.0);
    assert!(report.get("peak_outstanding").as_u64().unwrap() > 1);
}

#[test]
fn stress_rejects_malformed_invocations() {
    // One negative per flag, on the same error/usage/exit-2 framework as
    // the discovery mode.
    assert_usage_error(&["stress"], "--topology is required");
    assert_usage_error(&["stress", "--topology", "ring:9"], "unknown topology kind");
    assert_usage_error(
        &["stress", "--topology", "irregular:5000"],
        "switch count must be in",
    );
    assert_usage_error(
        &["stress", "--topology", "mesh:8x8", "--algorithm", "psychic"],
        "stress mode wants one algorithm",
    );
    assert_usage_error(
        &["stress", "--topology", "mesh:8x8", "--algorithm", "all"],
        "stress mode wants one algorithm",
    );
    assert_usage_error(
        &["stress", "--topology", "mesh:8x8", "--seed", "banana"],
        "--seed must be an integer",
    );
    assert_usage_error(
        &["stress", "--topology", "mesh:8x8", "--fm-factor", "fast"],
        "--fm-factor must be a number",
    );
}

#[test]
fn scale_grid_is_jobs_invariant_and_reports_occupancy() {
    let (json1, stderr1, ok1) = run(&[
        "sweep", "--grid", "scale", "--quick", "--jobs", "1", "--json",
    ]);
    let (json2, stderr2, ok2) = run(&[
        "sweep", "--grid", "scale", "--quick", "--jobs", "2", "--json",
    ]);
    assert!(ok1 && ok2, "{stderr1}{stderr2}");
    assert_eq!(json1, json2, "scale grid JSON must not depend on --jobs");
    // The wall-clock throughput line goes to stderr, outside the
    // byte-compared stdout.
    assert!(stderr1.contains("events/sec"), "{stderr1}");

    let v = parse(&json1).unwrap();
    let cells = v.get("cells").as_array().expect("cells array");
    assert!(!cells.is_empty());
    for c in cells {
        assert_eq!(c.get("completed"), &Json::Bool(true));
        assert_eq!(c.get("algorithm").as_str(), Some("Parallel"));
        assert!(c.get("peak_outstanding").as_u64().unwrap() > 1);
        assert!(c.get("sim_events").as_u64().unwrap() > 0);
    }

    let (csv1, _, c1) = run(&[
        "sweep", "--grid", "scale", "--quick", "--jobs", "1", "--csv",
    ]);
    let (csv2, _, c2) = run(&[
        "sweep", "--grid", "scale", "--quick", "--jobs", "2", "--csv",
    ]);
    assert!(c1 && c2);
    assert_eq!(csv1, csv2, "scale grid CSV must not depend on --jobs");
    assert!(csv1.lines().next().unwrap().contains("peak_outstanding"));
}
