//! Integration tests for the `asi-fabric-sim` command-line runner.

use advanced_switching::harness::json::{parse, Json};
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_asi-fabric-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn json_output_is_parseable_and_complete() {
    let (stdout, _, ok) = run(&[
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "all",
        "--json",
    ]);
    assert!(ok);
    let reports: Json = parse(&stdout).expect("valid JSON");
    let arr = reports.as_array().expect("array of reports");
    assert_eq!(arr.len(), 3);
    for r in arr {
        assert_eq!(*r.get("devices_found"), 18);
        assert_eq!(*r.get("links_found"), 21);
        assert_eq!(*r.get("timeouts"), 0);
        assert!(r.get("discovery_time_s").as_f64().unwrap() > 0.0);
    }
    // Paper ordering holds through the CLI too.
    let t = |i: usize| arr[i].get("discovery_time_s").as_f64().unwrap();
    assert!(t(2) < t(1) && t(1) < t(0));
}

#[test]
fn change_scenario_reports_the_shrunken_fabric() {
    let (stdout, _, ok) = run(&[
        "--topology",
        "torus:3x3",
        "--algorithm",
        "parallel",
        "--change",
        "remove",
        "--json",
        "--seed",
        "5",
    ]);
    assert!(ok);
    let reports: Json = parse(&stdout).unwrap();
    // Torus stays connected: exactly the victim switch + its endpoint gone.
    assert_eq!(*reports.idx(0).get("devices_found"), 16);
    assert_eq!(*reports.idx(0).get("scenario"), "remove");
}

#[test]
fn lossy_run_with_retries_recovers() {
    let (stdout, _, ok) = run(&[
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "parallel",
        "--loss",
        "0.05",
        "--retries",
        "8",
        "--seed",
        "3",
        "--json",
    ]);
    assert!(ok);
    let reports: Json = parse(&stdout).unwrap();
    assert_eq!(*reports.idx(0).get("devices_found"), 18, "retries must recover");
}

#[test]
fn table_output_mentions_all_algorithms() {
    let (stdout, _, ok) = run(&["--topology", "fattree:4,2", "--algorithm", "all"]);
    assert!(ok);
    for name in ["Serial Packet", "Serial Device", "Parallel"] {
        assert!(stdout.contains(name), "{name} missing from table output");
    }
}

#[test]
fn trace_flag_writes_a_reconciling_jsonl_dump() {
    use advanced_switching::harness::{trace_from_jsonl, TraceSummary};

    let dir = std::env::temp_dir().join("asi-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    let (stdout, stderr, ok) = run(&[
        "--topology",
        "mesh:3x3",
        "--algorithm",
        "parallel",
        "--json",
        "--trace",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("records written"), "{stderr}");

    let records = trace_from_jsonl(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let summary = TraceSummary::of(&records);
    let report = parse(&stdout).unwrap();
    // The trace reconciles with the CLI's own aggregate report.
    assert_eq!(
        summary.count("request-injected"),
        report.idx(0).get("requests").as_u64().unwrap()
    );
    assert_eq!(
        summary.count("device-discovered"),
        report.idx(0).get("devices_found").as_u64().unwrap()
    );
    assert_eq!(
        summary.count("request-timed-out"),
        report.idx(0).get("timeouts").as_u64().unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let (_, stderr, ok) = run(&["--topology", "klein-bottle:4"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}
