//! Distributed discovery and failover — the paper's future-work items,
//! live:
//!
//! 1. several collaborative fabric managers partition an 8×8 mesh with
//!    claim-and-hold ownership writes and stream their regions to the
//!    primary for merging;
//! 2. a standby secondary watches the primary with keepalive reads and
//!    takes over when it dies.
//!
//! ```text
//! cargo run --release --example distributed_fm
//! ```

use advanced_switching::core::{fm::StandbyConfig, DiscoveryTrigger};
use advanced_switching::harness::scenario::distributed_discovery;
use advanced_switching::prelude::*;
use advanced_switching::topo::shortest_route;

fn main() {
    // --- Part 1: collaborative discovery -------------------------------
    let grid = mesh(8, 8);
    println!(
        "fabric: {} ({} devices)\n",
        grid.topology.name,
        grid.topology.node_count()
    );

    let scenario = Scenario::new(Algorithm::Parallel);
    let single = Bench::start(&grid.topology, &scenario, &[])
        .last_run()
        .discovery_time();
    println!("single manager        : {single}");

    for collaborators in [1usize, 2, 3] {
        let (_, _, out) = distributed_discovery(&grid.topology, collaborators, &scenario);
        assert_eq!(out.devices, grid.topology.node_count());
        println!(
            "{} managers            : {}   (regions: {:?} devices)",
            collaborators + 1,
            out.merged_time,
            out.per_manager_devices
        );
    }

    // --- Part 2: failover ----------------------------------------------
    println!("\n--- failover ---");
    let g = mesh(4, 4);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(100_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let primary = DevId(g.endpoint_at(0, 0).0);
    let secondary_node = g.endpoint_at(3, 3);
    let secondary = DevId(secondary_node.0);

    fabric.set_agent(
        primary,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::Parallel))),
    );
    fabric.schedule_agent_timer(primary, SimDuration::ZERO, TOKEN_START_DISCOVERY);

    let watch = shortest_route(&g.topology, secondary_node, g.endpoint_at(0, 0)).unwrap();
    let pool = watch
        .encode(&g.topology, advanced_switching::proto::MAX_POOL_BITS)
        .unwrap();
    let mut cfg = FmConfig::new(Algorithm::Parallel);
    cfg.standby = Some(StandbyConfig::new(watch.source_port, pool));
    fabric.set_agent(secondary, Box::new(FmAgent::new(cfg)));
    fabric.schedule_agent_timer(
        secondary,
        SimDuration::from_us(5),
        advanced_switching::core::TOKEN_START_STANDBY,
    );

    fabric.run_until(SimTime::from_ms(5));
    println!(
        "primary discovered {} devices; secondary standing by (keepalives flowing)",
        fabric
            .agent_as::<FmAgent>(primary)
            .unwrap()
            .db()
            .unwrap()
            .device_count()
    );

    println!("killing the primary endpoint…");
    fabric.schedule_deactivate(primary, SimDuration::ZERO);
    fabric.run_until_idle();

    let s = fabric.agent_as::<FmAgent>(secondary).unwrap();
    assert!(s.promoted);
    let run = s.last_run().unwrap();
    assert_eq!(run.trigger, DiscoveryTrigger::Failover);
    println!(
        "secondary promoted itself and re-discovered {} devices in {} (trigger {:?})",
        run.devices_found,
        run.discovery_time(),
        run.trigger
    );
}
