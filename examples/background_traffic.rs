//! The paper's "application traffic scarcely influences the discovery
//! time" claim, demonstrated live: Poisson data traffic floods the
//! fabric from every endpoint while the FM discovers it. Management
//! packets ride the highest-priority traffic class, so the discovery
//! time barely moves.
//!
//! ```text
//! cargo run --release --example background_traffic
//! ```

use advanced_switching::prelude::*;

fn main() {
    let grid = mesh(6, 6);
    println!(
        "fabric: {} ({} devices)\n",
        grid.topology.name,
        grid.topology.node_count()
    );

    println!(
        "{:<16} {:>14} {:>16} {:>10}",
        "algorithm", "quiet fabric", "loaded fabric", "delta"
    );
    println!("{}", "-".repeat(60));
    for algorithm in Algorithm::all() {
        // Quiet fabric.
        let quiet = Bench::start(&grid.topology, &Scenario::new(algorithm), &[])
            .last_run()
            .discovery_time();

        // Every endpoint injects 512-byte data packets, mean gap 30 us —
        // roughly 17% sustained load per source on a 2 Gb/s lane.
        let loaded_scenario = Scenario::new(algorithm).with_traffic(TrafficSpec {
            mean_gap: SimDuration::from_us(30),
            payload: 512,
        });
        let bench = Bench::start(&grid.topology, &loaded_scenario, &[]);
        let loaded = bench.last_run().discovery_time();
        let data_bytes = bench.fabric.counters().data_bytes;

        let delta = 100.0 * (loaded.as_secs_f64() - quiet.as_secs_f64()) / quiet.as_secs_f64();
        println!(
            "{:<16} {:>14} {:>16} {:>9.2}%   ({:.1} MB of data traffic in flight)",
            algorithm.name(),
            format!("{quiet}"),
            format!("{loaded}"),
            delta,
            data_bytes as f64 / 1e6
        );
        assert!(
            delta.abs() < 10.0,
            "traffic perturbed discovery by {delta:.1}% — priority broken?"
        );
    }

    println!(
        "\nManagement and event packets use TC7 -> the dedicated ordered VC, so\n\
         they pre-empt bulk data at every output port: the paper's observation holds."
    );
}
