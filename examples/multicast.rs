//! Multicast group management — one of the FM functions the paper lists
//! (§2): the manager computes a distribution tree over its discovered
//! topology, writes the switches' multicast forwarding tables and the
//! members' NIC flags over PI-4, and from then on any member's single
//! injected packet reaches every other member exactly once.
//!
//! ```text
//! cargo run --release --example multicast
//! ```

use advanced_switching::core::{plan_multicast, TOKEN_CONFIGURE_MCAST};
use advanced_switching::fabric::DSN_BASE;
use advanced_switching::prelude::*;
use std::any::Any;

/// Minimal member agent: counts group deliveries, can inject one packet.
#[derive(Default)]
struct Member {
    got: u32,
    inject: Option<u16>,
}

impl FabricAgent for Member {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx, packet: Packet) {
        if matches!(packet.payload, Payload::Mcast { .. }) {
            self.got += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx, _token: u64) {
        if let Some(group) = self.inject.take() {
            let header = advanced_switching::proto::RouteHeader::forward(
                advanced_switching::proto::ProtocolInterface::Multicast,
                0,
                TurnPool::new_spec(),
            );
            ctx.send(
                0,
                Packet::new(
                    header,
                    Payload::Mcast {
                        group,
                        len: 512,
                        hops: 32,
                    },
                ),
            );
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    const GROUP: u16 = 9;
    let g = torus(4, 4);
    println!("fabric: {}\n", g.topology.name);

    // Bring up + discover.
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(100_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let fm = DevId(g.endpoint_at(0, 0).0);
    fabric.set_agent(
        fm,
        Box::new(FmAgent::new(FmConfig::new(Algorithm::Parallel))),
    );
    fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
    fabric.run_until_idle();

    // Group: five endpoints around the torus.
    let members = [
        g.endpoint_at(1, 0),
        g.endpoint_at(3, 0),
        g.endpoint_at(0, 2),
        g.endpoint_at(2, 3),
        g.endpoint_at(3, 2),
    ];
    let member_dsns: Vec<u64> = members.iter().map(|m| DSN_BASE | u64::from(m.0)).collect();

    // Show the tree the FM would install.
    {
        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let plan = plan_multicast(agent.db().unwrap(), GROUP, &member_dsns).unwrap();
        println!(
            "distribution tree for group {GROUP} ({} table writes):",
            plan.len()
        );
        for w in &plan {
            println!("  device {:#x}: mask {:#06b}", w.target_dsn, w.mask);
        }
    }

    // Configure it over the wire.
    fabric
        .agent_as_mut::<FmAgent>(fm)
        .unwrap()
        .queue_multicast(GROUP, member_dsns);
    fabric.schedule_agent_timer(fm, SimDuration::from_us(1), TOKEN_CONFIGURE_MCAST);
    fabric.run_until_idle();
    let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
    assert!(agent.mcast_settled() && agent.mcast_failures == 0);
    println!("\ntables written; injecting one packet from the first member…");

    for (i, &m) in members.iter().enumerate() {
        let mut a = Member::default();
        if i == 0 {
            a.inject = Some(GROUP);
        }
        fabric.set_agent(DevId(m.0), Box::new(a));
    }
    fabric.schedule_agent_timer(DevId(members[0].0), SimDuration::from_us(1), 0);
    fabric.run_until_idle();

    for (i, &m) in members.iter().enumerate() {
        let got = fabric.agent_as::<Member>(DevId(m.0)).unwrap().got;
        println!(
            "  member {i} at {m}: {got} cop{}",
            if got == 1 { "y" } else { "ies" }
        );
        assert_eq!(got, u32::from(i != 0), "exactly-once delivery violated");
    }
    println!(
        "\ntotal forwarding operations (discovery + multicast): {} (loop guard drops: {})",
        fabric.counters().forwarded,
        fabric.counters().dropped_bad_route
    );
}
