//! Head-to-head comparison of the three discovery algorithms across the
//! paper's topology families — a miniature of Fig. 6(b) printed as a
//! table, plus the speedup of the paper's Parallel proposal over the
//! ASI-SIG serialized baseline.
//!
//! ```text
//! cargo run --release --example algorithm_comparison
//! ```

use advanced_switching::prelude::*;

fn main() {
    let specs = [
        Table1::Mesh(3),
        Table1::Torus(4),
        Table1::Mesh(6),
        Table1::FatTree(4, 3),
        Table1::FatTree(8, 2),
        Table1::Mesh(8),
    ];

    println!(
        "{:<16} {:>8} | {:>14} {:>14} {:>14} | {:>8}",
        "topology", "devices", "Serial Packet", "Serial Device", "Parallel", "speedup"
    );
    println!("{}", "-".repeat(86));

    for spec in specs {
        let topo = spec.build();
        let mut times = Vec::new();
        for algorithm in Algorithm::all() {
            let bench = Bench::start(&topo, &Scenario::new(algorithm), &[]);
            times.push(bench.last_run().discovery_time());
        }
        let speedup = times[0].as_secs_f64() / times[2].as_secs_f64();
        println!(
            "{:<16} {:>8} | {:>14} {:>14} {:>14} | {:>7.2}x",
            spec.name(),
            topo.node_count(),
            format!("{}", times[0]),
            format!("{}", times[1]),
            format!("{}", times[2]),
            speedup
        );
        assert!(
            times[2] < times[1] && times[1] < times[0],
            "{}: expected Parallel < Serial Device < Serial Packet",
            spec.name()
        );
    }

    println!(
        "\nAll topologies confirm the paper's result: the Parallel algorithm wins,\n\
         Serial Device is a modest improvement over Serial Packet, and the gap\n\
         grows with fabric size."
    );
}
