//! Building a custom fabric with the topology API: an irregular
//! dual-star with redundant cross-links, discovered by the FM, plus the
//! 31-bit spec turn-pool reachability check.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use advanced_switching::prelude::*;
use advanced_switching::topo::{irregular, spec_reachability, IrregularSpec};

fn main() {
    // --- Hand-built topology -------------------------------------------
    // Two core switches, cross-linked twice for redundancy, each serving
    // a leaf switch with endpoints.
    let mut topo = Topology::new("dual-star");
    let core_a = topo.add_switch(16, "core-A");
    let core_b = topo.add_switch(16, "core-B");
    let leaf_a = topo.add_switch(16, "leaf-A");
    let leaf_b = topo.add_switch(16, "leaf-B");
    topo.connect(core_a, 0, core_b, 0).unwrap();
    topo.connect(core_a, 1, core_b, 1).unwrap(); // redundant cross-link
    topo.connect(core_a, 2, leaf_a, 0).unwrap();
    topo.connect(core_b, 2, leaf_b, 0).unwrap();
    topo.connect(leaf_a, 1, leaf_b, 1).unwrap(); // leaf shortcut
    for (i, leaf) in [leaf_a, leaf_b].into_iter().enumerate() {
        for j in 0..3u8 {
            let ep = topo.add_endpoint(format!("ep{i}{j}"));
            topo.connect(leaf, 4 + j, ep, 0).unwrap();
        }
    }
    assert!(topo.is_connected());
    println!(
        "custom fabric: {} switches, {} endpoints, {} links",
        topo.switch_count(),
        topo.endpoint_count(),
        topo.links().len()
    );

    // Discover it. Redundant links mean alternate paths: the FM's
    // DSN-based dedup gets exercised.
    let bench = Bench::start(&topo, &Scenario::new(Algorithm::Parallel), &[]);
    let run = bench.last_run();
    println!(
        "discovered {} devices / {} links in {} with {} requests",
        run.devices_found,
        run.links_found,
        run.discovery_time(),
        run.requests_sent
    );
    assert_eq!(run.devices_found, topo.node_count());
    assert_eq!(run.links_found, topo.links().len());

    // --- Generated irregular topology ----------------------------------
    let mut rng = SimRng::new(42);
    let rand_topo = irregular(
        IrregularSpec {
            switches: 24,
            extra_links: 12,
            endpoints_per_switch: 1,
        },
        &mut rng,
    );
    let bench = Bench::start(&rand_topo, &Scenario::new(Algorithm::Parallel), &[]);
    println!(
        "\nirregular fabric ({} devices): discovered in {}",
        rand_topo.node_count(),
        bench.last_run().discovery_time()
    );
    assert_eq!(bench.db().device_count(), rand_topo.node_count());

    // --- Spec-limit study -----------------------------------------------
    // How much of each fabric fits the specification's 31-bit turn pool?
    println!("\n31-bit turn-pool reachability from the FM endpoint:");
    for spec in [Table1::Mesh(3), Table1::Mesh(8), Table1::Torus(16)] {
        let t = spec.build();
        let fm = advanced_switching::topo::default_fm_endpoint(&t).unwrap();
        let r = spec_reachability(&t, fm);
        println!(
            "  {:<12} {:>4}/{:<4} devices addressable (max {} turn bits)",
            spec.name(),
            r.within_spec,
            r.reachable,
            r.max_turn_bits
        );
    }
}
