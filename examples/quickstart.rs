//! Quickstart: build the paper's 3×3 mesh, bring the fabric up, run the
//! Parallel discovery algorithm, and inspect what the fabric manager
//! learned.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use advanced_switching::prelude::*;

fn main() {
    // 1. A topology: the paper's smallest fabric — a 3×3 mesh of 16-port
    //    switches, each hosting a single-port endpoint (18 devices).
    let grid = mesh(3, 3);
    println!(
        "topology: {} ({} switches, {} endpoints)",
        grid.topology.name,
        grid.topology.switch_count(),
        grid.topology.endpoint_count()
    );

    // 2. A scenario: which discovery algorithm the fabric manager runs,
    //    and at which processing-speed factors (paper Figs. 8–9).
    let scenario = Scenario::new(Algorithm::Parallel);

    // 3. Bench::start powers every device, trains all links, installs the
    //    FM on the first endpoint and runs the initial discovery.
    let bench = Bench::start(&grid.topology, &scenario, &[]);

    // 4. Results: the paper's headline metrics.
    let run = bench.last_run();
    println!("algorithm          : {}", run.algorithm);
    println!("devices discovered : {}", run.devices_found);
    println!("links discovered   : {}", run.links_found);
    println!("PI-4 requests      : {}", run.requests_sent);
    println!(
        "bytes sent/received: {} / {}",
        run.bytes_sent, run.bytes_received
    );
    println!("discovery time     : {}", run.discovery_time());
    println!(
        "mean FM processing : {:.2} us/packet",
        run.mean_fm_processing().as_micros_f64()
    );
    println!("FM utilization     : {:.0}%", run.fm_utilization() * 100.0);

    // 5. The discovered database matches the ground truth.
    let db = bench.db();
    assert_eq!(db.device_count(), grid.topology.node_count());
    assert_eq!(db.link_count(), grid.topology.links().len());
    println!("\ndiscovered endpoints: {:x?}", db.endpoints());
}
