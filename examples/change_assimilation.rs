//! Change assimilation walkthrough: a switch fails in a live fabric, its
//! neighbours report PI-5 events, and the fabric manager re-discovers the
//! topology — the scenario behind the paper's Figs. 6 and 9.
//!
//! ```text
//! cargo run --release --example change_assimilation
//! ```

use advanced_switching::prelude::*;
use advanced_switching::topo::torus;

fn main() {
    // A 4×4 torus: every switch has four switch neighbours plus an
    // endpoint, so removing one produces a burst of PI-5 reports and
    // leaves the fabric connected.
    let grid = torus(4, 4);
    println!(
        "fabric: {} — {} devices",
        grid.topology.name,
        grid.topology.node_count()
    );

    for algorithm in [
        Algorithm::SerialPacket,
        Algorithm::SerialDevice,
        Algorithm::Parallel,
    ] {
        let scenario = Scenario::new(algorithm).with_seed(7);
        let mut bench = Bench::start(&grid.topology, &scenario, &[]);
        let initial = bench.last_run();
        println!("\n=== {algorithm} ===");
        println!(
            "initial discovery: {} devices in {} ({} requests)",
            initial.devices_found,
            initial.discovery_time(),
            initial.requests_sent
        );

        // Kill a random switch. Its neighbours observe carrier loss and
        // send PI-5 PortDown events along their configured routes; the FM
        // discards its database and re-discovers (the paper's model).
        let victim = bench.pick_victim_switch();
        println!("removing switch {victim}…");
        let rerun = bench.remove_switch(victim);
        println!(
            "assimilation    : {} devices in {} ({} requests, trigger {:?})",
            rerun.devices_found,
            rerun.discovery_time(),
            rerun.requests_sent,
            rerun.trigger,
        );
        println!("PI-5 events seen: {}", bench.fm_agent().pi5_events);

        // The re-discovered database tracks the ground truth: the victim
        // and its stranded endpoint are gone.
        let active = bench.active_nodes();
        assert_eq!(rerun.devices_found, active);
        println!("active reachable devices: {active}");

        // Bring the switch back: hot addition triggers PortUp PI-5s and
        // another assimilation that restores the full fabric.
        println!("re-adding switch {victim}…");
        let readd = bench.add_device(victim);
        assert_eq!(readd.devices_found, grid.topology.node_count());
        println!(
            "after hot-add   : {} devices in {}",
            readd.devices_found,
            readd.discovery_time()
        );
    }
}
