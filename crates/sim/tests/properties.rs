//! Property-based tests for the simulation kernel's core invariants.

use asi_sim::{EventQueue, SimDuration, SimRng, SimTime, Simulator};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, with schedule order
    /// breaking ties, no matter the insertion order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, _, idx)) = q.pop() {
            popped.push((t.as_ps(), idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie-break order violated");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn queue_cancellation_is_exact(
        times in proptest::collection::vec(0u64..100_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_ps(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*id));
                cancelled.insert(i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        let mut survivors = Vec::new();
        while let Some((_, _, idx)) = q.pop() {
            survivors.push(idx);
        }
        for idx in &survivors {
            prop_assert!(!cancelled.contains(idx), "cancelled event fired");
        }
        prop_assert_eq!(survivors.len(), times.len() - cancelled.len());
    }

    /// The simulator clock never goes backwards.
    #[test]
    fn simulator_clock_monotonic(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulator::new();
        for &d in &delays {
            sim.schedule_after(SimDuration::from_ps(d), d);
        }
        let mut last = SimTime::ZERO;
        while let Some(f) = sim.next_event() {
            prop_assert!(f.time >= last);
            prop_assert_eq!(f.time, sim.now());
            last = f.time;
        }
        prop_assert_eq!(sim.events_processed(), delays.len() as u64);
    }

    /// Two simulators fed identical schedules produce identical traces, even
    /// when events cascade (each fired event schedules a follow-up).
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        fn trace(seed: u64) -> Vec<(u64, u32)> {
            let mut rng = SimRng::new(seed);
            let mut sim = Simulator::new();
            for i in 0..20u32 {
                sim.schedule_at(SimTime::from_ps(rng.gen_below(1000)), i);
            }
            let mut out = Vec::new();
            let mut budget = 200;
            while let Some(f) = sim.next_event() {
                out.push((f.time.as_ps(), f.event));
                if budget > 0 {
                    budget -= 1;
                    let d = rng.gen_below(500);
                    sim.schedule_after(SimDuration::from_ps(d), f.event.wrapping_add(1));
                }
            }
            out
        }
        prop_assert_eq!(trace(seed), trace(seed));
    }

    /// gen_range stays within bounds for arbitrary ranges.
    #[test]
    fn rng_range_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let hi = lo + span;
        for _ in 0..100 {
            let v = rng.gen_range(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Quantiles are order statistics: q(0) == min, q(1) == max, and the
    /// median of a sorted odd-length set is its middle element.
    #[test]
    fn sampleset_order_statistics(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = asi_sim::SampleSet::new();
        for &x in &xs {
            s.push(x);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(s.quantile(0.0), xs[0]);
        prop_assert_eq!(s.quantile(1.0), *xs.last().unwrap());
        if xs.len() % 2 == 1 {
            prop_assert_eq!(s.median(), xs[xs.len() / 2]);
        }
    }
}
