//! A fast, deterministic hasher for small integer keys.
//!
//! The kernel's hot paths key hash containers by dense integer ids
//! (event sequence numbers, request ids). `std`'s default SipHash is
//! DoS-resistant but an order of magnitude slower than needed for keys
//! an attacker never controls; this multiplicative hasher (the FxHash
//! construction used by rustc) removes that overhead while keeping the
//! `std::collections` container types.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash / Firefox hasher: a 64-bit odd constant
/// derived from the golden ratio, chosen for good avalanche on low bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style multiplicative hasher. Not DoS-resistant; use only for
/// keys the program itself allocates (sequence numbers, indices).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn sequential_keys_spread() {
        // The whole point: dense sequence numbers must not collide into a
        // handful of buckets (a plain identity hash would).
        let hashes: FxHashSet<u64> = (0..10_000u64)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u64(i);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 10_000, "all distinct");
    }

    #[test]
    fn write_bytes_covers_remainders() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one full chunk + remainder
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
