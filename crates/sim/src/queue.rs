//! A cancellable pending-event queue with deterministic ordering.
//!
//! Events are ordered by `(time, sequence number)`: two events scheduled for
//! the same instant fire in the order they were scheduled, which makes every
//! simulation run bit-for-bit reproducible regardless of heap internals.
//! Cancellation is lazy: cancelled entries ("tombstones") are skipped at pop
//! time, and the heap is compacted in place whenever tombstones outnumber
//! the live events, so `cancel()`-heavy workloads (e.g. an FM cancelling a
//! timeout per completed request) stay O(log live) instead of O(log total).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::hash::FxHashSet;
use crate::time::SimTime;

/// Opaque handle to a scheduled event, usable to cancel it later.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number (monotonically increasing per queue).
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, id) pair on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// Priority queue of timestamped events with O(log n) push/pop and lazy
/// cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids currently live in the heap (scheduled, not yet popped/cancelled).
    pending: FxHashSet<EventId>,
    next_id: u64,
}

/// Compaction never triggers below this heap size: rebuilding tiny heaps
/// costs more than carrying their tombstones to the top.
const COMPACT_MIN_HEAP: usize = 64;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: FxHashSet::default(),
            next_id: 0,
        }
    }

    /// Creates an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            pending: FxHashSet::with_capacity_and_hasher(cap, Default::default()),
            next_id: 0,
        }
    }

    /// Schedules `event` at `time`; returns a handle for cancellation.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Entry { time, id, event });
        self.pending.insert(id);
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let was_pending = self.pending.remove(&id);
        if was_pending
            && self.heap.len() >= COMPACT_MIN_HEAP
            && self.tombstones() > self.pending.len()
        {
            self.compact();
        }
        was_pending
    }

    /// Number of cancelled entries still occupying heap slots.
    pub fn tombstones(&self) -> usize {
        self.heap.len() - self.pending.len()
    }

    /// Rebuilds the heap keeping only live entries. O(n); called
    /// automatically once tombstones outnumber live events, which
    /// amortizes to O(1) per cancellation.
    fn compact(&mut self) {
        let pending = &self.pending;
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| pending.contains(&e.id));
        self.heap = BinaryHeap::from(entries);
    }

    /// True if `id` is scheduled and not yet popped or cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.pending.contains(&id)
    }

    /// Earliest pending event's timestamp, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.skim();
        let entry = self.heap.pop()?;
        self.pending.remove(&entry.id);
        Some((entry.time, entry.id, entry.event))
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.next_id
    }

    /// Discards cancelled entries sitting on top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.id) {
                break;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_ps(ps)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.push(t(5), 1);
        q.push(t(5), 2);
        q.push(t(5), 3);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(1));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(2));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(3));
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_fails_second_time() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_popped_event_fails() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.pop();
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
        assert!(!q.is_pending(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn is_pending_reflects_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.is_pending(a));
        q.pop();
        assert!(!q.is_pending(a));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn heavy_cancel_churn_keeps_len_correct_and_bounds_tombstones() {
        // Simulates the FM pattern: every request schedules a timeout that
        // is almost always cancelled. Without compaction the heap would
        // grow to ~n entries; with it, tombstones never exceed the live
        // count (plus the small-heap floor).
        let mut q = EventQueue::new();
        let mut live = Vec::new();
        for i in 0..10_000u64 {
            let id = q.push(t(i), i);
            if i % 10 == 0 {
                live.push(id);
            } else {
                assert!(q.cancel(id));
            }
            assert_eq!(q.len(), live.len());
            assert!(
                q.tombstones() <= q.len().max(COMPACT_MIN_HEAP),
                "tombstones {} exceed bound at step {}",
                q.tombstones(),
                i
            );
        }
        // Everything still pops in order, skipping every cancelled entry.
        let mut popped = Vec::new();
        while let Some((_, id, _)) = q.pop() {
            popped.push(id);
        }
        assert_eq!(popped, live);
        assert_eq!(q.tombstones(), 0);
    }

    #[test]
    fn cancel_all_compacts_heap_to_empty() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..1000u64).map(|i| q.push(t(i), i)).collect();
        for id in ids {
            assert!(q.cancel(id));
        }
        assert!(q.is_empty());
        assert!(
            q.tombstones() < COMPACT_MIN_HEAP,
            "compaction left {} tombstones",
            q.tombstones()
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn compaction_preserves_order_and_ids() {
        // Interleave pushes and cancels so compaction fires mid-stream,
        // then verify the survivors come out in exact (time, id) order.
        let mut q = EventQueue::new();
        let mut survivors = Vec::new();
        for round in 0..20u64 {
            let mut batch = Vec::new();
            for i in 0..50u64 {
                let time = t((round * 50 + i) % 37); // deliberately colliding times
                batch.push((q.push(time, round * 50 + i), time));
            }
            for (k, (id, time)) in batch.into_iter().enumerate() {
                if k % 3 == 0 {
                    survivors.push((time, id));
                } else {
                    q.cancel(id);
                }
            }
        }
        survivors.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some((time, id, _)) = q.pop() {
            got.push((time, id));
        }
        assert_eq!(got, survivors);
    }

    #[test]
    fn total_scheduled_counts_everything() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(t(i), i);
        }
        assert_eq!(q.total_scheduled(), 5);
    }
}
