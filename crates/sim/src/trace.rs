//! Structured event tracing for discovery runs.
//!
//! The paper's whole argument is *measured behavior*; end-of-run
//! aggregates (`DiscoveryRun` in `asi-core`) say *what* happened but
//! not *when*. This module defines the typed, sim-timestamped event
//! stream that the simulator kernel, fabric model and fabric manager
//! emit so a run's timeline can be reconstructed, diffed and exported.
//!
//! Design constraints:
//!
//! - **Zero cost when disabled.** Emission points hold a
//!   [`TraceHandle`]; a disabled handle is a `None` and
//!   [`TraceHandle::emit`] takes the event as a closure, so no event is
//!   even *constructed* unless a sink is installed.
//! - **No upward dependencies.** Event payloads are primitives only
//!   (`u32` device ids, `u64` DSNs, `&'static str` algorithm names), so
//!   the kernel crate stays dependency-free and every layer above it
//!   can emit.
//! - **Single-threaded by design.** The simulation loop is
//!   single-threaded (see `asi-fabric`), so the handle is an
//!   `Rc<RefCell<dyn TraceSink>>`; experiment fan-out (e.g. the Fig. 6
//!   sweep) builds one fabric — and one sink — per thread.
//!
//! Collectors and exporters (ring buffer, JSONL, summaries) live in
//! `asi-harness::report`; the schema is documented in
//! `docs/TRACE_FORMAT.md`.

use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// One typed trace event. See `docs/TRACE_FORMAT.md` for the meaning
/// and the JSONL rendering of every variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A discovery run began (`asi-core`, fabric manager).
    RunStarted {
        /// Algorithm name ("Serial Packet", "Serial Device", "Parallel").
        algorithm: &'static str,
        /// What triggered the run ("initial", "change", "partial", "failover").
        trigger: &'static str,
    },
    /// A discovery run finished (`asi-core`, fabric manager).
    RunFinished {
        /// Devices in the discovered database.
        devices_found: u64,
        /// Links in the discovered database.
        links_found: u64,
        /// PI-4 requests the run sent.
        requests_sent: u64,
        /// Requests that timed out.
        timeouts: u64,
    },
    /// The FM injected a PI-4 request into the fabric.
    RequestInjected {
        /// FM-assigned request id.
        req_id: u32,
        /// True for config-space writes, false for reads.
        write: bool,
    },
    /// A PI-4 completion for `req_id` reached the FM.
    RequestCompleted {
        /// FM-assigned request id.
        req_id: u32,
        /// False if the completion carried an error status.
        ok: bool,
    },
    /// The FM's timeout for `req_id` expired before a completion.
    RequestTimedOut {
        /// FM-assigned request id.
        req_id: u32,
    },
    /// A device emitted a PI-5 event packet (`asi-fabric`).
    Pi5Emitted {
        /// Reporting device's serial number.
        dsn: u64,
        /// Port whose state changed.
        port: u16,
        /// True if the port came up, false if it went down.
        up: bool,
    },
    /// The FM received (and de-duplicated) a PI-5 event.
    Pi5Received {
        /// Reporting device's serial number.
        dsn: u64,
        /// Port whose state changed.
        port: u16,
        /// True if the port came up, false if it went down.
        up: bool,
    },
    /// The discovery engine added a device to its database.
    DeviceDiscovered {
        /// The device's serial number.
        dsn: u64,
        /// True for switches, false for endpoints.
        switch: bool,
        /// Number of ports the device reports.
        ports: u16,
    },
    /// The engine's pending-request table changed size.
    PendingTableSize {
        /// Requests currently in flight.
        size: u32,
    },
    /// The FM finished processing one packet; the span
    /// `[time - busy, time]` was busy time.
    FmBusy {
        /// Length of the busy span.
        busy: SimDuration,
    },
    /// The FM started processing a packet after sitting idle; the span
    /// `[time - idle, time]` was idle time.
    FmIdle {
        /// Length of the idle span.
        idle: SimDuration,
    },
    /// A fabric device became active (`asi-fabric`).
    DeviceActivated {
        /// The device id.
        device: u32,
    },
    /// A fabric device was deactivated or removed (`asi-fabric`).
    DeviceDeactivated {
        /// The device id.
        device: u32,
    },
    /// Periodic simulator-kernel sample of event-queue depth.
    QueueSample {
        /// Events pending in the simulator queue.
        depth: u64,
        /// Events processed so far.
        processed: u64,
    },
    /// A scheduled fault took a link down (`asi-fabric`).
    FaultLinkDown {
        /// Device owning the flapped port.
        device: u32,
        /// The flapped port.
        port: u16,
    },
    /// A flapped link came back up and re-entered training.
    FaultLinkUp {
        /// Device owning the flapped port.
        device: u32,
        /// The flapped port.
        port: u16,
    },
    /// A scheduled fault hung a device's responder.
    FaultDeviceHang {
        /// The hung device.
        device: u32,
    },
    /// A scheduled fault slowed a device's responder.
    FaultDeviceSlow {
        /// The slowed device.
        device: u32,
    },
    /// The loss model dropped a packet on a link.
    FaultPacketLost {
        /// Transmitting device.
        device: u32,
        /// Transmitting port.
        port: u16,
    },
    /// A PI-4 completion was corrupted in flight and discarded at
    /// delivery (the CRC check catches it, so the requester times out).
    FaultCompletionCorrupted {
        /// Device whose ingress discarded the completion.
        device: u32,
    },
    /// A PI-4 completion was duplicated in flight; the requester sees
    /// it twice and must ignore the stale copy.
    FaultCompletionDuplicated {
        /// Device whose ingress received the duplicate.
        device: u32,
    },
    /// The FM's retry policy gave up on a request.
    RequestAbandoned {
        /// FM-assigned request id of the abandoned attempt.
        req_id: u32,
    },
    /// A topology snapshot was loaded as a warm-start seed (`asi-core`).
    SnapshotLoaded {
        /// Devices in the snapshot.
        devices: u64,
        /// Links in the snapshot.
        links: u64,
    },
    /// A topology snapshot was saved from a discovered database.
    SnapshotSaved {
        /// Devices in the snapshot.
        devices: u64,
        /// Links in the snapshot.
        links: u64,
    },
    /// A warm-start verification probe confirmed a cached device.
    WarmVerified {
        /// The confirmed device's serial number.
        dsn: u64,
    },
    /// A warm-start verification probe found a cached device changed,
    /// erroring, or silent.
    VerifyMismatch {
        /// The mismatching device's serial number.
        dsn: u64,
    },
    /// Warm start gave up on the snapshot (too many mismatches) and fell
    /// back to a full cold discovery.
    WarmFallback {
        /// Devices the verification pass could not confirm.
        mismatches: u64,
        /// Mismatch count at which the snapshot is abandoned.
        threshold: u64,
    },
    /// A fabric manager sent a PI-9 election claim (`asi-core`).
    FmClaim {
        /// Claiming manager's DSN.
        dsn: u64,
        /// Claimed election priority.
        priority: u8,
    },
    /// A discovery engine ceded a device's region to a rival manager
    /// that claimed its ownership register first (`asi-core`).
    FmYield {
        /// The contested device's serial number.
        dsn: u64,
        /// DSN of the rival manager that holds the ownership claim.
        to: u64,
    },
    /// A fabric manager's election window closed and it resolved the
    /// ensemble's primary (`asi-core`).
    FmElected {
        /// DSN of the elected primary manager.
        primary: u64,
        /// Managers that took part in the election (claims seen,
        /// including the emitter's own).
        fms: u32,
    },
    /// A standby or secondary manager promoted itself after the primary
    /// stopped answering keepalives (`asi-core`).
    FmFailover {
        /// DSN of the manager taking over.
        dsn: u64,
        /// Keepalive misses that triggered the takeover.
        misses: u32,
    },
    /// The primary merged the last collaborator report into one
    /// certified topology database (`asi-core`).
    MergeComplete {
        /// Devices in the merged database.
        devices: u64,
        /// Links in the merged database.
        links: u64,
        /// Collaborator reports merged.
        reports: u32,
    },
}

impl TraceEvent {
    /// A stable, kebab-case tag naming the variant; used as the JSONL
    /// `"event"` field and for summary grouping.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStarted { .. } => "run-started",
            TraceEvent::RunFinished { .. } => "run-finished",
            TraceEvent::RequestInjected { .. } => "request-injected",
            TraceEvent::RequestCompleted { .. } => "request-completed",
            TraceEvent::RequestTimedOut { .. } => "request-timed-out",
            TraceEvent::Pi5Emitted { .. } => "pi5-emitted",
            TraceEvent::Pi5Received { .. } => "pi5-received",
            TraceEvent::DeviceDiscovered { .. } => "device-discovered",
            TraceEvent::PendingTableSize { .. } => "pending-table-size",
            TraceEvent::FmBusy { .. } => "fm-busy",
            TraceEvent::FmIdle { .. } => "fm-idle",
            TraceEvent::DeviceActivated { .. } => "device-activated",
            TraceEvent::DeviceDeactivated { .. } => "device-deactivated",
            TraceEvent::QueueSample { .. } => "queue-sample",
            TraceEvent::FaultLinkDown { .. } => "fault-link-down",
            TraceEvent::FaultLinkUp { .. } => "fault-link-up",
            TraceEvent::FaultDeviceHang { .. } => "fault-device-hang",
            TraceEvent::FaultDeviceSlow { .. } => "fault-device-slow",
            TraceEvent::FaultPacketLost { .. } => "fault-packet-lost",
            TraceEvent::FaultCompletionCorrupted { .. } => "fault-completion-corrupted",
            TraceEvent::FaultCompletionDuplicated { .. } => "fault-completion-duplicated",
            TraceEvent::RequestAbandoned { .. } => "request-abandoned",
            TraceEvent::SnapshotLoaded { .. } => "snapshot-loaded",
            TraceEvent::SnapshotSaved { .. } => "snapshot-saved",
            TraceEvent::WarmVerified { .. } => "warm-verified",
            TraceEvent::VerifyMismatch { .. } => "verify-mismatch",
            TraceEvent::WarmFallback { .. } => "warm-fallback",
            TraceEvent::FmClaim { .. } => "fm-claim",
            TraceEvent::FmYield { .. } => "fm-yield",
            TraceEvent::FmElected { .. } => "fm-elected",
            TraceEvent::FmFailover { .. } => "fm-failover",
            TraceEvent::MergeComplete { .. } => "merge-complete",
        }
    }
}

/// A trace event stamped with the simulated time it fired at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event.
    pub time: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// Receives trace records. Implemented by collectors (ring buffers,
/// counters, streaming writers) in higher layers.
pub trait TraceSink {
    /// Accepts one record. Called in simulated-time order per emitter.
    fn record(&mut self, record: TraceRecord);
}

/// A cheap, cloneable handle to an optional [`TraceSink`].
///
/// Every emission point stores one of these. The default handle is
/// disabled: [`TraceHandle::emit`] then reduces to a null check and the
/// event-constructing closure is never run.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Rc<RefCell<dyn TraceSink>>>);

impl TraceHandle {
    /// A handle that drops everything (the default).
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// A handle feeding `sink`. Keep your own `Rc` clone to read the
    /// collected records back after the run.
    pub fn to(sink: Rc<RefCell<dyn TraceSink>>) -> TraceHandle {
        TraceHandle(Some(sink))
    }

    /// True if a sink is installed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records `event()` at `time` if a sink is installed. The closure
    /// is not evaluated on a disabled handle, so emission points may
    /// compute event fields inside it for free.
    #[inline]
    pub fn emit(&self, time: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.borrow_mut().record(TraceRecord {
                time,
                event: event(),
            });
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "TraceHandle(enabled)"
        } else {
            "TraceHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct VecSink(Vec<TraceRecord>);

    impl TraceSink for VecSink {
        fn record(&mut self, record: TraceRecord) {
            self.0.push(record);
        }
    }

    #[test]
    fn disabled_handle_never_runs_the_closure() {
        let handle = TraceHandle::disabled();
        assert!(!handle.is_enabled());
        handle.emit(SimTime::ZERO, || panic!("must not be constructed"));
    }

    #[test]
    fn enabled_handle_records_in_order() {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let handle = TraceHandle::to(sink.clone());
        assert!(handle.is_enabled());
        handle.emit(SimTime::from_ns(1), || TraceEvent::PendingTableSize {
            size: 1,
        });
        handle.emit(SimTime::from_ns(2), || TraceEvent::RequestTimedOut {
            req_id: 7,
        });
        let records = &sink.borrow().0;
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].event.kind(), "pending-table-size");
        assert_eq!(
            records[1],
            TraceRecord {
                time: SimTime::from_ns(2),
                event: TraceEvent::RequestTimedOut { req_id: 7 },
            }
        );
    }

    #[test]
    fn clones_share_the_sink() {
        let sink = Rc::new(RefCell::new(VecSink::default()));
        let a = TraceHandle::to(sink.clone());
        let b = a.clone();
        a.emit(SimTime::ZERO, || TraceEvent::QueueSample {
            depth: 1,
            processed: 1,
        });
        b.emit(SimTime::ZERO, || TraceEvent::QueueSample {
            depth: 2,
            processed: 2,
        });
        assert_eq!(sink.borrow().0.len(), 2);
    }

    #[test]
    fn every_kind_is_unique() {
        let events = [
            TraceEvent::RunStarted {
                algorithm: "a",
                trigger: "t",
            },
            TraceEvent::RunFinished {
                devices_found: 0,
                links_found: 0,
                requests_sent: 0,
                timeouts: 0,
            },
            TraceEvent::RequestInjected {
                req_id: 0,
                write: false,
            },
            TraceEvent::RequestCompleted {
                req_id: 0,
                ok: true,
            },
            TraceEvent::RequestTimedOut { req_id: 0 },
            TraceEvent::Pi5Emitted {
                dsn: 0,
                port: 0,
                up: true,
            },
            TraceEvent::Pi5Received {
                dsn: 0,
                port: 0,
                up: true,
            },
            TraceEvent::DeviceDiscovered {
                dsn: 0,
                switch: false,
                ports: 0,
            },
            TraceEvent::PendingTableSize { size: 0 },
            TraceEvent::FmBusy {
                busy: SimDuration::ZERO,
            },
            TraceEvent::FmIdle {
                idle: SimDuration::ZERO,
            },
            TraceEvent::DeviceActivated { device: 0 },
            TraceEvent::DeviceDeactivated { device: 0 },
            TraceEvent::QueueSample {
                depth: 0,
                processed: 0,
            },
            TraceEvent::FaultLinkDown { device: 0, port: 0 },
            TraceEvent::FaultLinkUp { device: 0, port: 0 },
            TraceEvent::FaultDeviceHang { device: 0 },
            TraceEvent::FaultDeviceSlow { device: 0 },
            TraceEvent::FaultPacketLost { device: 0, port: 0 },
            TraceEvent::FaultCompletionCorrupted { device: 0 },
            TraceEvent::FaultCompletionDuplicated { device: 0 },
            TraceEvent::RequestAbandoned { req_id: 0 },
            TraceEvent::SnapshotLoaded {
                devices: 0,
                links: 0,
            },
            TraceEvent::SnapshotSaved {
                devices: 0,
                links: 0,
            },
            TraceEvent::WarmVerified { dsn: 0 },
            TraceEvent::VerifyMismatch { dsn: 0 },
            TraceEvent::WarmFallback {
                mismatches: 0,
                threshold: 0,
            },
            TraceEvent::FmClaim {
                dsn: 0,
                priority: 0,
            },
            TraceEvent::FmYield { dsn: 0, to: 0 },
            TraceEvent::FmElected { primary: 0, fms: 0 },
            TraceEvent::FmFailover { dsn: 0, misses: 0 },
            TraceEvent::MergeComplete {
                devices: 0,
                links: 0,
                reports: 0,
            },
        ];
        let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len());
    }
}
