//! Deterministic pseudo-random number generation for simulations.
//!
//! Experiments must be reproducible from a single `u64` seed, independent of
//! crate versions and platform, so the generator is implemented here:
//! xoshiro256** seeded through SplitMix64 (the construction recommended by
//! the xoshiro authors). It is not cryptographic; it is fast and has good
//! statistical quality for simulation workloads.

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent stream for a named sub-component, so each
    /// fabric entity can own a generator without correlated draws.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let a = self.next_u64();
        SimRng::new(a ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased).
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range: lo > hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(span + 1)
    }

    /// Uniform `usize` index in `[0, len)`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed draw with the given mean (for Poisson
    /// inter-arrival times in the background-traffic generator).
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "gen_exp requires positive mean");
        // Use 1-u to avoid ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Chooses a uniformly random element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
        assert_ne!(x, 0);
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_below_one_is_always_zero() {
        let mut r = SimRng::new(9);
        for _ in 0..20 {
            assert_eq!(r.gen_below(1), 0);
        }
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut r = SimRng::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.gen_range(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_f64_roughly_uniform() {
        let mut r = SimRng::new(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_exp_has_requested_mean() {
        let mut r = SimRng::new(19);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut r = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[5]), Some(&5));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::new(31);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut r1 = SimRng::new(37);
        let mut r2 = SimRng::new(37);
        let mut f1 = r1.fork(9);
        let mut f2 = r2.fork(9);
        assert_eq!(f1.next_u64(), f2.next_u64());
    }
}
