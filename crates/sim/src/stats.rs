//! Measurement utilities: online moments, percentile sets, histograms, and
//! timestamped series used by the experiment harness.

use crate::time::SimTime;

/// Numerically stable online mean/variance accumulator (Welford).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator; 0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Stores all samples to answer percentile queries exactly.
///
/// Discovery experiments record at most a few thousand runs, so keeping the
/// raw samples is cheap and avoids quantile-sketch error.
#[derive(Clone, Debug, Default)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl SampleSet {
    /// Empty set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact p-quantile (nearest-rank with linear interpolation),
    /// `p` in `[0, 1]`. Returns NaN when empty.
    ///
    /// NaN samples never panic the sort (`f64::total_cmp` is a total
    /// order) and are excluded from the quantile: a corrupt sample must
    /// not shift every percentile of the valid ones. If *all* samples
    /// are NaN the result is NaN.
    pub fn quantile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        // Under total_cmp, negative NaNs sort before -inf and positive
        // NaNs after +inf, so the finite/infinite values form one
        // contiguous middle slice.
        let lo_nan = self.samples.iter().take_while(|x| x.is_nan()).count();
        if lo_nan == self.samples.len() {
            return f64::NAN;
        }
        let hi_nan = self.samples.iter().rev().take_while(|x| x.is_nan()).count();
        let valid = &self.samples[lo_nan..self.samples.len() - hi_nan];
        let p = p.clamp(0.0, 1.0);
        let rank = p * (valid.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            valid[lo]
        } else {
            let w = rank - lo as f64;
            valid[lo] * (1.0 - w) + valid[hi] * w
        }
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Fixed-width linear histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts (excludes under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `(bin_center, count)` pairs for plotting.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * width, c))
            .collect()
    }
}

/// A timestamped scalar series, e.g. "time each discovery packet is
/// processed at the FM" (paper Fig. 7a).
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Timestamps must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(last, _)| last <= t),
            "TimeSeries timestamps must be non-decreasing"
        );
        self.points.push((t, v));
    }

    /// All points in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last timestamp, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.points.last().map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of the classic dataset: 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let mut all = OnlineStats::new();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_exact() {
        let mut s = SampleSet::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.25), 2.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let mut s = SampleSet::new();
        s.push(0.0);
        s.push(10.0);
        assert!((s.quantile(0.5) - 5.0).abs() < 1e-12);
        assert!((s.quantile(0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sampleset_quantile_is_nan() {
        let mut s = SampleSet::new();
        assert!(s.quantile(0.5).is_nan());
        assert!(s.is_empty());
    }

    #[test]
    fn nan_samples_sort_without_panicking_and_are_excluded() {
        // Regression: the old partial_cmp sort panicked on the first NaN.
        let mut s = SampleSet::new();
        for x in [3.0, f64::NAN, 1.0, -f64::NAN, 5.0, f64::NAN, 2.0, 4.0] {
            s.push(x);
        }
        // Percentiles come from the 5 valid samples only.
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert!(!s.quantile(0.25).is_nan());
        assert!(!s.quantile(0.99).is_nan());
    }

    #[test]
    fn all_nan_samples_report_nan_quantile() {
        let mut s = SampleSet::new();
        s.push(f64::NAN);
        s.push(-f64::NAN);
        assert!(s.quantile(0.5).is_nan());
    }

    #[test]
    fn nan_with_infinities_keeps_valid_slice_contiguous() {
        let mut s = SampleSet::new();
        for x in [f64::INFINITY, f64::NAN, f64::NEG_INFINITY, 0.0, -f64::NAN] {
            s.push(x);
        }
        assert_eq!(s.quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(s.quantile(1.0), f64::INFINITY);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
    }

    #[test]
    fn histogram_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "invalid histogram")]
    fn histogram_rejects_bad_bounds() {
        let _ = Histogram::new(5.0, 5.0, 10);
    }

    #[test]
    fn timeseries_preserves_order() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_ns(1), 1.0);
        ts.push(SimTime::from_ns(1), 2.0);
        ts.push(SimTime::from_ns(5), 3.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last_time(), Some(SimTime::from_ns(5)));
        assert_eq!(ts.points()[1], (SimTime::from_ns(1), 2.0));
        assert!(!ts.is_empty());
    }
}
