//! The simulation engine: a clock plus the pending-event queue.
//!
//! The engine is generic over the event payload `E`; the caller owns the
//! dispatch loop, which keeps borrows simple and lets the fabric model hold
//! all mutable state outside the engine:
//!
//! ```
//! use asi_sim::{Simulator, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_after(SimDuration::from_ns(10), Ev::Ping(1));
//! let mut seen = vec![];
//! while let Some(fired) = sim.next_event() {
//!     seen.push(fired.event);
//! }
//! assert_eq!(seen, vec![Ev::Ping(1)]);
//! ```

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, TraceHandle};

/// An event popped from the queue, stamped with its firing time.
#[derive(Debug)]
pub struct Fired<E> {
    /// The instant the event fires (now equal to `Simulator::now`).
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub id: EventId,
    /// The payload.
    pub event: E,
}

/// Discrete-event simulation engine.
///
/// Invariants:
/// - `now()` is monotonically non-decreasing.
/// - events fire in `(time, schedule order)` order, so runs are
///   deterministic.
/// - scheduling in the past (before `now()`) is a logic error and panics in
///   debug builds; in release it fires immediately at `now()`.
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    /// Hard cap on processed events; guards against accidental event storms
    /// in tests. `u64::MAX` by default.
    event_limit: u64,
    /// Observability: queue-depth samples go here every `trace_every`
    /// processed events (0 = never; the hot path then pays one integer
    /// compare).
    trace: TraceHandle,
    trace_every: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an engine at time zero.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            event_limit: u64::MAX,
            trace: TraceHandle::disabled(),
            trace_every: 0,
        }
    }

    /// Creates an engine with a pre-reserved event-queue capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Simulator {
            queue: EventQueue::with_capacity(cap),
            ..Simulator::new()
        }
    }

    /// Sets a hard cap on the number of events that [`Self::next_event`]
    /// will return; exceeding it panics. Useful to fail fast on runaway
    /// feedback loops in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Installs a trace sink sampling queue depth every `every` processed
    /// events ([`TraceEvent::QueueSample`]). `every = 0` disables
    /// sampling; a disabled `handle` also keeps the hot path free.
    pub fn set_trace(&mut self, handle: TraceHandle, every: u64) {
        self.trace_every = if handle.is_enabled() { every } else { 0 };
        self.trace = handle;
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is scheduled.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Debug builds panic if `at < now()`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        self.queue.push(at, event)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        let at = self
            .now
            .checked_add(delay)
            .expect("SimTime overflow while scheduling");
        self.queue.push(at, event)
    }

    /// Schedules `event` to fire immediately (at `now()`, after any events
    /// already scheduled for `now()`).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.push(self.now, event)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// True if `id` is still pending.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.queue.is_pending(id)
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event and advances the clock to its firing time.
    pub fn next_event(&mut self) -> Option<Fired<E>> {
        let (time, id, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.processed += 1;
        assert!(
            self.processed <= self.event_limit,
            "simulation exceeded event limit of {} events",
            self.event_limit
        );
        if self.trace_every != 0 && self.processed.is_multiple_of(self.trace_every) {
            let (depth, processed) = (self.queue.len() as u64, self.processed);
            self.trace
                .emit(self.now, || TraceEvent::QueueSample { depth, processed });
        }
        Some(Fired { time, id, event })
    }

    /// Pops the next event only if it fires at or before `deadline`.
    /// If the next event is later (or none exists), the clock advances to
    /// `deadline` and `None` is returned.
    pub fn next_event_until(&mut self, deadline: SimTime) -> Option<Fired<E>> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.next_event(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Advances the clock without processing events (e.g. to model a dead
    /// period). Panics in debug builds if events would be skipped.
    pub fn advance_to(&mut self, at: SimTime) {
        debug_assert!(
            self.queue.peek_time().is_none_or(|t| t >= at),
            "advance_to would skip pending events"
        );
        if at > self.now {
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_ns(10), "a");
        sim.schedule_at(SimTime::from_ns(5), "b");
        let f = sim.next_event().unwrap();
        assert_eq!(f.event, "b");
        assert_eq!(sim.now(), SimTime::from_ns(5));
        let f = sim.next_event().unwrap();
        assert_eq!(f.event, "a");
        assert_eq!(sim.now(), SimTime::from_ns(10));
        assert!(sim.next_event().is_none());
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_ns(100), ());
        sim.next_event();
        sim.schedule_after(SimDuration::from_ns(50), ());
        let f = sim.next_event().unwrap();
        assert_eq!(f.time, SimTime::from_ns(150));
    }

    #[test]
    fn schedule_now_fires_at_current_time() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_ns(7), 1);
        sim.next_event();
        sim.schedule_now(2);
        let f = sim.next_event().unwrap();
        assert_eq!(f.time, SimTime::from_ns(7));
        assert_eq!(f.event, 2);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut sim = Simulator::new();
        let t = SimTime::from_us(1);
        for i in 0..10 {
            sim.schedule_at(t, i);
        }
        for i in 0..10 {
            assert_eq!(sim.next_event().unwrap().event, i);
        }
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut sim = Simulator::new();
        let id = sim.schedule_at(SimTime::from_ns(1), "x");
        sim.schedule_at(SimTime::from_ns(2), "y");
        assert!(sim.cancel(id));
        assert!(!sim.is_pending(id));
        assert_eq!(sim.next_event().unwrap().event, "y");
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn next_event_until_respects_deadline() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_us(10), "late");
        assert!(sim.next_event_until(SimTime::from_us(5)).is_none());
        assert_eq!(sim.now(), SimTime::from_us(5));
        // Event still pending and fires once the deadline passes it.
        let f = sim.next_event_until(SimTime::from_us(20)).unwrap();
        assert_eq!(f.event, "late");
        assert_eq!(sim.now(), SimTime::from_us(10));
    }

    #[test]
    fn next_event_until_with_empty_queue_advances_clock() {
        let mut sim: Simulator<()> = Simulator::new();
        assert!(sim.next_event_until(SimTime::from_ms(1)).is_none());
        assert_eq!(sim.now(), SimTime::from_ms(1));
    }

    #[test]
    fn pending_and_idle_reflect_queue() {
        let mut sim = Simulator::new();
        assert!(sim.is_idle());
        sim.schedule_after(SimDuration::from_ns(1), ());
        assert_eq!(sim.pending(), 1);
        assert!(!sim.is_idle());
        sim.next_event();
        assert!(sim.is_idle());
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips() {
        let mut sim = Simulator::new();
        sim.set_event_limit(2);
        for _ in 0..3 {
            sim.schedule_now(());
        }
        while sim.next_event().is_some() {}
    }

    #[test]
    fn queue_depth_sampling_fires_every_n_events() {
        use crate::trace::{TraceHandle, TraceRecord, TraceSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Default)]
        struct VecSink(Vec<TraceRecord>);
        impl TraceSink for VecSink {
            fn record(&mut self, record: TraceRecord) {
                self.0.push(record);
            }
        }

        let sink = Rc::new(RefCell::new(VecSink::default()));
        let mut sim = Simulator::new();
        sim.set_trace(TraceHandle::to(sink.clone()), 3);
        for i in 0..10u64 {
            sim.schedule_at(SimTime::from_ns(i), i);
        }
        while sim.next_event().is_some() {}
        let records = &sink.borrow().0;
        // 10 events, sampled at processed = 3, 6, 9.
        assert_eq!(records.len(), 3);
        match records[0].event {
            crate::trace::TraceEvent::QueueSample { depth, processed } => {
                assert_eq!(processed, 3);
                assert_eq!(depth, 7);
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn disabled_trace_disables_sampling() {
        let mut sim = Simulator::new();
        sim.set_trace(crate::trace::TraceHandle::disabled(), 3);
        sim.schedule_now(());
        assert!(sim.next_event().is_some());
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_to(SimTime::from_us(3));
        assert_eq!(sim.now(), SimTime::from_us(3));
        sim.advance_to(SimTime::from_us(1));
        assert_eq!(sim.now(), SimTime::from_us(3));
    }
}
