//! Simulation time: a `u64` count of picoseconds.
//!
//! Picosecond resolution lets the fabric model express sub-nanosecond
//! serialization steps (one byte on a 2 Gb/s ASI x1 lane takes 4 ns) while
//! still covering ~213 days of simulated time, far beyond any discovery run.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in picoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

/// One picosecond.
pub const PICOSECOND: SimDuration = SimDuration(1);
/// One nanosecond (1000 ps).
pub const NANOSECOND: SimDuration = SimDuration(1_000);
/// One microsecond.
pub const MICROSECOND: SimDuration = SimDuration(1_000_000);
/// One millisecond.
pub const MILLISECOND: SimDuration = SimDuration(1_000_000_000);
/// One second.
pub const SECOND: SimDuration = SimDuration(1_000_000_000_000);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Builds an instant from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Builds an instant from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Builds an instant from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// The instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a span from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Builds a span from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Builds a span from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Builds a span from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Builds a span from a fractional count of seconds, rounding to the
    /// nearest picosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let ps = secs * 1e12;
        if ps >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ps.round() as u64)
        }
    }

    /// Builds a span from a fractional count of microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The span expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a dimensionless factor (e.g. a processing-speed
    /// factor), rounding to the nearest picosecond.
    ///
    /// Note the paper's convention: a processing *speed* factor `f` divides
    /// the time, so callers that apply Fig. 8/9 factors use
    /// `d.scaled(1.0 / f)`.
    pub fn scaled(self, factor: f64) -> SimDuration {
        Self::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Integer division into another duration, i.e. how many `other` spans
    /// fit into `self`.
    #[inline]
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero-length SimDuration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

/// Renders a picosecond count with a human-friendly unit.
fn format_ps(ps: u64) -> String {
    if ps == 0 {
        "0s".to_string()
    } else if ps.is_multiple_of(1_000_000_000_000) {
        format!("{}s", ps / 1_000_000_000_000)
    } else if ps >= 1_000_000_000 {
        format!("{:.3}ms", ps as f64 / 1e9)
    } else if ps >= 1_000_000 {
        format!("{:.3}us", ps as f64 / 1e6)
    } else if ps >= 1_000 {
        format!("{:.3}ns", ps as f64 / 1e3)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimDuration::from_us(2).as_ps(), 2_000_000);
        assert_eq!(SimDuration::from_ms(5).as_ps(), 5_000_000_000);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_ns(10) + SimDuration::from_ns(5);
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_us(3);
        let b = SimTime::from_us(1);
        assert_eq!(a - b, SimDuration::from_us(2));
        assert_eq!(a.since(b), SimDuration::from_us(2));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_us(1);
        let b = SimTime::from_us(3);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn secs_round_trip() {
        let d = SimDuration::from_secs_f64(1.5e-6);
        assert_eq!(d, SimDuration::from_ns(1_500));
        assert!((d.as_secs_f64() - 1.5e-6).abs() < 1e-18);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn scaled_applies_factor() {
        let d = SimDuration::from_us(20);
        assert_eq!(d.scaled(0.5), SimDuration::from_us(10));
        assert_eq!(d.scaled(2.0), SimDuration::from_us(40));
    }

    #[test]
    fn div_duration_counts_spans() {
        assert_eq!(
            SimDuration::from_us(10).div_duration(SimDuration::from_ns(2_500)),
            4
        );
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_duration_zero_panics() {
        let _ = SimDuration::from_us(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ns(500).to_string(), "500.000ns");
        assert_eq!(SimTime::from_ns(1500).to_string(), "1.500us");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_ps(2_000_000_000_000).to_string(), "2s");
        assert_eq!(SimTime::ZERO.to_string(), "0s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_ps(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_ps(7)),
            Some(SimTime::from_ps(7))
        );
    }

    #[test]
    fn duration_arithmetic() {
        let mut d = SimDuration::from_ns(10);
        d += SimDuration::from_ns(5);
        assert_eq!(d, SimDuration::from_ns(15));
        d -= SimDuration::from_ns(3);
        assert_eq!(d, SimDuration::from_ns(12));
        assert_eq!(d * 2, SimDuration::from_ns(24));
        assert_eq!(d / 4, SimDuration::from_ns(3));
        assert_eq!(
            SimDuration::from_ns(5).saturating_sub(SimDuration::from_ns(9)),
            SimDuration::ZERO
        );
    }
}
