//! `asi-sim` — discrete-event simulation kernel for the Advanced Switching
//! reproduction.
//!
//! This crate replaces the OPNET Modeler substrate used by the paper with a
//! small, deterministic discrete-event engine:
//!
//! - [`SimTime`]/[`SimDuration`] — picosecond-resolution simulated time;
//! - [`Simulator`] — clock + cancellable pending-event queue with
//!   deterministic `(time, schedule order)` event ordering;
//! - [`SimRng`] — seedable xoshiro256** generator so every experiment is
//!   reproducible from a single seed;
//! - [`stats`] — online statistics, percentiles, histograms and time series
//!   used by the measurement harness;
//! - [`trace`] — the structured observability layer: typed, sim-timestamped
//!   [`TraceEvent`]s emitted through a zero-cost-when-disabled
//!   [`TraceHandle`] by the kernel, the fabric model and the fabric manager.
//!
//! The engine is deliberately generic: the ASI fabric model (crate
//! `asi-fabric`) owns the event payload type and the dispatch loop.

#![warn(missing_docs)]

mod engine;
pub mod hash;
mod queue;
mod rng;
pub mod stats;
mod time;
pub mod trace;

pub use engine::{Fired, Simulator};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use queue::{EventId, EventQueue};
pub use rng::SimRng;
pub use stats::{Histogram, OnlineStats, SampleSet, TimeSeries};
pub use time::{SimDuration, SimTime, MICROSECOND, MILLISECOND, NANOSECOND, PICOSECOND, SECOND};
pub use trace::{TraceEvent, TraceHandle, TraceRecord, TraceSink};
