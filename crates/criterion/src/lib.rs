//! A minimal, dependency-free stand-in for the subset of the
//! `criterion` API used by this workspace's benches.
//!
//! The build environment is fully offline, so the real `criterion`
//! crate cannot be fetched from crates.io. This vendored stand-in keeps
//! every `benches/*.rs` file compiling and running unchanged under
//! `cargo bench`: it times each benchmark with `std::time::Instant`
//! over a bounded number of iterations and prints a one-line plain-text
//! report (mean per iteration, plus throughput when configured).
//!
//! Differences from the real crate, deliberately accepted: no
//! statistical analysis, outlier detection, HTML reports, or baselines
//! — the numbers are honest wall-clock means, good enough for the
//! coarse regression checks this repository performs.

//! ## Environment controls
//!
//! - `ASI_BENCH_SMOKE=1` — smoke mode: one measured iteration per
//!   benchmark and no warm-up budget, so CI can exercise every bench
//!   body in seconds (the numbers are not comparable to a full run).
//! - `ASI_BENCH_STABLE=1` — stable-smoke mode: keeps multiple measured
//!   iterations but caps the per-benchmark measurement budget at 500 ms
//!   (warm-up 100 ms), so the stable `micro/*` benches produce numbers
//!   comparable across runs in CI-compatible time. Takes precedence
//!   over `ASI_BENCH_SMOKE`.
//! - `ASI_BENCH_JSON=<path>` — after all groups finish, write every
//!   measurement as a machine-readable JSON report (see
//!   [`write_json_if_requested`] for the schema).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, usually built from a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming both a function and a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

/// Times one benchmark's closure.
pub struct Bencher<'a> {
    settings: Settings,
    /// Filled in by `iter`: (total elapsed, iterations).
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly, recording the fastest-batch wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least
        // once), counting iterations to calibrate the batch size below.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed();
        // Measure in up to 20 equal batches and keep the fastest one:
        // scheduler noise on a shared runner only ever adds time, so
        // the minimum batch mean is a far more repeatable estimate of
        // the true cost than the overall mean. The reported `iters` is
        // the per-batch count.
        let batches = self.settings.sample_size.clamp(1, 20);
        let mut per_batch = (self.settings.sample_size / batches).max(1) as u64;
        // Sub-microsecond benchmarks: grow the batch until one batch
        // covers ~1 ms of work, so timer resolution and per-call
        // overhead cannot dominate the measurement. Calibrated from the
        // warm-up rate; skipped in smoke mode (sample_size 1), which
        // promises exactly one iteration.
        if self.settings.sample_size > 1 && warm_iters > 0 {
            let est_ns = (warm_elapsed.as_nanos() / warm_iters as u128).max(1);
            let needed = (1_000_000 / est_ns).max(1) as u64;
            per_batch = per_batch.max(needed.min(1_000_000));
        }
        let started = Instant::now();
        let mut best: Option<Duration> = None;
        for _ in 0..batches {
            let batch_start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            let elapsed = batch_start.elapsed();
            if best.is_none_or(|b| elapsed < b) {
                best = Some(elapsed);
            }
            if started.elapsed() >= self.settings.measurement_time {
                break;
            }
        }
        *self.result = best.map(|elapsed| (elapsed, per_batch));
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(
    name: &str,
    settings: Settings,
    throughput: Option<Throughput>,
) -> impl FnOnce(Option<(Duration, u64)>) + '_ {
    move |result| {
        let Some((elapsed, iters)) = result else {
            println!("{name:<48} (no measurement)");
            return;
        };
        let _ = settings;
        let per_iter = elapsed / iters.max(1) as u32;
        let mut line = format!("{name:<48} {:>12}/iter ({iters} iters)", human(per_iter));
        if let Some(t) = throughput {
            let secs = per_iter.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.1} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  {:.1} MiB/s",
                        n as f64 / secs / (1024.0 * 1024.0)
                    ));
                }
            }
        }
        println!("{line}");
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v != "0" && !v.is_empty())
}

/// True when `ASI_BENCH_SMOKE` requests the 1-iteration CI mode.
fn smoke_mode() -> bool {
    env_flag("ASI_BENCH_SMOKE")
}

/// True when `ASI_BENCH_STABLE` requests the bounded-budget regression
/// mode (the one `bench-compare` baselines are generated with).
fn stable_mode() -> bool {
    env_flag("ASI_BENCH_STABLE")
}

/// One finished measurement, kept for the optional JSON report.
struct Measurement {
    name: String,
    ns_per_iter: f64,
    iters: u64,
}

/// Process-wide measurement registry feeding [`write_json_if_requested`].
static RESULTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

fn run_one<F>(name: &str, mut settings: Settings, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if stable_mode() {
        settings.measurement_time = settings.measurement_time.min(Duration::from_millis(500));
        settings.warm_up_time = Duration::from_millis(100);
    } else if smoke_mode() {
        settings.sample_size = 1;
        settings.warm_up_time = Duration::ZERO;
    }
    let mut result = None;
    let mut bencher = Bencher {
        settings,
        result: &mut result,
    };
    f(&mut bencher);
    if let Some((elapsed, iters)) = result {
        if let Ok(mut results) = RESULTS.lock() {
            results.push(Measurement {
                name: name.to_string(),
                ns_per_iter: elapsed.as_nanos() as f64 / iters.max(1) as f64,
                iters,
            });
        }
    }
    report(name, settings, throughput)(result);
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes every measurement taken so far to the file named by the
/// `ASI_BENCH_JSON` environment variable (no-op when unset). Invoked by
/// [`criterion_main!`] after all groups run, so a plain `cargo bench`
/// with the variable exported produces the committed `BENCH_*.json`
/// baselines.
///
/// Schema (`asi-bench/v1`):
///
/// ```json
/// {
///   "schema": "asi-bench/v1",
///   "mode": "full",
///   "results": [
///     { "name": "group/bench", "ns_per_iter": 1234.5, "iters": 10 }
///   ]
/// }
/// ```
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("ASI_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let results = match RESULTS.lock() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mode = if stable_mode() {
        "stable"
    } else if smoke_mode() {
        "smoke"
    } else {
        "full"
    };
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"asi-bench/v1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n  \"results\": [\n"));
    for (i, m) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {} }}{sep}\n",
            json_escape(&m.name),
            m.ns_per_iter,
            m.iters
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// The benchmark driver; see the real criterion docs.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.settings.warm_up_time = d;
        self
    }

    /// Applies command-line overrides (accepted and ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name,
            settings,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.settings, None, f);
        self
    }
}

/// A group of related benchmarks sharing settings and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.settings, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines `main` running the given groups, then emitting the optional
/// `ASI_BENCH_JSON` report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_chains() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_micros(10));
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls >= 4, "warm-up plus measured iterations");
    }

    #[test]
    fn group_settings_and_throughput() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_micros(10))
            .throughput(Throughput::Elements(10));
        group.bench_function("a", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter("p"), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2))
        });
        group.finish();
    }
}
