//! `asi-bench` — shared helpers for the Criterion benchmark suite.
//!
//! The benches regenerate the paper's tables and figures (see the
//! `figures` bench and the `experiments` binary in `asi-harness` for the
//! full-fidelity runs) and measure the simulator's own wall-clock
//! performance (the `micro` bench).

#![warn(missing_docs)]

use asi_core::Algorithm;
use asi_harness::{Bench, Scenario};
use asi_topo::Topology;

/// Runs one initial discovery and returns `(sim-time seconds, requests)`.
/// The standard unit of work benchmarked across the suite.
pub fn discover_once(topo: &Topology, algorithm: Algorithm) -> (f64, u64) {
    let bench = Bench::start(topo, &Scenario::new(algorithm), &[]);
    let run = bench.last_run();
    (run.discovery_time().as_secs_f64(), run.requests_sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_topo::mesh;

    #[test]
    fn discover_once_returns_plausible_values() {
        let g = mesh(3, 3);
        let (t, reqs) = discover_once(&g.topology, Algorithm::Parallel);
        assert!(t > 0.0 && t < 1.0);
        assert!(reqs > 20);
    }
}
