//! Discovery wall-clock benchmarks: one group per topology family, one
//! bench per algorithm — the simulator-performance view of the paper's
//! central comparison.

use asi_bench::discover_once;
use asi_core::Algorithm;
use asi_topo::Table1;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_discovery(c: &mut Criterion) {
    for spec in [
        Table1::Mesh(3),
        Table1::Torus(4),
        Table1::Mesh(6),
        Table1::FatTree(4, 3),
        Table1::FatTree(8, 2),
    ] {
        let topo = spec.build();
        let mut group = c.benchmark_group(format!("discovery/{}", spec.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(5))
            .warm_up_time(Duration::from_millis(500));
        for alg in Algorithm::all() {
            group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &alg| {
                b.iter(|| std::hint::black_box(discover_once(&topo, alg)))
            });
        }
        group.finish();
    }
}

criterion_group!(discovery, bench_discovery);
criterion_main!(discovery);
