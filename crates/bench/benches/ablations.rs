//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! background traffic, credit flow control, partial assimilation, and
//! the extended vs spec turn pool.

use asi_core::Algorithm;
use asi_harness::{Bench, Scenario, TrafficSpec};
use asi_sim::SimDuration;
use asi_topo::mesh;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_traffic(c: &mut Criterion) {
    let g = mesh(4, 4);
    let mut group = c.benchmark_group("ablation/traffic");
    group.bench_function("quiet", |b| {
        b.iter(|| {
            let bench = Bench::start(&g.topology, &Scenario::new(Algorithm::Parallel), &[]);
            std::hint::black_box(bench.last_run().discovery_time().as_secs_f64())
        })
    });
    group.bench_function("loaded", |b| {
        let s = Scenario::new(Algorithm::Parallel).with_traffic(TrafficSpec {
            mean_gap: SimDuration::from_us(30),
            payload: 512,
        });
        b.iter(|| {
            let bench = Bench::start(&g.topology, &s, &[]);
            std::hint::black_box(bench.last_run().discovery_time().as_secs_f64())
        })
    });
    group.finish();
}

fn bench_flow_control(c: &mut Criterion) {
    let g = mesh(4, 4);
    let mut group = c.benchmark_group("ablation/flow_control");
    for (label, fc) in [("credits_on", true), ("credits_off", false)] {
        group.bench_function(label, |b| {
            let s = Scenario::new(Algorithm::Parallel).with_flow_control(fc);
            b.iter(|| {
                let bench = Bench::start(&g.topology, &s, &[]);
                std::hint::black_box(bench.last_run().discovery_time().as_secs_f64())
            })
        });
    }
    group.finish();
}

fn bench_assimilation(c: &mut Criterion) {
    let g = mesh(4, 4);
    let mut group = c.benchmark_group("ablation/assimilation");
    group.sample_size(10);
    for (label, partial) in [("full_rediscovery", false), ("partial_region", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let s = Scenario::new(Algorithm::Parallel)
                    .with_seed(0xCAFE)
                    .with_partial_assimilation(partial);
                let mut bench = Bench::start(&g.topology, &s, &[]);
                let victim = bench.pick_victim_switch();
                let run = bench.remove_switch(victim);
                std::hint::black_box(run.discovery_time().as_secs_f64())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_traffic, bench_flow_control, bench_assimilation
}
criterion_main!(ablations);
