//! One Criterion benchmark per paper table/figure. Each bench runs the
//! corresponding experiment regenerator (quick mode) so `cargo bench`
//! exercises every reproduction path end to end; the full-fidelity
//! figures come from `cargo run --release -p asi-harness --bin
//! experiments -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/topology_inventory", |b| {
        b.iter(|| std::hint::black_box(asi_harness::experiments::table1::run()))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/fm_processing_time_sweep", |b| {
        b.iter(|| std::hint::black_box(asi_harness::experiments::fig4::run(true)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/change_discovery_sweep", |b| {
        b.iter(|| {
            let out = asi_harness::experiments::fig6::run(true);
            std::hint::black_box((out.scatter.series.len(), out.averages.series.len()))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7a/fm_timeline_3x3_mesh", |b| {
        b.iter(|| std::hint::black_box(asi_harness::experiments::fig7::run_timeline()))
    });
    c.bench_function("fig7b/ideal_models", |b| {
        b.iter(|| std::hint::black_box(asi_harness::experiments::fig7::run_ideal()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8a/fm_factor_sweep", |b| {
        b.iter(|| std::hint::black_box(asi_harness::experiments::fig8::run_fm_sweep(true)))
    });
    c.bench_function("fig8b/device_factor_sweep", |b| {
        b.iter(|| std::hint::black_box(asi_harness::experiments::fig8::run_device_sweep(true)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9/factor_combination_panels", |b| {
        b.iter(|| {
            let out = asi_harness::experiments::fig9::run(true);
            std::hint::black_box((out.a.series.len(), out.b.series.len(), out.c.series.len()))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_table1, bench_fig4, bench_fig6, bench_fig7, bench_fig8, bench_fig9
}
criterion_main!(figures);
