//! Micro-benchmarks of the substrate hot paths: event queue, RNG, turn
//! pool, header/packet codecs, topology generation and path computation.

use asi_proto::{
    turn_for, turn_width, CapabilityAddr, Packet, Payload, Pi4, ProtocolInterface, RouteHeader,
    TurnCursor, TurnPool, MANAGEMENT_TC, MAX_POOL_BITS,
};
use asi_sim::{EventQueue, SimRng, SimTime, Simulator};
use asi_topo::{mesh, routes_from, Table1};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k", |b| {
        let mut rng = SimRng::new(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.gen_below(1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for &t in &times {
                q.push(SimTime::from_ps(t), t);
            }
            let mut acc = 0u64;
            while let Some((_, _, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("cascade_10k", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_capacity(64);
            sim.schedule_at(SimTime::from_ps(1), 0u64);
            let mut n = 0u64;
            while let Some(f) = sim.next_event() {
                n += 1;
                if n < 10_000 {
                    sim.schedule_after(asi_sim::SimDuration::from_ps(f.event % 97 + 1), n);
                }
            }
            std::hint::black_box(n)
        })
    });
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/rng");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("next_u64_1k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_turn_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/turn_pool");
    group.bench_function("encode_walk_14_hops", |b| {
        b.iter(|| {
            let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
            for i in 0..14u8 {
                pool.push_turn(turn_for(i % 16, (i + 5) % 16, 16), turn_width(16))
                    .unwrap();
            }
            let mut cursor = TurnCursor::start(&pool, asi_proto::Direction::Forward);
            let mut acc = 0u32;
            while !cursor.exhausted(&pool) {
                let (t, next) = cursor.take_turn(&pool, 4).unwrap();
                acc += u32::from(t);
                cursor = next;
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
    for i in 0..10u8 {
        pool.push_turn(i % 16, 4).unwrap();
    }
    let header = RouteHeader::forward(ProtocolInterface::DeviceManagement, MANAGEMENT_TC, pool);
    let packet = Packet::new(
        header,
        Payload::Pi4(Pi4::ReadCompletion {
            req_id: 7,
            data: vec![0xDEAD_BEEF; 8],
        }),
    );
    let bytes = packet.encode();
    let mut group = c.benchmark_group("micro/codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("packet_encode", |b| {
        b.iter(|| std::hint::black_box(packet.encode()))
    });
    group.bench_function("packet_decode", |b| {
        b.iter(|| std::hint::black_box(Packet::decode(&bytes).unwrap()))
    });
    group.bench_function("read_request_encode", |b| {
        let req = Pi4::ReadRequest {
            req_id: 1,
            addr: CapabilityAddr::baseline(6),
            dwords: 8,
        };
        b.iter(|| {
            let mut out = Vec::with_capacity(16);
            req.encode(&mut out);
            std::hint::black_box(out)
        })
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/topology");
    group.bench_function("build_8x8_mesh", |b| {
        b.iter(|| std::hint::black_box(mesh(8, 8).topology.node_count()))
    });
    group.bench_function("build_4port_4tree", |b| {
        b.iter(|| std::hint::black_box(Table1::FatTree(4, 4).build().node_count()))
    });
    let g = mesh(8, 8);
    let src = g.endpoint_at(0, 0);
    group.bench_function("bfs_routes_8x8_mesh", |b| {
        b.iter(|| std::hint::black_box(routes_from(&g.topology, src).len()))
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_event_queue, bench_rng, bench_turn_pool, bench_codecs, bench_topology
}
criterion_main!(micro);
