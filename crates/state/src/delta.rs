//! Structural diffing between two snapshots.

use crate::snapshot::{link_key, Snapshot};
use std::collections::BTreeSet;

/// What changed between two snapshots of the same fabric.
///
/// All lists are sorted, so two deltas over the same pair of snapshots
/// compare equal however the snapshots were built.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TopologyDelta {
    /// DSNs present only in the newer snapshot.
    pub added_devices: Vec<u64>,
    /// DSNs present only in the older snapshot.
    pub removed_devices: Vec<u64>,
    /// DSNs present in both whose incident link set changed — the device
    /// survived but was re-cabled (moved port, new neighbour, lost link).
    pub recabled_devices: Vec<u64>,
    /// Links present only in the newer snapshot (canonical keys).
    pub added_links: Vec<(u64, u8, u64, u8)>,
    /// Links present only in the older snapshot (canonical keys).
    pub removed_links: Vec<(u64, u8, u64, u8)>,
}

impl TopologyDelta {
    /// Computes the delta from `older` to `newer`.
    pub fn between(older: &Snapshot, newer: &Snapshot) -> TopologyDelta {
        let old_dsns: BTreeSet<u64> = older.devices.iter().map(|d| d.info.dsn).collect();
        let new_dsns: BTreeSet<u64> = newer.devices.iter().map(|d| d.info.dsn).collect();
        let old_links: BTreeSet<(u64, u8, u64, u8)> =
            older.links.iter().map(|&l| link_key(l)).collect();
        let new_links: BTreeSet<(u64, u8, u64, u8)> =
            newer.links.iter().map(|&l| link_key(l)).collect();
        let added_links: Vec<_> = new_links.difference(&old_links).copied().collect();
        let removed_links: Vec<_> = old_links.difference(&new_links).copied().collect();
        // A surviving device is "re-cabled" when any link touching it
        // appeared or disappeared.
        let mut recabled: BTreeSet<u64> = BTreeSet::new();
        for &(a, _, b, _) in added_links.iter().chain(removed_links.iter()) {
            for dsn in [a, b] {
                if old_dsns.contains(&dsn) && new_dsns.contains(&dsn) {
                    recabled.insert(dsn);
                }
            }
        }
        TopologyDelta {
            added_devices: new_dsns.difference(&old_dsns).copied().collect(),
            removed_devices: old_dsns.difference(&new_dsns).copied().collect(),
            recabled_devices: recabled.into_iter().collect(),
            added_links,
            removed_links,
        }
    }

    /// True when the snapshots describe the same topology.
    pub fn is_empty(&self) -> bool {
        self.added_devices.is_empty()
            && self.removed_devices.is_empty()
            && self.recabled_devices.is_empty()
            && self.added_links.is_empty()
            && self.removed_links.is_empty()
    }

    /// Total number of device + link changes (re-cablings not counted
    /// separately: they are derived from the link changes).
    pub fn change_count(&self) -> usize {
        self.added_devices.len()
            + self.removed_devices.len()
            + self.added_links.len()
            + self.removed_links.len()
    }
}

impl std::fmt::Display for TopologyDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "+{} -{} devices, +{} -{} links, {} re-cabled",
            self.added_devices.len(),
            self.removed_devices.len(),
            self.added_links.len(),
            self.removed_links.len(),
            self.recabled_devices.len()
        )
    }
}
