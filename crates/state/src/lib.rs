//! `asi-state` — persistent discovered-topology state.
//!
//! The paper's fabric manager is always *cold*: after power-up and after
//! every topological change it re-walks the fabric with PI-4 reads. Real
//! managers cache what they learned. This crate defines the cached form:
//! a versioned, checksummed **snapshot** of everything discovery produces
//! (devices, per-port attributes, links, turn-pool routes), a compact
//! binary encoding with save/load, and a structural [`TopologyDelta`]
//! diff between two snapshots (devices/links added, removed, re-cabled).
//!
//! `asi-core` consumes a [`Snapshot`] as the seed of its warm-start
//! discovery mode (verify the cached topology with one targeted probe per
//! known device instead of re-walking the fabric); `asi-harness` adds a
//! JSONL rendering on top of the same types.
//!
//! The binary encoding is canonical: devices are sorted by DSN and links
//! by their canonical key before writing, so `save → load → save` is
//! byte-identical whatever order the in-memory snapshot was built in.

#![warn(missing_docs)]

mod codec;
mod delta;
mod snapshot;

pub use codec::{checksum_of, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use delta::TopologyDelta;
pub use snapshot::{Snapshot, SnapshotDevice, SnapshotRoute};
