//! Compact binary encoding: magic + version + records + FNV-1a checksum.
//!
//! All integers are little-endian. The trailing checksum covers every
//! preceding byte, so truncation, bit rot and version skew are all caught
//! before any record is trusted.

use crate::snapshot::{Snapshot, SnapshotDevice, SnapshotRoute};
use asi_proto::{DeviceInfo, DeviceType, PortInfo, PortState, TurnPool};

/// First four bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ASIS";
/// Current format version. Version 2 widened the per-device turn-pool
/// record from four to [`asi_proto::POOL_WORDS`] 64-bit words when the
/// maximum pool grew to 512 bits for large-fabric routes.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Why a snapshot failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream ended before the record structure did.
    Truncated,
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's version is not [`SNAPSHOT_VERSION`].
    BadVersion(u16),
    /// The trailing checksum does not match the body.
    BadChecksum {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// A record decoded to an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::BadChecksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot record: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a, 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Checksum of a snapshot's canonical encoded body (what the trailing
/// checksum of [`Snapshot::to_bytes`] stores). The JSONL rendering in
/// `asi-harness` embeds the same value, so both formats cross-check.
pub fn checksum_of(snapshot: &Snapshot) -> u64 {
    let bytes = snapshot.to_bytes();
    fnv1a(&bytes[..bytes.len() - 8])
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn device_type_tag(t: DeviceType) -> u8 {
    match t {
        DeviceType::Switch => 1,
        DeviceType::Endpoint => 2,
    }
}

fn port_state_tag(s: PortState) -> u8 {
    match s {
        PortState::Down => 0,
        PortState::Training => 1,
        PortState::Active => 2,
    }
}

fn encode_device(out: &mut Vec<u8>, d: &SnapshotDevice) {
    put_u64(out, d.info.dsn);
    out.push(device_type_tag(d.info.device_type));
    put_u16(out, d.info.port_count);
    put_u16(out, d.info.max_packet_size);
    out.push(u8::from(d.info.fm_capable));
    out.push(d.info.fm_priority);
    out.push(d.route.egress);
    out.push(d.route.entry_port);
    put_u16(out, d.route.hops);
    put_u16(out, d.route.pool.len_bits());
    put_u16(out, d.route.pool.capacity());
    for w in d.route.pool.words() {
        put_u64(out, *w);
    }
    put_u16(out, d.ports.len() as u16);
    for p in &d.ports {
        match p {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.push(port_state_tag(p.state));
                out.push(p.link_width);
                out.push(p.link_speed);
                out.push(p.peer_port);
            }
        }
    }
}

/// Byte-stream reader with uniform truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
}

fn decode_device(r: &mut Reader<'_>) -> Result<SnapshotDevice, SnapshotError> {
    let dsn = r.u64()?;
    let device_type = match r.u8()? {
        1 => DeviceType::Switch,
        2 => DeviceType::Endpoint,
        _ => return Err(SnapshotError::Malformed("device type")),
    };
    let port_count = r.u16()?;
    let max_packet_size = r.u16()?;
    let fm_capable = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Malformed("fm-capable flag")),
    };
    let fm_priority = r.u8()?;
    let egress = r.u8()?;
    let entry_port = r.u8()?;
    let hops = r.u16()?;
    let pool_len = r.u16()?;
    let pool_capacity = r.u16()?;
    let mut words = [0u64; asi_proto::POOL_WORDS];
    for w in words.iter_mut() {
        *w = r.u64()?;
    }
    let pool = TurnPool::from_words(words, pool_len, pool_capacity)
        .map_err(|_| SnapshotError::Malformed("turn pool"))?;
    let nports = r.u16()?;
    let mut ports = Vec::with_capacity(usize::from(nports));
    for _ in 0..nports {
        match r.u8()? {
            0 => ports.push(None),
            1 => {
                let state = match r.u8()? {
                    0 => PortState::Down,
                    1 => PortState::Training,
                    2 => PortState::Active,
                    _ => return Err(SnapshotError::Malformed("port state")),
                };
                ports.push(Some(PortInfo {
                    state,
                    link_width: r.u8()?,
                    link_speed: r.u8()?,
                    peer_port: r.u8()?,
                }));
            }
            _ => return Err(SnapshotError::Malformed("port presence tag")),
        }
    }
    Ok(SnapshotDevice {
        info: DeviceInfo {
            device_type,
            dsn,
            port_count,
            max_packet_size,
            fm_capable,
            fm_priority,
        },
        route: SnapshotRoute {
            egress,
            entry_port,
            hops,
            pool,
        },
        ports,
    })
}

impl Snapshot {
    /// Encodes the snapshot canonically (devices sorted by DSN, links by
    /// canonical key) with a trailing FNV-1a checksum. `to_bytes` of a
    /// decoded snapshot reproduces the original bytes exactly.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut canon = self.clone();
        canon.canonicalize();
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u16(&mut out, SNAPSHOT_VERSION);
        put_u64(&mut out, canon.host_dsn);
        put_u32(&mut out, canon.devices.len() as u32);
        put_u32(&mut out, canon.links.len() as u32);
        for d in &canon.devices {
            encode_device(&mut out, d);
        }
        for &(a, ap, b, bp) in &canon.links {
            put_u64(&mut out, a);
            out.push(ap);
            put_u64(&mut out, b);
            out.push(bp);
        }
        let checksum = fnv1a(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a snapshot, verifying magic, version, structure and the
    /// trailing checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 2 {
            return Err(
                if bytes.starts_with(&SNAPSHOT_MAGIC) || SNAPSHOT_MAGIC.starts_with(bytes) {
                    SnapshotError::Truncated
                } else {
                    SnapshotError::BadMagic
                },
            );
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("len 8"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(SnapshotError::BadChecksum { stored, computed });
        }
        let mut r = Reader {
            bytes: body,
            pos: 4,
        };
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let host_dsn = r.u64()?;
        let ndev = r.u32()? as usize;
        let nlink = r.u32()? as usize;
        let mut snapshot = Snapshot::new(host_dsn);
        snapshot.devices.reserve(ndev.min(1 << 16));
        for _ in 0..ndev {
            snapshot.devices.push(decode_device(&mut r)?);
        }
        snapshot.links.reserve(nlink.min(1 << 16));
        for _ in 0..nlink {
            let a = r.u64()?;
            let ap = r.u8()?;
            let b = r.u64()?;
            let bp = r.u8()?;
            snapshot.links.push((a, ap, b, bp));
        }
        if r.pos != body.len() {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::link_key;

    fn device(dsn: u64, switch: bool, nports: u16) -> SnapshotDevice {
        let mut pool = TurnPool::with_capacity(64);
        if switch {
            pool.push_turn(3, 4).unwrap();
        }
        SnapshotDevice {
            info: DeviceInfo {
                device_type: if switch {
                    DeviceType::Switch
                } else {
                    DeviceType::Endpoint
                },
                dsn,
                port_count: nports,
                max_packet_size: 2048,
                fm_capable: !switch,
                fm_priority: 7,
            },
            route: SnapshotRoute {
                egress: 0,
                entry_port: (dsn % 4) as u8,
                hops: (dsn % 3) as u16,
                pool,
            },
            ports: (0..nports)
                .map(|p| {
                    if p % 3 == 2 {
                        None
                    } else {
                        Some(PortInfo {
                            state: if p % 2 == 0 {
                                PortState::Active
                            } else {
                                PortState::Down
                            },
                            link_width: 1,
                            link_speed: 10,
                            peer_port: (p % 5) as u8,
                        })
                    }
                })
                .collect(),
        }
    }

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(1);
        s.devices.push(device(2, true, 16));
        s.devices.push(device(1, false, 1));
        s.devices.push(device(3, false, 1));
        s.links.push((2, 5, 1, 0));
        s.links.push((2, 6, 3, 0));
        s
    }

    #[test]
    fn round_trip_preserves_canonical_form() {
        let s = sample();
        let bytes = s.to_bytes();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        let mut canon = s.clone();
        canon.canonicalize();
        assert_eq!(decoded, canon);
        // Canonical: devices sorted by DSN, links canonicalized.
        assert_eq!(
            decoded
                .devices
                .iter()
                .map(|d| d.info.dsn)
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(decoded.links[0], link_key((2, 5, 1, 0)));
    }

    #[test]
    fn resave_is_byte_identical() {
        let bytes = sample().to_bytes();
        let resaved = Snapshot::from_bytes(&bytes).unwrap().to_bytes();
        assert_eq!(bytes, resaved);
    }

    #[test]
    fn construction_order_does_not_change_encoding() {
        let a = sample();
        let mut b = Snapshot::new(1);
        let mut devs = a.devices.clone();
        devs.reverse();
        b.devices = devs;
        b.links = vec![(3, 0, 2, 6), (1, 0, 2, 5)]; // reversed + flipped
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic));
        assert_eq!(
            Snapshot::from_bytes(b"garbage!"),
            Err(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn corruption_caught_by_checksum() {
        let good = sample().to_bytes();
        for at in [7, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(
                    Snapshot::from_bytes(&bad),
                    Err(SnapshotError::BadChecksum { .. })
                ),
                "flip at {at} must fail the checksum"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        // Re-stamp the version and fix the checksum so only the version
        // check can object.
        let mut bytes = sample().to_bytes();
        bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadVersion(99))
        );
    }

    #[test]
    fn truncation_rejected_cleanly() {
        let bytes = sample().to_bytes();
        for end in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..end]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::BadChecksum { .. }
                ),
                "prefix of {end} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn checksum_of_matches_trailer() {
        let s = sample();
        let bytes = s.to_bytes();
        let trailer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(checksum_of(&s), trailer);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = Snapshot::new(42);
        let decoded = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.device_count(), 0);
        assert_eq!(decoded.link_count(), 0);
    }

    #[test]
    fn delta_between_snapshots() {
        let old = sample();
        let mut new = sample();
        // Remove endpoint 3 (and its link), add endpoint 4 on a new port.
        new.devices.retain(|d| d.info.dsn != 3);
        new.links.retain(|&l| link_key(l) != link_key((2, 6, 3, 0)));
        new.devices.push(device(4, false, 1));
        new.links.push((2, 7, 4, 0));
        let delta = old.diff(&new);
        assert_eq!(delta.added_devices, vec![4]);
        assert_eq!(delta.removed_devices, vec![3]);
        assert_eq!(
            delta.recabled_devices,
            vec![2],
            "switch 2 lost and gained a link"
        );
        assert_eq!(delta.added_links, vec![link_key((2, 7, 4, 0))]);
        assert_eq!(delta.removed_links, vec![link_key((2, 6, 3, 0))]);
        assert!(!delta.is_empty());
        assert_eq!(delta.change_count(), 4);
        assert_eq!(delta.to_string(), "+1 -1 devices, +1 -1 links, 1 re-cabled");
        assert!(old.diff(&old).is_empty());
    }

    #[test]
    fn error_messages_render() {
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::BadVersion(9).to_string().contains('9'));
        assert!(SnapshotError::BadChecksum {
            stored: 1,
            computed: 2
        }
        .to_string()
        .contains("mismatch"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use proptest::{Rejected, TestRng};

        /// Arbitrary snapshot: a host endpoint, up to 8 extra devices
        /// with random routes/ports, and random links among them.
        struct ArbSnapshot;

        fn arb_device(rng: &mut TestRng, dsn: u64) -> Result<SnapshotDevice, Rejected> {
            let switch = (0u8..2).generate(rng)? == 1;
            let nports: u16 = if switch { (2u16..17).generate(rng)? } else { 1 };
            let mut pool = TurnPool::with_capacity(64);
            for _ in 0..(0u8..4).generate(rng)? {
                let turn = (0u8..4).generate(rng)?;
                pool.push_turn(turn, 2).map_err(|_| Rejected)?;
            }
            let mut ports = Vec::new();
            for _ in 0..nports {
                ports.push(if (0u8..4).generate(rng)? == 0 {
                    None
                } else {
                    Some(PortInfo {
                        state: match (0u8..3).generate(rng)? {
                            0 => PortState::Down,
                            1 => PortState::Training,
                            _ => PortState::Active,
                        },
                        link_width: (1u8..5).generate(rng)?,
                        link_speed: (1u8..32).generate(rng)?,
                        peer_port: (0u8..16).generate(rng)?,
                    })
                });
            }
            Ok(SnapshotDevice {
                info: DeviceInfo {
                    device_type: if switch {
                        DeviceType::Switch
                    } else {
                        DeviceType::Endpoint
                    },
                    dsn,
                    port_count: nports,
                    max_packet_size: (64u16..4096).generate(rng)?,
                    fm_capable: (0u8..2).generate(rng)? == 1,
                    fm_priority: (0u8..=255u8).generate(rng).unwrap_or(0),
                },
                route: SnapshotRoute {
                    egress: (0u8..4).generate(rng)?,
                    entry_port: (0u8..16).generate(rng)?,
                    hops: (0u16..12).generate(rng)?,
                    pool,
                },
                ports,
            })
        }

        impl Strategy for ArbSnapshot {
            type Value = Snapshot;

            fn generate(&self, rng: &mut TestRng) -> Result<Snapshot, Rejected> {
                let base: u64 = (1u64..1 << 40).generate(rng)?;
                let extra = (0usize..8).generate(rng)?;
                let mut s = Snapshot::new(base);
                s.devices.push(arb_device(rng, base)?);
                for i in 0..extra {
                    s.devices.push(arb_device(rng, base + 1 + i as u64)?);
                }
                let nlinks = (0usize..12).generate(rng)?;
                for _ in 0..nlinks {
                    let a = (0usize..s.devices.len()).generate(rng)?;
                    let b = (0usize..s.devices.len()).generate(rng)?;
                    s.links.push((
                        s.devices[a].info.dsn,
                        (0u8..16).generate(rng)?,
                        s.devices[b].info.dsn,
                        (0u8..16).generate(rng)?,
                    ));
                }
                Ok(s)
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(192))]

            /// Encode → decode is the canonical identity, and a second
            /// save of the decoded snapshot is byte-identical.
            #[test]
            fn arbitrary_snapshots_round_trip(s in ArbSnapshot) {
                let bytes = s.to_bytes();
                let decoded = Snapshot::from_bytes(&bytes).unwrap();
                let mut canon = s.clone();
                canon.canonicalize();
                prop_assert_eq!(&decoded, &canon);
                prop_assert_eq!(decoded.to_bytes(), bytes);
            }

            /// Any strict prefix errors cleanly (never panics, never
            /// yields a snapshot).
            #[test]
            fn truncated_snapshots_error(
                s in ArbSnapshot,
                cut in any::<prop::sample::Index>(),
            ) {
                let bytes = s.to_bytes();
                let end = cut.index(bytes.len());
                prop_assert!(Snapshot::from_bytes(&bytes[..end]).is_err());
            }

            /// diff(x, x) is empty; diff is antisymmetric in its
            /// added/removed lists.
            #[test]
            fn diff_properties(a in ArbSnapshot, b in ArbSnapshot) {
                prop_assert!(a.diff(&a).is_empty());
                let fwd = a.diff(&b);
                let rev = b.diff(&a);
                prop_assert_eq!(&fwd.added_devices, &rev.removed_devices);
                prop_assert_eq!(&fwd.removed_devices, &rev.added_devices);
                prop_assert_eq!(&fwd.added_links, &rev.removed_links);
                prop_assert_eq!(&fwd.removed_links, &rev.added_links);
                prop_assert_eq!(&fwd.recabled_devices, &rev.recabled_devices);
            }
        }
    }
}
