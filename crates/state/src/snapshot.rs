//! Snapshot types: the serializable form of a discovered topology.

use crate::delta::TopologyDelta;
use asi_proto::{DeviceInfo, PortInfo, TurnPool};

/// How the fabric manager reaches a snapshotted device: inject on
/// `egress` (the FM endpoint's port), follow `pool`, arrive at the
/// device's `entry_port`. Mirrors `asi-core`'s `DeviceRoute` without
/// depending on it, so the dependency arrow stays `state → proto`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotRoute {
    /// Egress port at the FM's endpoint.
    pub egress: u8,
    /// Port at which packets enter the target device.
    pub entry_port: u8,
    /// Switch hops from the FM.
    pub hops: u16,
    /// Turns for the switches along the path.
    pub pool: TurnPool,
}

/// One device record: general information, route, per-port attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotDevice {
    /// The six general-information words, decoded.
    pub info: DeviceInfo,
    /// Route the FM used to reach it.
    pub route: SnapshotRoute,
    /// Per-port attributes; `None` where the port block was never read.
    pub ports: Vec<Option<PortInfo>>,
}

/// A versioned snapshot of one discovered topology.
///
/// Build with [`Snapshot::new`] plus pushes into the public fields, or
/// decode with [`Snapshot::from_bytes`]. Encoding via
/// [`Snapshot::to_bytes`] always canonicalizes first (devices sorted by
/// DSN, links by canonical key), so equality of encodings is equality of
/// topologies regardless of construction order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// DSN of the FM endpoint the snapshot is rooted at.
    pub host_dsn: u64,
    /// Every device the discovery recorded (including the host).
    pub devices: Vec<SnapshotDevice>,
    /// Every link, as `(dsn_a, port_a, dsn_b, port_b)`.
    pub links: Vec<(u64, u8, u64, u8)>,
}

/// Canonicalized link key (lower endpoint first).
pub(crate) fn link_key(l: (u64, u8, u64, u8)) -> (u64, u8, u64, u8) {
    if (l.0, l.1) <= (l.2, l.3) {
        l
    } else {
        (l.2, l.3, l.0, l.1)
    }
}

impl Snapshot {
    /// Empty snapshot rooted at `host_dsn`.
    pub fn new(host_dsn: u64) -> Snapshot {
        Snapshot {
            host_dsn,
            devices: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Number of devices recorded.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of links recorded.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Looks up a device by DSN.
    pub fn device(&self, dsn: u64) -> Option<&SnapshotDevice> {
        self.devices.iter().find(|d| d.info.dsn == dsn)
    }

    /// Sorts devices by DSN and links by canonical key, deduplicating
    /// both. [`Snapshot::to_bytes`] calls this on a copy, so callers only
    /// need it when comparing in-memory snapshots structurally.
    pub fn canonicalize(&mut self) {
        self.devices.sort_by_key(|d| d.info.dsn);
        self.devices.dedup_by_key(|d| d.info.dsn);
        for l in self.links.iter_mut() {
            *l = link_key(*l);
        }
        self.links.sort_unstable();
        self.links.dedup();
    }

    /// Structural differences from `self` (the older state) to `newer`:
    /// devices/links added and removed, plus devices present in both
    /// whose incident cabling changed.
    pub fn diff(&self, newer: &Snapshot) -> TopologyDelta {
        TopologyDelta::between(self, newer)
    }
}
