//! End-to-end guarantees of the election-based sharded discovery
//! (`docs/DISTRIBUTED.md`): the certified merge canonicalizes to the
//! exact same bytes as a classic single-manager discovery, and a
//! primary that dies mid-run fails over to the watching secondary
//! without losing any of the fabric view.

use asi_core::snapshot_db;
use asi_harness::prelude::*;
use asi_sim::SimDuration;
use asi_state::checksum_of;
use asi_topo::{mesh, Topology};

/// Canonical checksum of a classic single-manager discovery, with the
/// routes normalized the same way the distributed merge normalizes
/// them: cold runs keep their exploration routes, while the merge
/// re-derives shortest routes before certifying, so both sides must be
/// refreshed for a byte-level comparison.
fn classic_checksum(topo: &Topology, scenario: &Scenario) -> u64 {
    let bench = Bench::start(topo, scenario, &[]);
    let mut db = bench.db().clone();
    db.refresh_routes(asi_proto::MAX_POOL_BITS);
    checksum_of(&snapshot_db(&db))
}

/// The tentpole equivalence guarantee: sharding the discovery over 2
/// or 4 elected managers produces a merged database whose canonical
/// snapshot is byte-identical (same checksum) to the single-manager
/// view of the same fabric — partitioning changes who walks each
/// region, never what the fabric looks like.
#[test]
fn sharded_merge_is_byte_identical_to_a_single_manager_discovery() {
    let topo = mesh(4, 4).topology;
    let scenario = Scenario::new(Algorithm::Parallel);
    let classic = classic_checksum(&topo, &scenario);
    for fms in [1usize, 2, 4] {
        let (_fabric, _holder, out) = sharded_discovery(&topo, fms, &scenario);
        assert_eq!(
            out.devices,
            topo.node_count(),
            "{fms} manager(s) must find the whole fabric"
        );
        assert_eq!(
            out.checksum, classic,
            "{fms}-manager merge must canonicalize to the classic view"
        );
        assert_eq!(out.failovers, 0, "healthy run must not fail over");
    }
}

/// The serial algorithms go through the same partition/merge path.
#[test]
fn sharded_merge_equivalence_holds_for_serial_device_too() {
    let topo = mesh(3, 3).topology;
    let scenario = Scenario::new(Algorithm::SerialDevice);
    let classic = classic_checksum(&topo, &scenario);
    let (_fabric, _holder, out) = sharded_discovery(&topo, 2, &scenario);
    assert_eq!(out.devices, topo.node_count());
    assert_eq!(out.checksum, classic);
}

/// Guards the O(K²) transmit-wakeup blowup: while collaborators stream
/// their report backlogs into the primary's ingress port, every packet
/// parked behind the busy serializer used to schedule its own `TryTx`
/// retry, and each transmission made all K pending retries re-fire and
/// re-arm. On a 16×16 mesh with 4 managers that cost ~1.8M events
/// (and effectively froze 64×64 runs); with wakeups coalesced to one
/// per port it costs ~315k. The bound sits between the two regimes.
#[test]
fn report_streaming_does_not_blow_up_the_event_count() {
    let topo = mesh(16, 16).topology;
    let scenario = Scenario::new(Algorithm::Parallel);
    let (fabric, _holder, out) = sharded_discovery(&topo, 4, &scenario);
    assert_eq!(out.devices, topo.node_count());
    assert!(
        fabric.events_processed() < 900_000,
        "sharded run burned {} events — transmit wakeups are storming again",
        fabric.events_processed()
    );
}

/// Kill the elected primary mid-discovery (a device-hang freezes its
/// PI-4 responder, so keepalive reads stop completing while its own
/// agent keeps exploring): the watching secondary misses three probes,
/// promotes itself, re-explores the whole fabric solo, and reaches the
/// ex-primary once the hang expires via retries. The run must still
/// end with the full topology — held by the secondary, with exactly
/// one failover on record.
#[test]
fn a_primary_killed_mid_discovery_fails_over_to_the_secondary() {
    let topo = mesh(8, 8).topology;
    let primary = topo.endpoints()[0];
    // A small request timeout tightens the scaled keepalive cadence
    // (timeout = 2x request, interval = 2x that), so the secondary's
    // three misses land while the managers are still exploring their
    // regions rather than after the merge already completed.
    let scenario = Scenario::new(Algorithm::Parallel)
        .with_request_timeout(SimDuration::from_us(50))
        .with_retry(RetryPolicy::exponential(10))
        .with_faults(FaultPlan::none().with_device_hang(
            SimDuration::from_us(500),
            primary.0,
            SimDuration::from_ms(5),
        ));
    let (fabric, holder, out) = sharded_discovery(&topo, 2, &scenario);
    assert_ne!(
        holder.0, primary.0,
        "the merged view must live on the promoted secondary"
    );
    assert_eq!(out.failovers, 1, "exactly one takeover on record");
    assert_eq!(
        out.devices,
        topo.node_count(),
        "the takeover run must still find the whole fabric"
    );
    let agent = fabric
        .agent_as::<asi_core::FmAgent>(holder)
        .expect("promoted manager still installed");
    assert!(agent.promoted, "holder must be the promoted secondary");
}
