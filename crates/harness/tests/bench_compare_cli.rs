//! Integration tests for the `bench-compare` CI gate binary: the exit
//! codes are the contract CI scripts rely on (0 pass, 1 regression,
//! 2 bad invocation), so every path gets pinned here.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench-compare"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// Writes `text` to a fresh temp file and returns its path.
fn report_file(dir: &std::path::Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path.to_str().unwrap().to_owned()
}

fn report(benches: &[(&str, f64)]) -> String {
    let results: Vec<String> = benches
        .iter()
        .map(|(n, ns)| format!(r#"{{"name":"{n}","ns_per_iter":{ns},"iters":10}}"#))
        .collect();
    format!(
        r#"{{"schema":"asi-bench/v1","mode":"stable","results":[{}]}}"#,
        results.join(",")
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("asi-bench-compare-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn identical_reports_exit_zero() {
    let dir = temp_dir("pass");
    let text = report(&[("micro/a", 100.0), ("discovery/b", 5000.0)]);
    let base = report_file(&dir, "base.json", &text);
    let cand = report_file(&dir, "cand.json", &text);
    let (stdout, _, code) = run(&[&base, &cand]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("ok"), "{stdout}");
    assert!(!stdout.contains("REGRESSED"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_slowdown_exits_one() {
    // The CI negative test in miniature: a synthetic 2.5x slowdown on a
    // stable bench must trip the gate.
    let dir = temp_dir("regress");
    let base = report_file(&dir, "base.json", &report(&[("micro/a", 100.0)]));
    let cand = report_file(&dir, "cand.json", &report(&[("micro/a", 250.0)]));
    let (stdout, stderr, code) = run(&[&base, &cand]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stderr.contains("regressed beyond threshold"), "{stderr}");
    // The same delta passes when the caller widens the threshold.
    let (_, _, relaxed) = run(&[&base, &cand, "--stable-pct", "200"]);
    assert_eq!(relaxed, Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn benchmark_missing_from_candidate_exits_one() {
    let dir = temp_dir("missing");
    let base = report_file(
        &dir,
        "base.json",
        &report(&[("micro/a", 100.0), ("micro/b", 9.0)]),
    );
    let cand = report_file(&dir, "cand.json", &report(&[("micro/a", 100.0)]));
    let (stdout, _, code) = run(&[&base, &cand]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("micro/b"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_invocations_exit_two() {
    let dir = temp_dir("usage");
    let good = report_file(&dir, "good.json", &report(&[("micro/a", 1.0)]));
    let bad_json = report_file(&dir, "bad.json", "{not json");
    let wrong_schema = report_file(
        &dir,
        "schema.json",
        r#"{"schema":"other/v9","results":[{"name":"a","ns_per_iter":1}]}"#,
    );
    let cases: &[&[&str]] = &[
        &[],                                   // no paths at all
        &[&good],                              // only one path
        &[&good, &good, "extra.json"],         // three paths
        &[&good, &bad_json],                   // unparseable candidate
        &[&wrong_schema, &good],               // wrong schema version
        &[&good, "/no/such/file.json"],        // unreadable path
        &[&good, &good, "--stable-pct"],       // flag missing its value
        &[&good, &good, "--stable-pct", "-5"], // negative threshold
        &[&good, &good, "--frobnicate"],       // unknown flag
    ];
    for args in cases {
        let (stdout, stderr, code) = run(args);
        assert_eq!(code, Some(2), "args {args:?}: stderr = {stderr}");
        assert!(stdout.is_empty(), "args {args:?} wrote stdout: {stdout}");
        assert!(stderr.contains("error:"), "args {args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "args {args:?}: {stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_baseline_parses_and_passes_against_itself() {
    // The repo's own committed baseline must stay loadable: if this
    // fails, the CI gate is broken at the source.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro_stable.json");
    let text = std::fs::read_to_string(path).expect("committed baseline exists");
    let parsed = asi_harness::parse_report(&text).expect("baseline parses");
    assert!(parsed.results.iter().all(|m| m.name.starts_with("micro/")));
    let (_, _, code) = run(&[path, path]);
    assert_eq!(code, Some(0));
}
