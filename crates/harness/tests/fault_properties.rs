//! Property tests for the fault-injection determinism guarantees
//! (`docs/FAULTS.md`): an armed fault plan whose every probability is
//! zero must be indistinguishable — byte for byte — from no plan at
//! all, for any seed and any algorithm.

use asi_harness::prelude::*;
use asi_harness::{trace_to_jsonl, RingCollector};
use asi_sim::TraceHandle;
use asi_topo::mesh;
use proptest::prelude::*;

/// Runs initial discovery on the 3x3 mesh under `faults` and returns
/// everything observable: the full event trace plus the run's
/// aggregate metrics.
fn traced_run(seed: u64, algorithm: Algorithm, faults: FaultPlan) -> (String, String) {
    let sink = RingCollector::shared(1 << 20);
    let scenario = Scenario::new(algorithm)
        .with_seed(seed)
        .with_faults(faults)
        .with_trace(TraceHandle::to(sink.clone()));
    let (run, active) = scenario
        .initial_discovery(&mesh(3, 3).topology)
        .expect("lossless discovery completes");
    let jsonl = trace_to_jsonl(sink.borrow().records());
    let summary = format!(
        "{} devices={} links={} requests={} responses={} timeouts={} \
         retries={} abandoned={} time={} active={}",
        algorithm.name(),
        run.devices_found,
        run.links_found,
        run.requests_sent,
        run.responses_received,
        run.timeouts,
        run.retries,
        run.abandoned,
        run.discovery_time(),
        active,
    );
    (jsonl, summary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A Gilbert–Elliott model with mean loss 0 keeps advancing its
    /// burst state (consuming fault-RNG draws), yet must replay the
    /// fault-free run exactly: the fault RNG feeds nothing else and a
    /// lossless draw never alters scheduling.
    #[test]
    fn zero_loss_gilbert_elliott_replays_the_fault_free_run(
        seed in 0u64..1_000_000,
        alg_idx in 0usize..3,
    ) {
        let algorithm = Algorithm::all()[alg_idx];
        let clean = traced_run(seed, algorithm, FaultPlan::none());
        let armed = traced_run(
            seed,
            algorithm,
            FaultPlan::none()
                .with_loss(LossModel::bursty(0.0))
                .with_corruption(0.0)
                .with_duplication(0.0),
        );
        prop_assert_eq!(clean, armed);
    }
}
