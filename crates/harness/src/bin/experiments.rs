//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [all|table1|fig4|fig5|fig6|fig7|fig8|fig9|ablations|extensions] [--quick] [--ascii] [--out DIR]
//! ```
//!
//! Each experiment prints its markdown rendering to stdout and writes
//! `<id>.md` + `<id>.csv` under the output directory (default
//! `results/`).

use asi_harness::experiments::{
    ablations, distributed, fig4, fig5, fig6, fig7, fig8, fig9, pathdist, table1,
};
use asi_harness::{Chart, TableOut};
use std::path::PathBuf;
use std::time::Instant;

struct Sink {
    dir: PathBuf,
    ascii: bool,
}

impl Sink {
    fn chart(&self, c: &Chart) {
        println!("{}", c.to_markdown());
        if self.ascii {
            println!("{}", c.to_ascii(72, 18));
        }
        c.save(&self.dir).expect("write results");
    }
    fn table(&self, t: &TableOut) {
        println!("{}", t.to_markdown());
        t.save(&self.dir).expect("write results");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let all = which.contains(&"all");
    let ascii = args.iter().any(|a| a == "--ascii");
    let sink = Sink {
        dir: out_dir,
        ascii,
    };
    let sel = |name: &str| all || which.contains(&name);

    let started = Instant::now();
    if sel("table1") {
        run_timed("table1", || sink.table(&table1::run()));
    }
    if sel("fig4") {
        run_timed("fig4", || sink.chart(&fig4::run(quick)));
    }
    if sel("fig5") {
        run_timed("fig5", || {
            let written = fig5::run(&sink.dir).expect("write DOT files");
            for (file, nodes) in written {
                println!("fig5: wrote {file} ({nodes} devices); render with `neato -Tpng`");
            }
            println!();
        });
    }
    if sel("fig6") {
        run_timed("fig6", || {
            let out = fig6::run(quick);
            sink.chart(&out.scatter);
            sink.chart(&out.averages);
        });
    }
    if sel("fig7") {
        run_timed("fig7", || {
            sink.chart(&fig7::run_timeline());
            sink.chart(&fig7::run_ideal());
        });
    }
    if sel("fig8") {
        run_timed("fig8", || {
            sink.chart(&fig8::run_fm_sweep(quick));
            sink.chart(&fig8::run_device_sweep(quick));
        });
    }
    if sel("fig9") {
        run_timed("fig9", || {
            let out = fig9::run(quick);
            sink.chart(&out.a);
            sink.chart(&out.b);
            sink.chart(&out.c);
        });
    }
    if sel("ablations") {
        run_timed("ablations", || {
            sink.table(&ablations::traffic(quick));
            sink.table(&ablations::partial_assimilation(quick));
            sink.table(&ablations::flow_control(quick));
            sink.table(&ablations::spec_pool(quick));
        });
    }
    if sel("extensions") {
        run_timed("extensions", || {
            sink.table(&distributed::run(quick));
            sink.table(&pathdist::run(quick));
        });
    }
    eprintln!(
        "all selected experiments finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}

fn run_timed(name: &str, f: impl FnOnce()) {
    let t = Instant::now();
    eprintln!("==> running {name}…");
    f();
    eprintln!("<== {name} done in {:.1}s", t.elapsed().as_secs_f64());
}
