//! `bench-compare` — the CI perf-regression gate.
//!
//! Diffs two `asi-bench/v1` JSON reports (a committed baseline and a
//! freshly measured candidate) with per-benchmark noise thresholds and
//! exits non-zero when any baseline benchmark regresses beyond its
//! threshold or is missing from the candidate:
//!
//! ```text
//! ASI_BENCH_STABLE=1 ASI_BENCH_JSON=fresh.json cargo bench -p asi-bench --bench micro
//! bench-compare BENCH_micro_stable.json fresh.json
//! ```
//!
//! Exit codes: 0 = pass, 1 = regression, 2 = usage or malformed input.

use asi_harness::compare::{compare, parse_report, Thresholds};

const USAGE: &str = "usage: bench-compare <baseline.json> <candidate.json> [options]

Diffs two asi-bench/v1 reports and fails on regression. Benchmarks
named micro/* are the stable tier; everything else (end-to-end
discovery) varies up to +/-40% between runs and gets the loose
threshold.

options:
  --stable-pct <p>   regression threshold %% for micro/* benches (default 50)
  --loose-pct <p>    regression threshold %% for the rest (default 100)
  --stable-only      gate only the micro/* benches
  --json             machine-readable report on stdout

exit codes: 0 pass, 1 regression or missing benchmark, 2 bad invocation";

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn parse_pct(args: &[String], name: &str, default: f64) -> f64 {
    let Some(i) = args.iter().position(|a| a == name) else {
        return default;
    };
    let Some(v) = args.get(i + 1) else {
        fail(format!("{name} is missing its value"));
    };
    match v.parse::<f64>() {
        Ok(p) if p.is_finite() && p >= 0.0 => p,
        _ => fail(format!(
            "{name} must be a non-negative percentage, got {v:?}"
        )),
    }
}

fn read_report(path: &str) -> asi_harness::compare::BenchReport {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    parse_report(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let positional: Vec<&String> = {
        // Everything not a flag and not a flag's value.
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in args.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            match a.as_str() {
                "--stable-pct" | "--loose-pct" => skip = true,
                "--stable-only" | "--json" => {}
                _ if a.starts_with("--") => {
                    fail(format!("unknown flag {a:?}"));
                }
                _ => out.push(a),
            }
            let _ = i;
        }
        out
    };
    let [baseline_path, candidate_path] = positional.as_slice() else {
        fail(format!(
            "want exactly two report paths (baseline, candidate), got {}",
            positional.len()
        ));
    };
    let thresholds = Thresholds {
        stable_pct: parse_pct(&args, "--stable-pct", Thresholds::default().stable_pct),
        loose_pct: parse_pct(&args, "--loose-pct", Thresholds::default().loose_pct),
    };
    let mut baseline = read_report(baseline_path);
    let mut candidate = read_report(candidate_path);
    if baseline.mode != candidate.mode {
        eprintln!(
            "warning: comparing a {:?} baseline against a {:?} candidate — \
             numbers from different modes are not directly comparable",
            baseline.mode, candidate.mode
        );
    }
    if args.iter().any(|a| a == "--stable-only") {
        baseline.results.retain(|m| Thresholds::is_stable(&m.name));
        candidate.results.retain(|m| Thresholds::is_stable(&m.name));
        if baseline.results.is_empty() {
            fail(format!(
                "{baseline_path}: no micro/* benches to gate with --stable-only"
            ));
        }
    }
    let result = compare(&baseline, &candidate, &thresholds);
    if args.iter().any(|a| a == "--json") {
        println!("{}", result.to_json().to_string_pretty());
    } else {
        print!("{}", result.to_text());
    }
    if !result.is_pass() {
        eprintln!(
            "bench-compare: {} of {} benchmarks regressed beyond threshold",
            result.regressions().len(),
            result.rows.len()
        );
        std::process::exit(1);
    }
}
