//! `asi-harness` — the experiment harness that regenerates every table
//! and figure of the paper's evaluation (§4).
//!
//! - [`scenario`] — fabric bring-up, FM installation, PI-5 route
//!   configuration, and random switch addition/removal injection (the
//!   paper's §4.1 methodology);
//! - [`sweep`] — the deterministic multi-threaded sweep runner: a
//!   [`SweepSpec`] grid (topology × algorithm × seed) executed across a
//!   scoped worker pool with per-cell seeding, so results are
//!   byte-identical for any `--jobs` count;
//! - [`experiments`] — one module per table/figure plus ablations;
//! - [`compare`](mod@compare) — the `asi-bench/v1` regression
//!   comparator behind the
//!   `bench-compare` binary (the CI perf gate);
//! - [`report`] — markdown/CSV renderers for the reproduced outputs,
//!   plus the discovery-trace collector and JSONL exporters for the
//!   `asi_sim::trace` observability layer.
//!
//! The `experiments` binary drives everything:
//!
//! ```text
//! cargo run --release -p asi-harness --bin experiments -- all
//! cargo run --release -p asi-harness --bin experiments -- fig6 --quick
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod experiments;
pub mod json;
pub mod report;
pub mod scenario;
pub mod snapshot;
pub mod sweep;

pub use compare::{compare, parse_report, BenchReport, Comparison, Thresholds};
pub use json::Json;
pub use report::{
    pending_occupancy, save_trace_jsonl, trace_from_jsonl, trace_to_jsonl, Chart, RingCollector,
    Series, TableOut, TraceSummary,
};
pub use scenario::{
    change_experiment, dev_of_dsn, distributed_discovery, dsn_of_dev, sharded_discovery, Bench,
    DistributedOutcome, Scenario, ShardedOutcome, TrafficSpec,
};
pub use snapshot::{
    load_snapshot, save_snapshot, snapshot_from_jsonl, snapshot_to_jsonl, SnapshotFormat,
};
pub use sweep::{ChangeMode, SweepResult, SweepSpec};

/// One-stop imports for writing experiments: the scenario builder with
/// its fault/retry vocabulary, the sweep grid types, and the algorithm
/// enum.
///
/// ```
/// use asi_harness::prelude::*;
///
/// let scenario = Scenario::new(Algorithm::Parallel)
///     .with_faults(FaultPlan::none().with_loss(LossModel::uniform(0.02)))
///     .with_retry(RetryPolicy::fixed(4));
/// assert_eq!(scenario.faults.loss.mean_loss(), 0.02);
/// ```
pub mod prelude {
    pub use crate::scenario::{
        change_experiment, sharded_discovery, Bench, Scenario, ShardedOutcome, TrafficSpec,
    };
    pub use crate::snapshot::{load_snapshot, save_snapshot, SnapshotFormat};
    pub use crate::sweep::{ChangeMode, SweepResult, SweepSpec};
    pub use asi_core::{Algorithm, RetryPolicy};
    pub use asi_fabric::{FaultPlan, LossModel};
    pub use asi_state::Snapshot;
}
