//! A small, dependency-free JSON value type with a parser and writers.
//!
//! The build environment is offline, so `serde_json` is not available;
//! this module covers what the workspace needs: building values
//! programmatically (trace export, the CLI's `--json` mode), writing
//! them compactly or pretty-printed, and parsing them back for
//! round-trip tests and CLI output assertions.
//!
//! Numbers are kept as `f64` (integers up to 2^53 round-trip exactly,
//! ample for every counter this repository emits). Object key order is
//! preserved as inserted, so output is deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Object field lookup; `Json::Null` when absent or not an object.
    pub fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&Json::Null),
            _ => &Json::Null,
        }
    }

    /// Array element lookup; `Json::Null` when out of range.
    pub fn idx(&self, i: usize) -> &Json {
        match self {
            Json::Arr(items) => items.get(i).unwrap_or(&Json::Null),
            _ => &Json::Null,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; degrade explicitly.
    } else if n.trunc() == n && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

macro_rules! from_ints {
    ($($t:ty),* $(,)?) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                Json::Num(v as f64)
            }
        }
    )*};
}

from_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (surrounding whitespace allowed).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            msg: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            at: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError {
            at: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        at: *pos,
                        msg: "expected ':'",
                    });
                }
                *pos += 1;
                skip_ws(bytes, pos);
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            at: *pos,
            msg: "expected string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(JsonError {
                    at: *pos,
                    msg: "unterminated escape",
                })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            msg: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs are not needed by this repo's
                        // writers; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            msg: "unknown escape",
                        })
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    msg: "invalid UTF-8",
                })?;
                let c = rest.chars().next().ok_or(JsonError {
                    at: *pos,
                    msg: "unterminated string",
                })?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(JsonError {
            at: start,
            msg: "invalid number",
        })
}

impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i32> for Json {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<u64> for Json {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_objects() {
        let v = Json::object()
            .with("name", "mesh 3x3")
            .with("devices", 18u32)
            .with("time_s", 0.5)
            .with("ok", true)
            .with("tags", vec![Json::from("a"), Json::from("b")]);
        assert_eq!(
            v.to_string_compact(),
            r#"{"name":"mesh 3x3","devices":18,"time_s":0.5,"ok":true,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::object()
            .with("a", 1u32)
            .with("b", vec![Json::Null, Json::from(false)])
            .with("c", Json::object().with("nested", "yes\n\"quoted\""));
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(parse(&pretty).unwrap(), v);
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn parses_numbers_strings_nesting() {
        let v = parse(r#" {"x": [1, -2.5, 1e3], "y": {"z": null}} "#).unwrap();
        assert_eq!(v.get("x").idx(0), &Json::Num(1.0));
        assert_eq!(v.get("x").idx(1), &Json::Num(-2.5));
        assert_eq!(v.get("x").idx(2), &Json::Num(1000.0));
        assert_eq!(v.get("y").get("z"), &Json::Null);
        assert_eq!(v.get("missing"), &Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{} {}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("tab\t nl\n quote\" back\\ ctrl\u{1}".into());
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(
            Json::from(1_000_000_000u64).to_string_compact(),
            "1000000000"
        );
        assert_eq!(Json::from(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn comparisons_used_by_cli_tests() {
        let v = parse(r#"{"devices_found": 18, "scenario": "remove"}"#).unwrap();
        assert_eq!(*v.get("devices_found"), 18);
        assert_eq!(*v.get("devices_found"), 18u64);
        assert_eq!(*v.get("scenario"), "remove");
    }

    #[test]
    fn malformed_escapes_report_errors_instead_of_panicking() {
        // Every one of these once reached an `unwrap()` path.
        assert!(parse(r#""\x""#).is_err()); // unknown escape
        assert!(parse(r#""\"#).is_err()); // escape at end of input
        assert!(parse(r#""\u12"#).is_err()); // truncated \u escape
        assert!(parse(r#""\uZZZZ""#).is_err()); // non-hex \u escape
        assert!(parse("\"abc").is_err()); // unterminated string
                                          // Lone surrogate: documented to decode as U+FFFD, not panic.
        assert_eq!(
            parse(r#""\ud800""#).unwrap(),
            Json::Str("\u{FFFD}".to_string())
        );
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;
        use proptest::{Rejected, TestRng};

        /// Characters biased toward JSON syntax and escape machinery, so
        /// random strings actually exercise the parser's edge paths.
        const SPICE: &[char] = &[
            '"',
            '\\',
            'u',
            'n',
            '{',
            '}',
            '[',
            ']',
            ':',
            ',',
            '0',
            '9',
            '-',
            '.',
            'e',
            ' ',
            '\t',
            '\n',
            'a',
            '\u{1}',
            '\u{FFFD}',
            '\u{10348}',
        ];

        fn arb_string(rng: &mut TestRng) -> Result<String, Rejected> {
            let picks = vec((0usize..SPICE.len(), any::<u32>()), 0..12usize).generate(rng)?;
            Ok(picks
                .into_iter()
                .map(|(i, raw)| {
                    if raw & 1 == 0 {
                        SPICE[i]
                    } else {
                        char::from_u32(raw % 0x11_0000).unwrap_or('\u{FFFD}')
                    }
                })
                .collect())
        }

        /// Arbitrary [`Json`] value of bounded depth. Numbers are dyadic
        /// rationals so text round-trips are exact.
        struct ArbJson(u8);

        impl Strategy for ArbJson {
            type Value = Json;

            fn generate(&self, rng: &mut TestRng) -> Result<Json, Rejected> {
                let variants = if self.0 == 0 { 4u8 } else { 6 };
                Ok(match (0..variants).generate(rng)? {
                    0 => Json::Null,
                    1 => Json::Bool((0u8..2).generate(rng)? == 1),
                    2 => {
                        let n = (-1_000_000_000i64..1_000_000_000).generate(rng)?;
                        let denom = 1u64 << (0u32..8).generate(rng)?;
                        Json::Num(n as f64 / denom as f64)
                    }
                    3 => Json::Str(arb_string(rng)?),
                    4 => Json::Arr(vec(ArbJson(self.0 - 1), 0..4usize).generate(rng)?),
                    _ => {
                        let len = (0usize..4).generate(rng)?;
                        let mut entries = Vec::with_capacity(len);
                        for i in 0..len {
                            // Prefix keeps keys distinct whatever the
                            // random tail contains.
                            let key = format!("k{i}{}", arb_string(rng)?);
                            entries.push((key, ArbJson(self.0 - 1).generate(rng)?));
                        }
                        Json::Obj(entries)
                    }
                })
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn arbitrary_values_round_trip_both_renderings(v in ArbJson(3)) {
                prop_assert_eq!(&parse(&v.to_string_compact()).unwrap(), &v);
                prop_assert_eq!(&parse(&v.to_string_pretty()).unwrap(), &v);
            }

            /// Any prefix of a serialized document must parse or error —
            /// never panic — and a strict prefix of a container document
            /// is always an error (its bracket is unbalanced).
            #[test]
            fn truncated_documents_error_cleanly(
                v in ArbJson(3),
                cut in any::<prop::sample::Index>(),
            ) {
                let text = v.to_string_compact();
                let mut end = cut.index(text.len().max(1)).min(text.len());
                while !text.is_char_boundary(end) {
                    end -= 1;
                }
                let result = parse(&text[..end]);
                if end < text.len() && matches!(v, Json::Arr(_) | Json::Obj(_)) {
                    prop_assert!(result.is_err(), "prefix {:?} parsed", &text[..end]);
                }
            }

            /// Syntax-biased garbage never panics the parser.
            #[test]
            fn garbage_input_never_panics(
                picks in vec((0usize..SPICE.len(), any::<u32>()), 0..24usize),
            ) {
                let text: String = picks
                    .into_iter()
                    .map(|(i, raw)| {
                        if raw & 1 == 0 {
                            SPICE[i]
                        } else {
                            char::from_u32(raw % 0x11_0000).unwrap_or('\u{FFFD}')
                        }
                    })
                    .collect();
                let _ = parse(&text);
            }
        }
    }
}
