//! Regression comparison of two `asi-bench/v1` reports.
//!
//! The vendored criterion shim writes one JSON report per `cargo bench`
//! invocation (`ASI_BENCH_JSON=<path>`). This module diffs a committed
//! baseline report against a freshly measured candidate with
//! per-benchmark noise thresholds: the `micro/*` benches are stable
//! across runs and get a tight threshold, while end-to-end discovery
//! benches swing up to ±40% between runs on a containerized runner and
//! get a loose one. The `bench-compare` binary wraps [`compare`] for
//! CI, exiting non-zero when any benchmark regresses beyond its
//! threshold — the regression gate wired into the workflow.

use crate::json::{self, Json};

/// One measurement from an `asi-bench/v1` report.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Benchmark name (`group/bench`).
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// A parsed `asi-bench/v1` report.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Measurement mode (`full`, `stable`, or `smoke`).
    pub mode: String,
    /// Every measurement, in report order.
    pub results: Vec<Measurement>,
}

/// Parses an `asi-bench/v1` JSON report, rejecting other schemas and
/// malformed measurements with a one-line explanation.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    match doc.get("schema").as_str() {
        Some("asi-bench/v1") => {}
        Some(other) => return Err(format!("unsupported schema {other:?} (want asi-bench/v1)")),
        None => return Err("missing \"schema\" field".into()),
    }
    let mode = doc.get("mode").as_str().unwrap_or("full").to_string();
    let raw = doc
        .get("results")
        .as_array()
        .ok_or("missing \"results\" array")?;
    let mut results = Vec::with_capacity(raw.len());
    for r in raw {
        let name = r
            .get("name")
            .as_str()
            .ok_or("a result is missing its \"name\"")?
            .to_string();
        let ns_per_iter = r
            .get("ns_per_iter")
            .as_f64()
            .ok_or_else(|| format!("{name}: missing or non-numeric \"ns_per_iter\""))?;
        if !ns_per_iter.is_finite() || ns_per_iter < 0.0 {
            return Err(format!(
                "{name}: ns_per_iter {ns_per_iter} is not a finite non-negative number"
            ));
        }
        let iters = r.get("iters").as_u64().unwrap_or(0);
        results.push(Measurement {
            name,
            ns_per_iter,
            iters,
        });
    }
    if results.is_empty() {
        return Err(
            "report has no results (an empty report would pass every gate vacuously)".into(),
        );
    }
    Ok(BenchReport { mode, results })
}

/// Per-benchmark regression thresholds, as percentages of the baseline.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Threshold for the stable `micro/*` benches.
    pub stable_pct: f64,
    /// Threshold for everything else (end-to-end discovery benches vary
    /// up to ±40% between runs, per the committed baseline's notes).
    pub loose_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            // Measured run-to-run spread of the stable micro benches on a
            // shared single-core runner tops out around ±30% (allocation-
            // heavy benches like push_pop_10k); 50% clears that noise
            // floor while still catching any real 2x regression.
            stable_pct: 50.0,
            loose_pct: 100.0,
        }
    }
}

impl Thresholds {
    /// Whether `name` belongs to the stable tier.
    pub fn is_stable(name: &str) -> bool {
        name.starts_with("micro/")
    }

    /// The threshold applied to benchmark `name`.
    pub fn for_name(&self, name: &str) -> f64 {
        if Thresholds::is_stable(name) {
            self.stable_pct
        } else {
            self.loose_pct
        }
    }
}

/// One baseline benchmark's comparison outcome.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline mean, ns per iteration.
    pub baseline_ns: f64,
    /// Candidate mean; `None` when the candidate report lacks the
    /// benchmark (counted as a failure — the gate cannot verify it).
    pub candidate_ns: Option<f64>,
    /// Relative change in percent (positive = slower).
    pub delta_pct: f64,
    /// The threshold this row was judged against.
    pub threshold_pct: f64,
    /// True when the row fails the gate.
    pub regressed: bool,
}

/// A finished comparison: one row per baseline benchmark, plus the
/// candidate-only names (informational, never a failure).
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Rows in baseline order.
    pub rows: Vec<CompareRow>,
    /// Benchmarks present only in the candidate.
    pub added: Vec<String>,
}

impl Comparison {
    /// True when no row regressed.
    pub fn is_pass(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed)
    }

    /// The failing rows.
    pub fn regressions(&self) -> Vec<&CompareRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("schema", "asi-bench-compare/v1")
            .with("pass", self.is_pass())
            .with("regressions", self.regressions().len())
            .with(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::object()
                                .with("name", r.name.as_str())
                                .with("baseline_ns", r.baseline_ns)
                                .with(
                                    "candidate_ns",
                                    r.candidate_ns.map(Json::Num).unwrap_or(Json::Null),
                                )
                                .with("delta_pct", r.delta_pct)
                                .with("threshold_pct", r.threshold_pct)
                                .with("regressed", r.regressed)
                        })
                        .collect(),
                ),
            )
            .with(
                "added",
                Json::Arr(self.added.iter().map(|n| Json::Str(n.clone())).collect()),
            )
    }

    /// Human-readable table, one line per row.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{:<44} {:>12} {:>12} {:>8} {:>6}  verdict\n",
            "benchmark", "baseline", "candidate", "delta", "limit"
        );
        for r in &self.rows {
            let candidate = match r.candidate_ns {
                Some(ns) => format!("{:.1}", ns),
                None => "missing".to_string(),
            };
            out.push_str(&format!(
                "{:<44} {:>12.1} {:>12} {:>+7.1}% {:>5.0}%  {}\n",
                r.name,
                r.baseline_ns,
                candidate,
                r.delta_pct,
                r.threshold_pct,
                if r.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.added {
            out.push_str(&format!("{name:<44} (new benchmark, not gated)\n"));
        }
        out
    }
}

/// Compares `candidate` against `baseline`: every baseline benchmark
/// must be present and within its threshold. Benchmarks only in the
/// candidate are reported but never fail the gate, so adding a bench
/// does not require regenerating the baseline in the same commit.
pub fn compare(
    baseline: &BenchReport,
    candidate: &BenchReport,
    thresholds: &Thresholds,
) -> Comparison {
    let rows = baseline
        .results
        .iter()
        .map(|b| {
            let threshold_pct = thresholds.for_name(&b.name);
            let candidate_ns = candidate
                .results
                .iter()
                .find(|c| c.name == b.name)
                .map(|c| c.ns_per_iter);
            let delta_pct = match candidate_ns {
                Some(c) if b.ns_per_iter > 0.0 => (c - b.ns_per_iter) / b.ns_per_iter * 100.0,
                Some(c) if c > 0.0 => f64::INFINITY,
                _ => 0.0,
            };
            CompareRow {
                name: b.name.clone(),
                baseline_ns: b.ns_per_iter,
                candidate_ns,
                delta_pct,
                threshold_pct,
                regressed: candidate_ns.is_none() || delta_pct > threshold_pct,
            }
        })
        .collect();
    let added = candidate
        .results
        .iter()
        .filter(|c| baseline.results.iter().all(|b| b.name != c.name))
        .map(|c| c.name.clone())
        .collect();
    Comparison { rows, added }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            mode: "stable".into(),
            results: entries
                .iter()
                .map(|&(name, ns)| Measurement {
                    name: name.into(),
                    ns_per_iter: ns,
                    iters: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_shim_schema() {
        let text = r#"{
          "schema": "asi-bench/v1",
          "mode": "stable",
          "results": [
            { "name": "micro/event_queue/push_pop_10k", "ns_per_iter": 1234.5, "iters": 20 }
          ]
        }"#;
        let report = parse_report(text).unwrap();
        assert_eq!(report.mode, "stable");
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].name, "micro/event_queue/push_pop_10k");
        assert_eq!(report.results[0].ns_per_iter, 1234.5);
        assert_eq!(report.results[0].iters, 20);
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(parse_report("not json")
            .unwrap_err()
            .contains("not valid JSON"));
        assert!(parse_report("{}").unwrap_err().contains("schema"));
        assert!(parse_report(r#"{"schema": "other/v2", "results": []}"#)
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(parse_report(r#"{"schema": "asi-bench/v1"}"#)
            .unwrap_err()
            .contains("results"));
        assert!(parse_report(r#"{"schema": "asi-bench/v1", "results": []}"#)
            .unwrap_err()
            .contains("no results"));
        assert!(
            parse_report(r#"{"schema": "asi-bench/v1", "results": [{ "name": "x" }]}"#)
                .unwrap_err()
                .contains("ns_per_iter")
        );
    }

    #[test]
    fn stable_benches_get_the_tight_threshold() {
        let t = Thresholds::default();
        assert_eq!(t.for_name("micro/event_queue/push_pop_10k"), t.stable_pct);
        assert_eq!(t.for_name("discovery/6x6 mesh/Parallel"), t.loose_pct);
        assert!(t.stable_pct < t.loose_pct);
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(&[("micro/a", 100.0), ("discovery/b", 5000.0)]);
        let cmp = compare(&base, &base.clone(), &Thresholds::default());
        assert!(cmp.is_pass());
        assert!(cmp.regressions().is_empty());
        assert!(cmp.added.is_empty());
    }

    #[test]
    fn regression_beyond_threshold_fails_only_the_right_tier() {
        let base = report(&[("micro/a", 100.0), ("discovery/b", 1000.0)]);
        // +80%: beyond the 50% stable threshold, within the 100% loose one.
        let cand = report(&[("micro/a", 180.0), ("discovery/b", 1800.0)]);
        let cmp = compare(&base, &cand, &Thresholds::default());
        assert!(!cmp.is_pass());
        let failing: Vec<&str> = cmp.regressions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(failing, ["micro/a"]);
        assert_eq!(cmp.rows[0].delta_pct, 80.0);
    }

    #[test]
    fn improvements_and_noise_pass() {
        let base = report(&[("micro/a", 100.0), ("discovery/b", 1000.0)]);
        let cand = report(&[("micro/a", 60.0), ("discovery/b", 1390.0)]);
        let cmp = compare(&base, &cand, &Thresholds::default());
        assert!(cmp.is_pass(), "{}", cmp.to_text());
    }

    #[test]
    fn missing_baseline_bench_fails_and_new_bench_does_not() {
        let base = report(&[("micro/a", 100.0)]);
        let cand = report(&[("micro/new", 5.0)]);
        let cmp = compare(&base, &cand, &Thresholds::default());
        assert!(!cmp.is_pass());
        assert_eq!(cmp.rows[0].candidate_ns, None);
        assert_eq!(cmp.added, ["micro/new"]);
        // The new bench alone never fails the gate.
        let base2 = report(&[("micro/new", 5.0)]);
        let cand2 = report(&[("micro/new", 5.0), ("micro/extra", 1.0)]);
        assert!(compare(&base2, &cand2, &Thresholds::default()).is_pass());
    }

    #[test]
    fn zero_baseline_regresses_only_on_nonzero_candidate() {
        let base = report(&[("micro/z", 0.0)]);
        let same = report(&[("micro/z", 0.0)]);
        assert!(compare(&base, &same, &Thresholds::default()).is_pass());
        let slower = report(&[("micro/z", 10.0)]);
        assert!(!compare(&base, &slower, &Thresholds::default()).is_pass());
    }

    #[test]
    fn json_and_text_reports_name_the_failures() {
        let base = report(&[("micro/a", 100.0)]);
        let cand = report(&[("micro/a", 200.0)]);
        let cmp = compare(&base, &cand, &Thresholds::default());
        let json = cmp.to_json();
        assert_eq!(*json.get("pass"), Json::Bool(false));
        assert_eq!(*json.get("regressions"), 1);
        assert_eq!(*json.get("rows").idx(0).get("name"), "micro/a");
        assert_eq!(*json.get("rows").idx(0).get("regressed"), Json::Bool(true));
        assert!(cmp.to_text().contains("REGRESSED"));
    }
}
