//! The experiment scenario runner: fabric bring-up, FM installation,
//! initial discovery, PI-5 configuration, and topological-change
//! injection — the exact procedure of the paper's §4.1.

use asi_core::{Algorithm, FmAgent, FmConfig, FmTiming, RetryPolicy, TOKEN_START_DISCOVERY};
use asi_core::{DiscoveryRun, TopologyDb};
use asi_fabric::{
    DevId, Fabric, FabricConfig, FaultPlan, FmRoute, TrafficAgent, TrafficRoute, DSN_BASE,
};
use asi_sim::{SimDuration, SimRng, TraceHandle};
use asi_state::Snapshot;
use asi_topo::{routes_from, NodeId, Topology};

/// Simulator-kernel queue-depth sampling period used when a scenario
/// carries a trace sink (one `queue-sample` record per this many
/// processed events; the kernel ignores it on a disabled handle).
const QUEUE_SAMPLE_EVERY: u64 = 4096;

/// Background-traffic settings for the traffic ablation.
#[derive(Clone, Copy, Debug)]
pub struct TrafficSpec {
    /// Mean inter-injection gap per source endpoint.
    pub mean_gap: SimDuration,
    /// Payload bytes per data packet.
    pub payload: u16,
}

/// Scenario parameters.
///
/// Construct with [`Scenario::new`] and refine with the `with_*`
/// builder methods:
///
/// ```
/// use asi_harness::prelude::*;
/// use asi_sim::SimDuration;
///
/// let s = Scenario::new(Algorithm::Parallel)
///     .with_faults(FaultPlan::none().with_loss(LossModel::bursty(0.05)))
///     .with_retry(RetryPolicy::exponential(10))
///     .with_seed(7);
/// assert!(!s.faults.is_inert());
/// ```
///
/// The struct is `#[non_exhaustive]` so new knobs can be added without
/// breaking callers; fields stay public for reading and in-place
/// mutation.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Scenario {
    /// Discovery algorithm under test.
    pub algorithm: Algorithm,
    /// FM processing-speed factor (Figs. 8–9).
    pub fm_factor: f64,
    /// Device processing-speed factor (Figs. 8–9).
    pub device_factor: f64,
    /// Partial (affected-region) assimilation instead of full re-runs.
    pub partial_assimilation: bool,
    /// Optional Poisson background traffic from every endpoint.
    pub traffic: Option<TrafficSpec>,
    /// Disable credit flow control (ablation).
    pub flow_control: bool,
    /// RNG seed (victim selection, traffic arrivals, fault draws).
    pub seed: u64,
    /// Deterministic fault-injection plan applied to the fabric
    /// (loss, completion corruption/duplication, scheduled events).
    pub faults: FaultPlan,
    /// FM retry/backoff policy for timed-out requests.
    pub retry: RetryPolicy,
    /// Base timeout for a request's first attempt.
    pub request_timeout: SimDuration,
    /// Observability sink wired into the FM, the discovery engine, the
    /// fabric model and the simulator kernel. Disabled by default (zero
    /// overhead); see `docs/TRACE_FORMAT.md`.
    pub trace: TraceHandle,
    /// Cached topology snapshot seeding a warm-start discovery; `None`
    /// runs the ordinary cold discovery.
    pub snapshot: Option<Snapshot>,
    /// Fraction of snapshot devices that may mismatch during a
    /// warm-start verification before the FM abandons the scoped repair
    /// and falls back to a full cold discovery.
    pub warm_fallback_threshold: f64,
}

impl Scenario {
    /// Paper-default scenario for an algorithm.
    pub fn new(algorithm: Algorithm) -> Scenario {
        Scenario {
            algorithm,
            fm_factor: 1.0,
            device_factor: 1.0,
            partial_assimilation: false,
            traffic: None,
            flow_control: true,
            seed: 0xA51,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            request_timeout: SimDuration::from_ms(5),
            trace: TraceHandle::disabled(),
            snapshot: None,
            warm_fallback_threshold: 0.25,
        }
    }

    /// Sets the processing factors (paper Figs. 8–9).
    pub fn with_factors(mut self, fm: f64, device: f64) -> Scenario {
        self.fm_factor = fm;
        self.device_factor = device;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Enables Poisson background traffic from every non-FM endpoint.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Scenario {
        self.traffic = Some(traffic);
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Scenario {
        self.faults = faults;
        self
    }

    /// Sets the FM's retry/backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Scenario {
        self.retry = retry;
        self
    }

    /// Sets the FM's base request timeout.
    pub fn with_request_timeout(mut self, timeout: SimDuration) -> Scenario {
        self.request_timeout = timeout;
        self
    }

    /// Enables partial (affected-region) assimilation.
    pub fn with_partial_assimilation(mut self, on: bool) -> Scenario {
        self.partial_assimilation = on;
        self
    }

    /// Enables or disables credit flow control.
    pub fn with_flow_control(mut self, on: bool) -> Scenario {
        self.flow_control = on;
        self
    }

    /// Installs a trace sink (e.g. `asi_harness::RingCollector::shared`).
    pub fn with_trace(mut self, trace: TraceHandle) -> Scenario {
        self.trace = trace;
        self
    }

    /// Seeds the FM with a cached topology snapshot: the initial run
    /// becomes a warm-start verification pass instead of a cold
    /// discovery (see `asi_core::DiscoveryMode`).
    pub fn with_snapshot(mut self, snapshot: Snapshot) -> Scenario {
        self.snapshot = Some(snapshot);
        self
    }

    /// Sets the warm-start fallback threshold (see
    /// [`Scenario::warm_fallback_threshold`]).
    pub fn with_warm_fallback_threshold(mut self, fraction: f64) -> Scenario {
        self.warm_fallback_threshold = fraction;
        self
    }

    /// The fabric configuration this scenario implies.
    fn fabric_config(&self) -> FabricConfig {
        FabricConfig {
            device_factor: self.device_factor,
            flow_control: self.flow_control,
            faults: self.faults.clone(),
            seed: self.seed,
            ..FabricConfig::default()
        }
    }

    /// The base request timeout scaled to the fabric size. The FM
    /// processes responses serially, so on large fabrics a parallel
    /// discovery's response backlog alone can exceed a flat timeout and
    /// abandon requests that were answered promptly. Fabrics up to 128
    /// devices (everything in the paper's Table 1) keep the configured
    /// base exactly; beyond that the timeout grows linearly with the
    /// device count, matching the worst-case backlog.
    fn scaled_request_timeout(&self, devices: usize) -> SimDuration {
        self.request_timeout * (devices as u64).div_ceil(128).max(1)
    }

    /// The FM configuration this scenario implies for a fabric of
    /// `devices` nodes.
    fn fm_config(&self, devices: usize) -> FmConfig {
        let cfg = FmConfig::new(self.algorithm)
            .with_timing(FmTiming::default().with_factor(self.fm_factor))
            .with_partial_assimilation(self.partial_assimilation)
            .with_retry(self.retry)
            .with_request_timeout(self.scaled_request_timeout(devices))
            .with_trace(self.trace.clone());
        match &self.snapshot {
            Some(snapshot) => cfg
                .with_warm_start(snapshot.clone())
                .with_warm_fallback_threshold(self.warm_fallback_threshold),
            None => cfg,
        }
    }

    /// Runs a single initial discovery under this scenario's fault plan
    /// and retry policy, without the [`Bench`] settling machinery — the
    /// robustness path shared by the CLI's faults mode and the fault
    /// sweep grids. Returns the completed run and the active-node
    /// count, or `None` when the FM never finished a run.
    pub fn initial_discovery(&self, topo: &Topology) -> Option<(DiscoveryRun, usize)> {
        let mut fabric = Fabric::new(topo, self.fabric_config());
        fabric.set_event_limit(2_000_000_000);
        fabric.set_trace(self.trace.clone(), QUEUE_SAMPLE_EVERY);
        fabric.activate_all(SimDuration::ZERO);
        run_bringup(&mut fabric, &self.faults);
        let fm_node = asi_topo::default_fm_endpoint(topo)?;
        let fm = DevId(fm_node.0);
        fabric.set_agent(
            fm,
            Box::new(FmAgent::new(self.fm_config(topo.node_count()))),
        );
        fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
        fabric.run_until_idle();
        let active = fabric.active_reachable(fm).len();
        let run = fabric.agent_as::<FmAgent>(fm)?.last_run()?.clone();
        Some((run, active))
    }
}

/// Drains the bring-up phase. With scheduled fault events in the plan,
/// `run_until_idle` would fast-forward through them before the FM is
/// even installed, so stop at the first scheduled fault instead (the
/// fabric trains in microseconds; fault schedules target discovery
/// time).
fn run_bringup(fabric: &mut Fabric, faults: &FaultPlan) {
    match faults.events.iter().map(|e| e.at).min() {
        Some(first) => fabric.run_until(asi_sim::SimTime::ZERO + first),
        None => fabric.run_until_idle(),
    }
}

/// A scenario bound to a live fabric.
pub struct Bench {
    /// The fabric under test.
    pub fabric: Fabric,
    /// The FM's endpoint.
    pub fm: DevId,
    /// Ground truth.
    pub topo: Topology,
    rng: SimRng,
}

/// Translates a database DSN back to the fabric device id.
pub fn dev_of_dsn(dsn: u64) -> DevId {
    DevId((dsn & 0xFFFF_FFFF) as u32)
}

/// DSN of a fabric device id.
pub fn dsn_of_dev(dev: DevId) -> u64 {
    DSN_BASE | u64::from(dev.0)
}

impl Bench {
    /// Builds the fabric, powers everything up (minus `absent` devices),
    /// installs the FM on the first endpoint and runs the initial
    /// discovery to completion.
    pub fn start(topo: &Topology, scenario: &Scenario, absent: &[NodeId]) -> Bench {
        let mut config = scenario.fabric_config();
        config.turn_pool_capacity = asi_proto::MAX_POOL_BITS;
        let mut fabric = Fabric::new(topo, config);
        fabric.set_event_limit(2_000_000_000);
        fabric.set_trace(scenario.trace.clone(), QUEUE_SAMPLE_EVERY);
        for (id, _) in topo.nodes() {
            if !absent.contains(&id) {
                fabric.schedule_activate(DevId(id.0), SimDuration::ZERO);
            }
        }
        run_bringup(&mut fabric, &scenario.faults);

        let fm_node = asi_topo::default_fm_endpoint(topo).expect("topology has endpoints");
        assert!(
            !absent.contains(&fm_node),
            "the FM endpoint cannot be absent"
        );
        let fm = DevId(fm_node.0);
        let mut rng = SimRng::new(scenario.seed);

        // Optional background traffic on every other endpoint.
        if let Some(spec) = scenario.traffic {
            let endpoints = topo.endpoints();
            for &ep in &endpoints {
                if ep == fm_node || absent.contains(&ep) {
                    continue;
                }
                let routes: Vec<TrafficRoute> = routes_from(topo, ep)
                    .into_iter()
                    .enumerate()
                    .filter(|(i, r)| {
                        r.is_some()
                            && endpoints.contains(&NodeId(*i as u32))
                            && NodeId(*i as u32) != ep
                            && !absent.contains(&NodeId(*i as u32))
                    })
                    .filter_map(|(_, r)| {
                        let r = r.unwrap();
                        // Skip destinations through absent switches: the
                        // packets would just be dropped noise.
                        r.encode(topo, asi_proto::MAX_POOL_BITS)
                            .ok()
                            .map(|pool| TrafficRoute {
                                egress: r.source_port,
                                pool,
                            })
                    })
                    .collect();
                fabric.set_agent(
                    DevId(ep.0),
                    Box::new(TrafficAgent::new(
                        routes,
                        spec.mean_gap,
                        spec.payload,
                        rng.fork(u64::from(ep.0)),
                    )),
                );
                fabric.schedule_agent_timer(
                    DevId(ep.0),
                    SimDuration::from_ns(1 + u64::from(ep.0)),
                    TrafficAgent::start_token(),
                );
            }
        }

        fabric.set_agent(
            fm,
            Box::new(FmAgent::new(scenario.fm_config(topo.node_count()))),
        );
        fabric.schedule_agent_timer(fm, SimDuration::from_us(1), TOKEN_START_DISCOVERY);

        let mut bench = Bench {
            fabric,
            fm,
            topo: topo.clone(),
            rng,
        };
        bench.settle(1);
        bench.configure_pi5_routes();
        bench
    }

    /// Steps the fabric until the FM has completed at least `target_runs`
    /// discoveries and been quiet for a grace period. Works both with and
    /// without background traffic (which never lets the event queue go
    /// idle).
    fn settle(&mut self, target_runs: usize) {
        let deadline = self.fabric.now() + SimDuration::from_ms(30_000);
        let quiet = SimDuration::from_us(500);
        let mut quiet_since = None;
        loop {
            let ready = {
                let agent = self.fabric.agent_as::<FmAgent>(self.fm);
                agent.is_some_and(|a| a.runs.len() >= target_runs && !a.discovering())
            };
            if ready {
                let since = *quiet_since.get_or_insert(self.fabric.now());
                if self.fabric.now().saturating_since(since) >= quiet {
                    break;
                }
            } else {
                quiet_since = None;
            }
            if !self.fabric.step() {
                assert!(ready, "fabric went idle before discovery finished");
                break;
            }
            assert!(
                self.fabric.now() < deadline,
                "scenario did not settle within the deadline"
            );
        }
    }

    /// The FM agent.
    pub fn fm_agent(&self) -> &FmAgent {
        self.fabric
            .agent_as::<FmAgent>(self.fm)
            .expect("FM installed")
    }

    /// The latest discovery run.
    pub fn last_run(&self) -> DiscoveryRun {
        self.fm_agent()
            .last_run()
            .expect("a discovery has completed")
            .clone()
    }

    /// The FM's current database.
    pub fn db(&self) -> &TopologyDb {
        self.fm_agent().db().expect("discovery completed")
    }

    /// Number of active devices reachable from the FM (the paper's
    /// "active nodes" x-axis).
    pub fn active_nodes(&self) -> usize {
        self.fabric.active_reachable(self.fm).len()
    }

    /// Installs PI-5 reporting routes on every device, computed from the
    /// FM's own database (the configuration step after discovery).
    pub fn configure_pi5_routes(&mut self) {
        let routes: Vec<(u64, u8, asi_proto::TurnPool)> = {
            let db = self.db();
            let host = db.host_dsn();
            // One reversed-tree BFS covers every device; per-device
            // route_between calls would be quadratic on large fabrics.
            let mut to_host = db.routes_to(host, asi_proto::MAX_POOL_BITS);
            db.devices()
                .filter(|d| d.info.dsn != host)
                .filter_map(|d| {
                    to_host
                        .remove(&d.info.dsn)
                        .and_then(Result::ok)
                        .map(|r| (d.info.dsn, r.egress, r.pool))
                })
                .collect()
        };
        for (dsn, egress, pool) in routes {
            self.fabric
                .set_fm_route(dev_of_dsn(dsn), FmRoute { egress, pool });
        }
    }

    /// Picks a random switch that is safe to remove (never the FM's
    /// attached switch, so the manager stays connected).
    pub fn pick_victim_switch(&mut self) -> NodeId {
        let fm_neighbor = self
            .topo
            .neighbors(NodeId(self.fm.0))
            .next()
            .map(|(_, at)| at.node);
        let candidates: Vec<NodeId> = self
            .topo
            .switches()
            .into_iter()
            .filter(|s| Some(*s) != fm_neighbor)
            .filter(|s| self.fabric.is_active(DevId(s.0)))
            .collect();
        *self.rng.choose(&candidates).expect("a removable switch")
    }

    /// Removes `victim` and runs until the FM has assimilated the change.
    /// Returns the assimilation run.
    pub fn remove_switch(&mut self, victim: NodeId) -> DiscoveryRun {
        let runs_before = self.fm_agent().runs.len();
        self.fabric
            .schedule_deactivate(DevId(victim.0), SimDuration::from_us(1));
        self.settle(runs_before + 1);
        let agent = self.fm_agent();
        assert!(
            agent.runs.len() > runs_before,
            "removal of {victim} triggered no re-discovery"
        );
        self.configure_pi5_routes();
        self.last_run()
    }

    /// Activates a previously absent device and runs until assimilated.
    pub fn add_device(&mut self, newcomer: NodeId) -> DiscoveryRun {
        let runs_before = self.fm_agent().runs.len();
        self.fabric
            .schedule_activate(DevId(newcomer.0), SimDuration::from_us(1));
        self.settle(runs_before + 1);
        let agent = self.fm_agent();
        assert!(
            agent.runs.len() > runs_before,
            "addition of {newcomer} triggered no re-discovery"
        );
        self.configure_pi5_routes();
        self.last_run()
    }
}

/// Result of a distributed discovery run.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// Time from discovery start to the primary's final merged database.
    pub merged_time: asi_sim::SimDuration,
    /// Devices in the merged database.
    pub devices: usize,
    /// Links in the merged database.
    pub links: usize,
    /// Devices each manager explored itself (primary first).
    pub per_manager_devices: Vec<usize>,
}

/// Runs a distributed discovery (the paper's future-work extension):
/// `collaborators` additional managers partition the fabric with
/// claim-and-hold ownership writes and stream their regions to the
/// primary. Collaborator endpoints are spread evenly over the endpoint
/// list; their report routes to the primary are pre-configured (the
/// election phase would normally distribute them).
pub fn distributed_discovery(
    topo: &Topology,
    collaborators: usize,
    scenario: &Scenario,
) -> (Fabric, DevId, DistributedOutcome) {
    use asi_core::DistributedRole;
    use asi_topo::shortest_route;

    let endpoints = topo.endpoints();
    assert!(
        endpoints.len() > collaborators,
        "not enough endpoints for {collaborators} collaborators"
    );
    let primary_node = endpoints[0];
    let primary = DevId(primary_node.0);
    // Spread collaborators across the endpoint list.
    let collab_nodes: Vec<NodeId> = (1..=collaborators)
        .map(|i| endpoints[i * (endpoints.len() - 1) / collaborators.max(1)])
        .collect();

    let mut fabric = Fabric::new(topo, scenario.fabric_config());
    fabric.set_event_limit(2_000_000_000);
    fabric.set_trace(scenario.trace.clone(), QUEUE_SAMPLE_EVERY);
    fabric.activate_all(SimDuration::ZERO);
    run_bringup(&mut fabric, &scenario.faults);

    // All managers (primary and collaborators) share the scenario sink;
    // the simulation loop is single-threaded, so interleaving is safe.
    let fm_cfg = scenario
        .fm_config(topo.node_count())
        .with_auto_rediscover(false);
    let primary_cfg = fm_cfg.clone().with_distributed(DistributedRole::Primary {
        expected_reports: collaborators,
    });
    fabric.set_agent(primary, Box::new(FmAgent::new(primary_cfg)));

    for &c in &collab_nodes {
        let route = shortest_route(topo, c, primary_node).expect("connected fabric");
        let pool = route
            .encode(topo, asi_proto::MAX_POOL_BITS)
            .expect("route fits extended pool");
        let cfg = fm_cfg
            .clone()
            .with_distributed(DistributedRole::Collaborator {
                report_egress: route.source_port,
                report_pool: pool,
            });
        fabric.set_agent(DevId(c.0), Box::new(FmAgent::new(cfg)));
    }

    // Everyone starts at (nearly) the same instant.
    let start = SimDuration::from_us(1);
    let start_at = fabric.now() + start;
    fabric.schedule_agent_timer(primary, start, TOKEN_START_DISCOVERY);
    for &c in &collab_nodes {
        fabric.schedule_agent_timer(DevId(c.0), start, TOKEN_START_DISCOVERY);
    }

    // Run until the primary holds the merged database.
    let deadline = fabric.now() + SimDuration::from_ms(30_000);
    loop {
        let done = fabric
            .agent_as::<FmAgent>(primary)
            .is_some_and(|a| a.distributed_finished_at.is_some());
        if done {
            break;
        }
        assert!(
            fabric.step(),
            "fabric idle before distributed merge completed"
        );
        assert!(fabric.now() < deadline, "distributed discovery stalled");
    }
    // Drain any trailing packets.
    fabric.run_until_idle();

    let (merged_time, devices, links) = {
        let agent = fabric.agent_as::<FmAgent>(primary).expect("primary");
        let finished = agent.distributed_finished_at.expect("checked");
        let db = agent.db().expect("merged database");
        (
            finished.saturating_since(start_at),
            db.device_count(),
            db.link_count(),
        )
    };
    let mut per_manager_devices = vec![fabric
        .agent_as::<FmAgent>(primary)
        .and_then(|a| a.last_run())
        .map(|r| r.devices_found)
        .unwrap_or(0)];
    for &c in &collab_nodes {
        per_manager_devices.push(
            fabric
                .agent_as::<FmAgent>(DevId(c.0))
                .and_then(|a| a.last_run())
                .map(|r| r.devices_found)
                .unwrap_or(0),
        );
    }

    (
        fabric,
        primary,
        DistributedOutcome {
            merged_time,
            devices,
            links,
            per_manager_devices,
        },
    )
}

/// Result of an election-based sharded discovery ([`sharded_discovery`]).
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// Time from the election kick-off to the primary's final merged
    /// database (election window included).
    pub merged_time: asi_sim::SimDuration,
    /// Devices in the merged database.
    pub devices: usize,
    /// Links in the merged database.
    pub links: usize,
    /// Canonical-snapshot checksum stamped by the merge certificate.
    pub checksum: u64,
    /// Boundary devices ceded to a rival, summed over every manager.
    pub boundary_conflicts: u64,
    /// Primary failovers over the whole run (0 unless the primary died).
    pub failovers: u32,
    /// The primary's merge tail: end of its own exploration to the
    /// merged database becoming final.
    pub merge_time: asi_sim::SimDuration,
    /// Devices each manager explored itself (primary first).
    pub per_fm_devices: Vec<usize>,
}

/// Runs a fully distributed sharded discovery: `fm_count` managers
/// elect a primary over PI-9 (claim broadcast, fixed election window,
/// deterministic local resolution), partition the fabric with
/// claim-and-hold ownership writes, and stream their regions to the
/// elected primary, which certifies the merged database
/// ([`asi_core::certify_merge`]).
///
/// Unlike [`distributed_discovery`], no roles are pre-assigned — only
/// the peer routes are (the fabric would normally flood-learn them).
/// The first endpoint advertises the highest election priority, so the
/// winner is deterministic; the runner-up arms standby keepalives and
/// takes over if the primary dies mid-run. With `fm_count == 1` the
/// lone manager elects itself and the run degenerates to a classic
/// single-FM discovery through the same code path.
pub fn sharded_discovery(
    topo: &Topology,
    fm_count: usize,
    scenario: &Scenario,
) -> (Fabric, DevId, ShardedOutcome) {
    use asi_core::{certify_merge, DistributedConfig, TOKEN_START_ELECTION};
    use asi_topo::shortest_route;

    assert!(fm_count >= 1, "need at least one manager");
    let endpoints = topo.endpoints();
    assert!(
        endpoints.len() >= fm_count,
        "not enough endpoints for {fm_count} managers"
    );
    // Manager endpoints spread evenly over the endpoint list; the first
    // endpoint runs the highest-priority candidate.
    let mut fm_nodes: Vec<NodeId> = vec![endpoints[0]];
    for i in 1..fm_count {
        fm_nodes.push(endpoints[i * (endpoints.len() - 1) / (fm_count - 1).max(1)]);
    }
    {
        let mut uniq = fm_nodes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), fm_count, "manager endpoints collide");
    }

    let mut fabric = Fabric::new(topo, scenario.fabric_config());
    fabric.set_event_limit(2_000_000_000);
    fabric.set_trace(scenario.trace.clone(), QUEUE_SAMPLE_EVERY);
    fabric.activate_all(SimDuration::ZERO);
    run_bringup(&mut fabric, &scenario.faults);

    // Pairwise peer routes and the election window: every claim must
    // cross the fabric before any window closes, so pad the default by
    // a generous per-hop budget.
    let mut max_hops = 0usize;
    let mut peer_routes: Vec<Vec<(u64, u8, asi_proto::TurnPool)>> = Vec::new();
    for (i, &a) in fm_nodes.iter().enumerate() {
        let mut peers = Vec::new();
        for (j, &b) in fm_nodes.iter().enumerate() {
            if i == j {
                continue;
            }
            let route = shortest_route(topo, a, b).expect("connected fabric");
            max_hops = max_hops.max(route.hops.len());
            let pool = route
                .encode(topo, asi_proto::MAX_POOL_BITS)
                .expect("route fits extended pool");
            peers.push((dsn_of_dev(DevId(b.0)), route.source_port, pool));
        }
        peer_routes.push(peers);
    }
    let window =
        DistributedConfig::new(0).election_window + SimDuration::from_us(1) * (max_hops as u64);

    // Each manager's request timeout scales with the region it will
    // actually explore (~1/fm_count of the fabric), not the whole
    // fabric.
    let region = topo.node_count().div_ceil(fm_count);
    let fm_cfg = scenario.fm_config(region).with_auto_rediscover(false);
    for (i, &node) in fm_nodes.iter().enumerate() {
        let mut dc = DistributedConfig::new((fm_count - i) as u8).with_election_window(window);
        for (dsn, egress, pool) in &peer_routes[i] {
            dc = dc.with_peer(*dsn, *egress, pool.clone());
        }
        fabric.set_agent(
            DevId(node.0),
            Box::new(FmAgent::new(fm_cfg.clone().with_distributed_config(dc))),
        );
    }

    // Kick every candidate at (nearly) the same instant.
    let start = SimDuration::from_us(1);
    let start_at = fabric.now() + start;
    for &node in &fm_nodes {
        fabric.schedule_agent_timer(DevId(node.0), start, TOKEN_START_ELECTION);
    }

    // Run until some manager holds the merged database — normally the
    // elected primary, but after a failover the promoted secondary.
    let deadline = fabric.now() + SimDuration::from_ms(30_000);
    let holder = loop {
        let holder = fm_nodes.iter().copied().find(|&n| {
            fabric
                .agent_as::<FmAgent>(DevId(n.0))
                .is_some_and(|a| a.distributed_finished_at.is_some())
        });
        if let Some(n) = holder {
            break DevId(n.0);
        }
        assert!(
            fabric.step(),
            "fabric idle before the sharded merge completed"
        );
        assert!(fabric.now() < deadline, "sharded discovery stalled");
    };
    // Drain trailing packets for a bounded window: a healthy standby
    // secondary keeps watching the primary forever, so the fabric never
    // goes idle on its own.
    let drain = fabric.now() + SimDuration::from_ms(1);
    fabric.run_until(drain);

    let (merged_time, devices, links, checksum, merge_time) = {
        let agent = fabric.agent_as::<FmAgent>(holder).expect("primary");
        let finished = agent.distributed_finished_at.expect("checked");
        let db = agent.db().expect("merged database");
        let cert = certify_merge(db).expect("merged database certifies");
        let merge_time = agent
            .last_run()
            .map(|r| r.merge_time)
            .unwrap_or(SimDuration::ZERO);
        (
            finished.saturating_since(start_at),
            cert.devices as usize,
            cert.links as usize,
            cert.checksum,
            merge_time,
        )
    };
    let mut boundary_conflicts = 0;
    let mut failovers = 0;
    let mut per_fm_devices = Vec::new();
    for &node in &fm_nodes {
        let run = fabric
            .agent_as::<FmAgent>(DevId(node.0))
            .and_then(|a| a.last_run());
        boundary_conflicts += run.map(|r| r.boundary_conflicts).unwrap_or(0);
        failovers += run.map(|r| r.failovers).unwrap_or(0);
        per_fm_devices.push(run.map(|r| r.devices_found).unwrap_or(0));
    }

    (
        fabric,
        holder,
        ShardedOutcome {
            merged_time,
            devices,
            links,
            checksum,
            boundary_conflicts,
            failovers,
            merge_time,
            per_fm_devices,
        },
    )
}

/// One repetition of the paper's change experiment: bring up the fabric,
/// discover, inject a random switch removal **or** addition, re-discover.
/// Returns `(assimilation run, active nodes after the change)`.
pub fn change_experiment(
    topo: &Topology,
    scenario: &Scenario,
    remove: bool,
) -> (DiscoveryRun, usize) {
    if remove {
        let mut bench = Bench::start(topo, scenario, &[]);
        let victim = bench.pick_victim_switch();
        let run = bench.remove_switch(victim);
        let active = bench.active_nodes();
        (run, active)
    } else {
        // Addition: bring the fabric up with one random switch missing,
        // then hot-add it.
        let mut rng = SimRng::new(scenario.seed ^ 0x5EED);
        let fm_node = asi_topo::default_fm_endpoint(topo).expect("endpoints");
        let fm_neighbor = topo.neighbors(fm_node).next().map(|(_, at)| at.node);
        let candidates: Vec<NodeId> = topo
            .switches()
            .into_iter()
            .filter(|s| Some(*s) != fm_neighbor)
            .collect();
        let newcomer = *rng.choose(&candidates).expect("switch");
        let mut bench = Bench::start(topo, scenario, &[newcomer]);
        let run = bench.add_device(newcomer);
        let active = bench.active_nodes();
        (run, active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_topo::mesh;

    #[test]
    fn bench_initial_discovery_finds_everything() {
        let g = mesh(3, 3);
        let bench = Bench::start(&g.topology, &Scenario::new(Algorithm::Parallel), &[]);
        assert_eq!(bench.db().device_count(), 18);
        assert_eq!(bench.active_nodes(), 18);
    }

    #[test]
    fn remove_experiment_updates_active_nodes() {
        let g = mesh(3, 3);
        let (run, active) =
            change_experiment(&g.topology, &Scenario::new(Algorithm::Parallel), true);
        // One switch + its endpoint gone.
        assert_eq!(active, 16);
        assert!(run.discovery_time() > asi_sim::SimDuration::ZERO);
        assert_eq!(run.devices_found, 16);
    }

    #[test]
    fn add_experiment_restores_full_fabric() {
        let g = mesh(3, 3);
        let (run, active) =
            change_experiment(&g.topology, &Scenario::new(Algorithm::SerialDevice), false);
        assert_eq!(active, 18);
        assert_eq!(run.devices_found, 18);
    }

    #[test]
    fn victim_never_isolates_the_fm() {
        let g = mesh(3, 3);
        let mut bench = Bench::start(&g.topology, &Scenario::new(Algorithm::Parallel), &[]);
        for _ in 0..20 {
            let v = bench.pick_victim_switch();
            assert_ne!(v, g.switch_at(0, 0), "FM's own switch chosen");
        }
    }

    #[test]
    fn warm_scenario_verifies_instead_of_rediscovering() {
        let g = mesh(3, 3);
        let cold = Bench::start(&g.topology, &Scenario::new(Algorithm::Parallel), &[]);
        let snapshot = asi_core::snapshot_db(cold.db());
        let warm = Scenario::new(Algorithm::Parallel).with_snapshot(snapshot);
        let bench = Bench::start(&g.topology, &warm, &[]);
        let run = bench.last_run();
        assert_eq!(run.trigger, asi_core::DiscoveryTrigger::WarmStart);
        assert_eq!(run.probes_verified, 17);
        assert_eq!(run.verify_mismatches, 0);
        assert!(!run.warm_fallback);
        assert_eq!(bench.db().device_count(), 18);
    }

    #[test]
    fn request_timeout_scales_with_the_per_manager_region() {
        let s = Scenario::new(Algorithm::Parallel);
        // Whole-fabric scaling: 512 devices quadruple the base timeout.
        assert_eq!(s.scaled_request_timeout(512), s.request_timeout * 4);
        // A manager exploring half of that fabric must get the timeout
        // for *its region*, not the whole fabric.
        assert_eq!(
            s.scaled_request_timeout(512usize.div_ceil(2)),
            s.request_timeout * 2
        );
        // Paper-scale fabrics keep the configured base exactly.
        assert_eq!(s.scaled_request_timeout(64), s.request_timeout);
    }

    #[test]
    fn sharded_discovery_elects_and_merges_the_full_fabric() {
        let g = mesh(4, 4);
        let s = Scenario::new(Algorithm::Parallel);
        let (_fabric, primary, out) = sharded_discovery(&g.topology, 3, &s);
        // The first endpoint advertises the highest priority: it wins.
        assert_eq!(primary, DevId(g.topology.endpoints()[0].0));
        assert_eq!(out.devices, 32);
        assert!(out.links > 0);
        assert_eq!(out.failovers, 0);
        assert_eq!(out.per_fm_devices.len(), 3);
        // Every device was explored by someone; overlap at shard
        // boundaries is expected and shows up as ceded devices.
        assert!(out.per_fm_devices.iter().sum::<usize>() >= 32);
        assert!(out.merged_time > SimDuration::ZERO);
    }

    #[test]
    fn sharded_discovery_with_one_manager_degenerates_to_classic() {
        let g = mesh(3, 3);
        let s = Scenario::new(Algorithm::Parallel);
        let (_fabric, _primary, out) = sharded_discovery(&g.topology, 1, &s);
        assert_eq!(out.devices, 18);
        assert_eq!(out.boundary_conflicts, 0);
        assert_eq!(out.per_fm_devices, vec![18]);
        assert_eq!(out.merge_time, SimDuration::ZERO);
    }

    #[test]
    fn traffic_scenario_runs() {
        let g = mesh(3, 3);
        let s = Scenario::new(Algorithm::Parallel).with_traffic(TrafficSpec {
            mean_gap: SimDuration::from_us(50),
            payload: 256,
        });
        let bench = Bench::start(&g.topology, &s, &[]);
        assert_eq!(bench.db().device_count(), 18);
        assert!(bench.fabric.counters().data_bytes > 0, "no traffic flowed");
    }
}
