//! Deterministic multi-threaded experiment sweeps.
//!
//! The paper's evaluation is a grid: topology × algorithm × repetition
//! (× loss/retry configuration for the robustness ablations). A
//! [`SweepSpec`] names such a grid; [`run`] executes every cell across a
//! `std::thread::scope` worker pool and merges the results **by cell
//! index**, with each cell's RNG seed derived from the spec alone — so
//! the output (and therefore the rendered JSON/CSV) is byte-identical
//! for any `--jobs` value, including 1.
//!
//! The figure generators (`experiments::fig6`, and `fig9` through it)
//! are built on this module; the `asi-fabric-sim sweep` CLI mode exposes
//! the same grids from the command line.

use crate::json::Json;
use crate::scenario::{change_experiment, sharded_discovery, Bench, Scenario};
use asi_core::{snapshot_db, Algorithm, DiscoveryRun, RetryPolicy};
use asi_fabric::{FaultPlan, LossModel};
use asi_sim::{OnlineStats, SimDuration};
use asi_topo::Table1;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What each cell does after the initial bring-up.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChangeMode {
    /// Measure the initial discovery only (Figs. 4–5 style).
    Initial,
    /// Remove a random switch and measure the assimilation run.
    Remove,
    /// Hot-add a previously absent switch and measure the assimilation.
    Add,
    /// Alternate per repetition: even reps remove, odd reps add — the
    /// paper's Fig. 6 change experiment.
    Alternate,
}

impl ChangeMode {
    /// Keyword used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            ChangeMode::Initial => "initial",
            ChangeMode::Remove => "remove",
            ChangeMode::Add => "add",
            ChangeMode::Alternate => "alternate",
        }
    }
}

/// A full sweep grid: the cartesian product of `algorithms` ×
/// `topologies` × `reps` repetitions, plus shared scenario knobs.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Grid name (used in reports).
    pub name: String,
    /// Topologies to sweep (rows of the paper's Table 1).
    pub topologies: Vec<Table1>,
    /// Discovery algorithms to compare.
    pub algorithms: Vec<Algorithm>,
    /// Repetitions per (topology, algorithm) pair.
    pub reps: usize,
    /// Per-cell seed = `seed_base + rep * seed_stride`
    /// (+ the topology's switch count when `salt_by_switches`).
    pub seed_base: u64,
    /// Seed increment per repetition.
    pub seed_stride: u64,
    /// Mix the topology's switch count into the seed, so each topology
    /// sees different victims/arrival processes (the Fig. 6 convention).
    pub salt_by_switches: bool,
    /// What each cell measures.
    pub change: ChangeMode,
    /// FM processing-speed factor (Figs. 8–9).
    pub fm_factor: f64,
    /// Device processing-speed factor (Figs. 8–9).
    pub device_factor: f64,
    /// Fault-injection plan applied to every cell (inert = the paper's
    /// loss-free model). Non-inert plans measure the initial discovery
    /// through [`Scenario::initial_discovery`].
    pub faults: FaultPlan,
    /// FM retry/backoff policy (meaningful with a non-inert plan).
    pub retry: RetryPolicy,
    /// FM base request timeout for fault cells.
    pub request_timeout: SimDuration,
    /// Adds a warm-start axis: every `(algorithm, topology, rep)` point
    /// runs twice, cold and warm. The warm twin first runs an unmeasured
    /// cold discovery to produce a snapshot, then measures the
    /// warm-start verification pass seeded from it, with the **same**
    /// cell seed as its cold twin so the pair is directly comparable.
    /// Warm cells always measure the initial run (the change modes stay
    /// cold-only).
    pub warm_axis: bool,
    /// Fabric-manager counts to sweep. `1` runs the classic single-FM
    /// bench; larger values run an election-based sharded discovery
    /// ([`sharded_discovery`]) and fill the `fms`, `boundary_conflicts`,
    /// `failovers` and `merge_time_s` columns. The default `[1]` leaves
    /// every grid exactly as before.
    pub fm_counts: Vec<usize>,
}

impl SweepSpec {
    /// A grid with the paper-default knobs.
    pub fn new(name: impl Into<String>, topologies: Vec<Table1>) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            topologies,
            algorithms: Algorithm::all().to_vec(),
            reps: 1,
            seed_base: 0xA51,
            seed_stride: 7919,
            salt_by_switches: false,
            change: ChangeMode::Initial,
            fm_factor: 1.0,
            device_factor: 1.0,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            request_timeout: SimDuration::from_ms(5),
            warm_axis: false,
            fm_counts: vec![1],
        }
    }

    /// The Fig. 5 grid: initial discovery on the two fabrics the paper
    /// renders (6×6 mesh, 4-port 3-tree).
    pub fn fig5(quick: bool) -> SweepSpec {
        let mut spec = SweepSpec::new("fig5", vec![Table1::Mesh(6), Table1::FatTree(4, 3)]);
        spec.reps = if quick { 1 } else { 3 };
        spec
    }

    /// The Fig. 6 grid: random change assimilation over Table 1, with
    /// the exact per-repetition seeding the figure generator uses.
    /// Fig. 9 reuses it with non-default processing factors.
    pub fn fig6(quick: bool, fm_factor: f64, device_factor: f64) -> SweepSpec {
        let mut spec = SweepSpec::new(
            "fig6",
            if quick {
                Table1::quick()
            } else {
                Table1::all()
            },
        );
        spec.reps = if quick { 2 } else { 6 };
        spec.seed_base = 0xF16_6000;
        spec.salt_by_switches = true;
        spec.change = ChangeMode::Alternate;
        spec.fm_factor = fm_factor;
        spec.device_factor = device_factor;
        spec
    }

    /// A small smoke grid for CI end-to-end runs: one quick topology,
    /// all three algorithms, initial discovery only.
    pub fn smoke() -> SweepSpec {
        SweepSpec::new("smoke", vec![Table1::Mesh(3)])
    }

    /// The warm-vs-cold grid: Parallel initial discovery over the Table 1
    /// quick set (the full set when not `quick`), every point run both
    /// cold and snapshot-seeded, so the report quantifies what a cached
    /// topology buys on unchanged fabrics.
    pub fn warmstart(quick: bool) -> SweepSpec {
        let mut spec = SweepSpec::new(
            "warmstart",
            if quick {
                Table1::quick()
            } else {
                Table1::all()
            },
        );
        spec.algorithms = vec![Algorithm::Parallel];
        spec.reps = if quick { 1 } else { 3 };
        spec.seed_base = 0x5AF_0000;
        spec.warm_axis = true;
        spec
    }

    /// The large-fabric scale grid: Parallel initial discovery over the
    /// [`Table1::scale`] set (a three-topology subset when `quick`).
    /// The per-cell `peak_outstanding` and `sim_events` columns are its
    /// headline metrics; both are deterministic, so the rendered
    /// JSON/CSV stays byte-identical across `--jobs` values. Wall-clock
    /// throughput (events/sec) is reported by the CLI on stderr,
    /// outside the byte-compared output.
    pub fn scale(quick: bool) -> SweepSpec {
        let mut spec = SweepSpec::new(
            "scale",
            if quick {
                vec![
                    Table1::Mesh(16),
                    Table1::FatTree(8, 3),
                    Table1::Irregular(256),
                ]
            } else {
                Table1::scale()
            },
        );
        spec.algorithms = vec![Algorithm::Parallel];
        spec.seed_base = 0x5CA_1E00;
        // The distributed-discovery speedup curve: every scale topology
        // measured single-FM and sharded across 2 and 4 managers.
        spec.fm_counts = vec![1, 2, 4];
        spec
    }

    /// The robustness grid: initial discovery under 5% bursty
    /// (Gilbert–Elliott) loss with exponential backoff, for every
    /// algorithm. All cells must converge to the full topology; the
    /// retry/abandon columns quantify the degradation on the way there.
    pub fn faults(quick: bool) -> SweepSpec {
        let mut spec = SweepSpec::new(
            "faults",
            if quick {
                Table1::quick()
            } else {
                Table1::all()
            },
        );
        spec.reps = if quick { 1 } else { 3 };
        spec.seed_base = 0xFA_0175;
        spec.salt_by_switches = true;
        spec.faults = FaultPlan::none().with_loss(LossModel::bursty(0.05));
        spec.retry = RetryPolicy::exponential(10);
        spec.request_timeout = SimDuration::from_us(800);
        spec
    }

    /// The RNG seed of cell `(topology, rep)`.
    pub fn cell_seed(&self, topo: Table1, rep: usize) -> u64 {
        let salt = if self.salt_by_switches {
            topo.switches() as u64
        } else {
            0
        };
        self.seed_base + rep as u64 * self.seed_stride + salt
    }

    /// The warm-axis values this grid sweeps (cold only by default).
    fn warm_modes(&self) -> &'static [bool] {
        if self.warm_axis {
            &[false, true]
        } else {
            &[false]
        }
    }

    /// Materialises the grid in its canonical order: algorithms outer,
    /// then topologies, then cold-before-warm, then manager counts,
    /// then repetitions. Everything downstream (worker scheduling,
    /// result merging, aggregation) keys off this order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(
            self.algorithms.len()
                * self.topologies.len()
                * self.warm_modes().len()
                * self.fm_counts.len()
                * self.reps,
        );
        for &algorithm in &self.algorithms {
            for &topology in &self.topologies {
                for &warm in self.warm_modes() {
                    for &fms in &self.fm_counts {
                        for rep in 0..self.reps {
                            cells.push(Cell {
                                topology,
                                algorithm,
                                warm,
                                fms,
                                rep,
                                seed: self.cell_seed(topology, rep),
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One point of the grid.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// The fabric under test.
    pub topology: Table1,
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// Whether this cell measures the snapshot-seeded warm start.
    pub warm: bool,
    /// Fabric managers running the discovery (1 = classic bench).
    pub fms: usize,
    /// Repetition ordinal within the (topology, algorithm) pair.
    pub rep: usize,
    /// Derived RNG seed (see [`SweepSpec::cell_seed`]).
    pub seed: u64,
}

/// Measurements of one executed cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Topology display name.
    pub topology: String,
    /// Total devices in the (intact) topology.
    pub total_devices: usize,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// True for the warm-start twin of a cold cell.
    pub warm: bool,
    /// Repetition ordinal.
    pub rep: usize,
    /// The seed the cell ran with.
    pub seed: u64,
    /// Whether the measured run completed (lossy runs may exhaust their
    /// retry budget and never drain the pending table).
    pub completed: bool,
    /// Active reachable devices when the measured run finished.
    pub active_nodes: usize,
    /// The paper's headline metric, in seconds.
    pub discovery_time_s: f64,
    /// Devices in the FM database at the end of the run.
    pub devices_found: usize,
    /// Links in the FM database at the end of the run.
    pub links_found: usize,
    /// PI-4 requests injected.
    pub requests: u64,
    /// Completions processed.
    pub responses: u64,
    /// Request attempts that timed out.
    pub timeouts: u64,
    /// Timed-out requests the retry policy re-issued.
    pub retries: u64,
    /// Requests abandoned after exhausting the retry budget.
    pub abandoned: u64,
    /// Peak pending-table occupancy during the measured run (1 for the
    /// serial algorithms by construction; the scale grid's headline
    /// memory metric).
    pub peak_outstanding: usize,
    /// Simulator events processed over the whole cell (bring-up plus
    /// measured run). A pure function of the cell seed, so it is safe
    /// for byte-compared reports; the CLI divides the grid total by
    /// wall time for a throughput figure. Zero for fault and change
    /// cells, which run their fabric internally without surfacing it.
    pub sim_events: u64,
    /// Management bytes sent by the FM.
    pub bytes_sent: u64,
    /// Management bytes received by the FM.
    pub bytes_received: u64,
    /// Mean per-packet FM processing time (µs).
    pub mean_fm_processing_us: f64,
    /// Fraction of the run the FM was busy.
    pub fm_utilization: f64,
    /// Warm runs: snapshotted devices a verification probe confirmed.
    pub probes_verified: u64,
    /// Warm runs: snapshotted devices that failed verification.
    pub verify_mismatches: u64,
    /// Warm runs: whether the run fell back to a full cold discovery.
    pub warm_fallback: bool,
    /// Fabric managers that ran the discovery (1 = classic bench).
    pub fms: usize,
    /// Sharded runs: boundary devices ceded to a rival, summed over
    /// every manager.
    pub boundary_conflicts: u64,
    /// Sharded runs: primary failovers during the cell.
    pub failovers: u32,
    /// Sharded runs: the primary's merge tail (seconds).
    pub merge_time_s: f64,
}

/// Per-(topology, algorithm) summary over the repetitions.
#[derive(Clone, Debug)]
pub struct Aggregate {
    /// Topology display name.
    pub topology: String,
    /// Total devices in the intact topology.
    pub total_devices: usize,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// True for the warm-start row of a warm-axis grid.
    pub warm: bool,
    /// Fabric-manager count of this row (1 = classic bench).
    pub fms: usize,
    /// Completed repetitions aggregated.
    pub completed: usize,
    /// Mean discovery time over completed reps (seconds).
    pub mean_time_s: f64,
    /// Fastest completed rep (seconds).
    pub min_time_s: f64,
    /// Slowest completed rep (seconds).
    pub max_time_s: f64,
    /// Mean requests per completed rep.
    pub mean_requests: f64,
    /// Mean timeouts per completed rep.
    pub mean_timeouts: f64,
    /// Mean retries per completed rep (degradation under faults).
    pub mean_retries: f64,
    /// Reps that found every device of the (intact) topology.
    pub full_topology: usize,
}

/// A finished sweep: every cell result in canonical order, plus the
/// per-(topology, algorithm) aggregates.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Grid name.
    pub name: String,
    /// Change mode keyword.
    pub change: &'static str,
    /// All cell results, in [`SweepSpec::cells`] order.
    pub cells: Vec<CellResult>,
    /// Aggregates, algorithms outer then topologies (canonical order).
    pub aggregates: Vec<Aggregate>,
}

/// Executes one cell. Runs on a worker thread; must derive everything
/// from the cell + spec so results are placement-independent.
fn run_cell(spec: &SweepSpec, cell: &Cell) -> CellResult {
    let topo = cell.topology.build();
    let scenario = Scenario::new(cell.algorithm)
        .with_factors(spec.fm_factor, spec.device_factor)
        .with_faults(spec.faults.clone())
        .with_retry(spec.retry)
        .with_request_timeout(spec.request_timeout)
        .with_seed(cell.seed);
    if cell.fms > 1 {
        return run_sharded_cell(cell, &topo, &scenario);
    }
    // Fault and change cells run their fabric inside the scenario
    // helpers without surfacing it, so their simulator event count
    // reports as zero.
    let no_events = |(run, active): (DiscoveryRun, usize)| (run, active, 0u64);
    let outcome = if cell.warm {
        // Warm twin: an unmeasured cold bench produces the snapshot the
        // measured warm-start verification run is seeded from.
        let snapshot = snapshot_db(Bench::start(&topo, &scenario, &[]).db());
        let warm = scenario.clone().with_snapshot(snapshot);
        if !spec.faults.is_inert() {
            warm.initial_discovery(&topo).map(no_events)
        } else {
            let bench = Bench::start(&topo, &warm, &[]);
            let active = bench.active_nodes();
            Some((bench.last_run(), active, bench.fabric.events_processed()))
        }
    } else if !spec.faults.is_inert() {
        scenario.initial_discovery(&topo).map(no_events)
    } else {
        match spec.change {
            ChangeMode::Initial => {
                let bench = Bench::start(&topo, &scenario, &[]);
                let active = bench.active_nodes();
                Some((bench.last_run(), active, bench.fabric.events_processed()))
            }
            ChangeMode::Remove => Some(no_events(change_experiment(&topo, &scenario, true))),
            ChangeMode::Add => Some(no_events(change_experiment(&topo, &scenario, false))),
            ChangeMode::Alternate => Some(no_events(change_experiment(
                &topo,
                &scenario,
                cell.rep.is_multiple_of(2),
            ))),
        }
    };
    match outcome {
        Some((run, active, sim_events)) => CellResult {
            topology: cell.topology.name(),
            total_devices: cell.topology.total_devices(),
            algorithm: cell.algorithm.name(),
            warm: cell.warm,
            rep: cell.rep,
            seed: cell.seed,
            completed: true,
            active_nodes: active,
            discovery_time_s: run.discovery_time().as_secs_f64(),
            devices_found: run.devices_found,
            links_found: run.links_found,
            requests: run.requests_sent,
            responses: run.responses_received,
            timeouts: run.timeouts,
            retries: run.retries,
            abandoned: run.abandoned,
            peak_outstanding: run.peak_outstanding,
            sim_events,
            bytes_sent: run.bytes_sent,
            bytes_received: run.bytes_received,
            mean_fm_processing_us: run.mean_fm_processing().as_micros_f64(),
            fm_utilization: run.fm_utilization(),
            probes_verified: run.probes_verified,
            verify_mismatches: run.verify_mismatches,
            warm_fallback: run.warm_fallback,
            fms: 1,
            boundary_conflicts: 0,
            failovers: 0,
            merge_time_s: 0.0,
        },
        None => CellResult {
            topology: cell.topology.name(),
            total_devices: cell.topology.total_devices(),
            algorithm: cell.algorithm.name(),
            warm: cell.warm,
            rep: cell.rep,
            seed: cell.seed,
            completed: false,
            active_nodes: 0,
            discovery_time_s: 0.0,
            devices_found: 0,
            links_found: 0,
            requests: 0,
            responses: 0,
            timeouts: 0,
            retries: 0,
            abandoned: 0,
            peak_outstanding: 0,
            sim_events: 0,
            bytes_sent: 0,
            bytes_received: 0,
            mean_fm_processing_us: 0.0,
            fm_utilization: 0.0,
            probes_verified: 0,
            verify_mismatches: 0,
            warm_fallback: false,
            fms: 1,
            boundary_conflicts: 0,
            failovers: 0,
            merge_time_s: 0.0,
        },
    }
}

/// Executes one sharded (multi-manager) cell: an election-based
/// distributed discovery whose headline time is the interval from the
/// election kick-off to the certified merged database. The request and
/// byte columns describe the elected primary's own exploration; the
/// device/link counts describe the merged view.
fn run_sharded_cell(cell: &Cell, topo: &asi_topo::Topology, scenario: &Scenario) -> CellResult {
    let (fabric, primary, out) = sharded_discovery(topo, cell.fms, scenario);
    let active = fabric.active_reachable(primary).len();
    let run = fabric
        .agent_as::<asi_core::FmAgent>(primary)
        .and_then(|a| a.last_run())
        .cloned();
    let run = run.expect("sharded primary recorded a run");
    CellResult {
        topology: cell.topology.name(),
        total_devices: cell.topology.total_devices(),
        algorithm: cell.algorithm.name(),
        warm: cell.warm,
        rep: cell.rep,
        seed: cell.seed,
        completed: true,
        active_nodes: active,
        discovery_time_s: out.merged_time.as_secs_f64(),
        devices_found: out.devices,
        links_found: out.links,
        requests: run.requests_sent,
        responses: run.responses_received,
        timeouts: run.timeouts,
        retries: run.retries,
        abandoned: run.abandoned,
        peak_outstanding: run.peak_outstanding,
        sim_events: fabric.events_processed(),
        bytes_sent: run.bytes_sent,
        bytes_received: run.bytes_received,
        mean_fm_processing_us: run.mean_fm_processing().as_micros_f64(),
        fm_utilization: run.fm_utilization(),
        probes_verified: run.probes_verified,
        verify_mismatches: run.verify_mismatches,
        warm_fallback: run.warm_fallback,
        fms: cell.fms,
        boundary_conflicts: out.boundary_conflicts,
        failovers: out.failovers,
        merge_time_s: out.merge_time.as_secs_f64(),
    }
}

/// Runs the whole grid on `jobs` worker threads (clamped to at least 1
/// and at most the cell count) and returns the results in canonical
/// order. The worker pool pulls cell indices from a shared atomic
/// counter; because every cell is self-seeding and results are merged
/// by index, the returned [`SweepResult`] — and any JSON/CSV rendered
/// from it — is byte-identical for every `jobs` value.
pub fn run(spec: &SweepSpec, jobs: usize) -> SweepResult {
    let cells = spec.cells();
    let jobs = jobs.max(1).min(cells.len().max(1));
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<CellResult>> = Vec::new();
    results.resize_with(cells.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for _ in 0..jobs {
            let next = &next;
            let cells = &cells;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(usize, CellResult)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(idx) else { break };
                    mine.push((idx, run_cell(spec, cell)));
                }
                mine
            }));
        }
        for handle in handles {
            for (idx, result) in handle.join().expect("sweep worker panicked") {
                results[idx] = Some(result);
            }
        }
    });
    let cells: Vec<CellResult> = results
        .into_iter()
        .map(|r| r.expect("every cell executed"))
        .collect();
    let aggregates = aggregate(spec, &cells);
    SweepResult {
        name: spec.name.clone(),
        change: spec.change.name(),
        cells,
        aggregates,
    }
}

/// Folds cell results into per-(topology, algorithm) aggregates, in
/// canonical order. Pure function of the cell list, so it cannot
/// reintroduce thread-count dependence.
fn aggregate(spec: &SweepSpec, cells: &[CellResult]) -> Vec<Aggregate> {
    let mut out = Vec::new();
    for &algorithm in &spec.algorithms {
        for &topology in &spec.topologies {
            for &warm in spec.warm_modes() {
                for &fms in &spec.fm_counts {
                    let name = topology.name();
                    let mut stats = OnlineStats::new();
                    let mut requests = 0u64;
                    let mut timeouts = 0u64;
                    let mut retries = 0u64;
                    let mut completed = 0usize;
                    let mut full_topology = 0usize;
                    for c in cells {
                        if c.algorithm == algorithm.name()
                            && c.topology == name
                            && c.warm == warm
                            && c.fms == fms
                            && c.completed
                        {
                            stats.push(c.discovery_time_s);
                            requests += c.requests;
                            timeouts += c.timeouts;
                            retries += c.retries;
                            completed += 1;
                            if c.devices_found == c.total_devices {
                                full_topology += 1;
                            }
                        }
                    }
                    out.push(Aggregate {
                        topology: name,
                        total_devices: topology.total_devices(),
                        algorithm: algorithm.name(),
                        warm,
                        fms,
                        completed,
                        mean_time_s: if completed == 0 { 0.0 } else { stats.mean() },
                        min_time_s: if completed == 0 { 0.0 } else { stats.min() },
                        max_time_s: if completed == 0 { 0.0 } else { stats.max() },
                        mean_requests: if completed == 0 {
                            0.0
                        } else {
                            requests as f64 / completed as f64
                        },
                        mean_timeouts: if completed == 0 {
                            0.0
                        } else {
                            timeouts as f64 / completed as f64
                        },
                        mean_retries: if completed == 0 {
                            0.0
                        } else {
                            retries as f64 / completed as f64
                        },
                        full_topology,
                    });
                }
            }
        }
    }
    out
}

/// Escapes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes, with
/// embedded quotes doubled. Anything else passes through untouched.
pub fn csv_field(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CellResult {
    /// JSON object for one cell.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("topology", self.topology.as_str())
            .with("total_devices", self.total_devices)
            .with("algorithm", self.algorithm)
            .with("warm", self.warm)
            .with("rep", self.rep)
            .with("seed", self.seed)
            .with("completed", self.completed)
            .with("active_nodes", self.active_nodes)
            .with("discovery_time_s", self.discovery_time_s)
            .with("devices_found", self.devices_found)
            .with("links_found", self.links_found)
            .with("requests", self.requests)
            .with("responses", self.responses)
            .with("timeouts", self.timeouts)
            .with("retries", self.retries)
            .with("abandoned", self.abandoned)
            .with("peak_outstanding", self.peak_outstanding)
            .with("sim_events", self.sim_events)
            .with("bytes_sent", self.bytes_sent)
            .with("bytes_received", self.bytes_received)
            .with("mean_fm_processing_us", self.mean_fm_processing_us)
            .with("fm_utilization", self.fm_utilization)
            .with("probes_verified", self.probes_verified)
            .with("verify_mismatches", self.verify_mismatches)
            .with("warm_fallback", self.warm_fallback)
            .with("fms", self.fms)
            .with("boundary_conflicts", self.boundary_conflicts)
            .with("failovers", self.failovers)
            .with("merge_time_s", self.merge_time_s)
    }
}

impl Aggregate {
    /// JSON object for one aggregate row.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("topology", self.topology.as_str())
            .with("total_devices", self.total_devices)
            .with("algorithm", self.algorithm)
            .with("warm", self.warm)
            .with("fms", self.fms)
            .with("completed", self.completed)
            .with("mean_time_s", self.mean_time_s)
            .with("min_time_s", self.min_time_s)
            .with("max_time_s", self.max_time_s)
            .with("mean_requests", self.mean_requests)
            .with("mean_timeouts", self.mean_timeouts)
            .with("mean_retries", self.mean_retries)
            .with("full_topology", self.full_topology)
    }
}

impl SweepResult {
    /// The whole sweep as one JSON document. Deliberately excludes
    /// anything execution-dependent (thread count, wall-clock time) so
    /// two runs of the same spec compare byte-for-byte.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("sweep", self.name.as_str())
            .with("change", self.change)
            .with(
                "aggregates",
                Json::Arr(self.aggregates.iter().map(Aggregate::to_json).collect()),
            )
            .with(
                "cells",
                Json::Arr(self.cells.iter().map(CellResult::to_json).collect()),
            )
    }

    /// Cell results as CSV (one row per cell, canonical order). Fields
    /// containing commas, quotes or newlines are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "topology,total_devices,algorithm,warm,rep,seed,completed,active_nodes,\
             discovery_time_s,devices_found,links_found,requests,responses,\
             timeouts,retries,abandoned,peak_outstanding,sim_events,\
             bytes_sent,bytes_received,\
             mean_fm_processing_us,fm_utilization,probes_verified,\
             verify_mismatches,warm_fallback,fms,boundary_conflicts,\
             failovers,merge_time_s\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                csv_field(&c.topology),
                c.total_devices,
                csv_field(c.algorithm),
                c.warm,
                c.rep,
                c.seed,
                c.completed,
                c.active_nodes,
                c.discovery_time_s,
                c.devices_found,
                c.links_found,
                c.requests,
                c.responses,
                c.timeouts,
                c.retries,
                c.abandoned,
                c.peak_outstanding,
                c.sim_events,
                c.bytes_sent,
                c.bytes_received,
                c.mean_fm_processing_us,
                c.fm_utilization,
                c.probes_verified,
                c.verify_mismatches,
                c.warm_fallback,
                c.fms,
                c.boundary_conflicts,
                c.failovers,
                c.merge_time_s
            ));
        }
        out
    }

    /// Aggregates as a human-readable text table.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "sweep {} ({} cells, change={})\n{:<16} {:<16} {:<5} {:>3} {:>5} {:>14} {:>14} {:>12}\n",
            self.name,
            self.cells.len(),
            self.change,
            "topology",
            "algorithm",
            "mode",
            "fms",
            "reps",
            "mean",
            "max",
            "requests"
        );
        for a in &self.aggregates {
            out.push_str(&format!(
                "{:<16} {:<16} {:<5} {:>3} {:>5} {:>12.3}ms {:>12.3}ms {:>12.1}\n",
                a.topology,
                a.algorithm,
                if a.warm { "warm" } else { "cold" },
                a.fms,
                a.completed,
                a.mean_time_s * 1e3,
                a.max_time_s * 1e3,
                a.mean_requests
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("tiny", vec![Table1::Mesh(3)]);
        spec.algorithms = vec![Algorithm::Parallel];
        spec.reps = 2;
        spec.change = ChangeMode::Alternate;
        spec.salt_by_switches = true;
        spec.seed_base = 0xF16_6000;
        spec
    }

    #[test]
    fn cells_enumerate_canonical_order_with_fig6_seeds() {
        let spec = SweepSpec::fig6(true, 1.0, 1.0);
        let cells = spec.cells();
        assert_eq!(cells.len(), 3 * Table1::quick().len() * 2);
        // First block: first algorithm, first topology, reps in order.
        assert_eq!(cells[0].algorithm, Algorithm::SerialPacket);
        assert_eq!(cells[0].rep, 0);
        assert_eq!(cells[1].rep, 1);
        // Fig. 6 seed formula preserved exactly.
        let topo = Table1::quick()[0];
        assert_eq!(cells[0].seed, 0xF16_6000 + topo.switches() as u64);
        assert_eq!(cells[1].seed, 0xF16_6000 + 7919 + topo.switches() as u64);
    }

    #[test]
    fn sweep_runs_and_aggregates() {
        let result = run(&tiny_spec(), 2);
        assert_eq!(result.cells.len(), 2);
        assert!(result.cells.iter().all(|c| c.completed));
        assert_eq!(result.aggregates.len(), 1);
        let agg = &result.aggregates[0];
        assert_eq!(agg.completed, 2);
        assert!(agg.mean_time_s > 0.0);
        assert!(agg.min_time_s <= agg.max_time_s);
    }

    #[test]
    fn json_aggregates_identical_for_one_and_many_jobs() {
        // The tentpole determinism guarantee, at unit scope (the CLI
        // integration test covers the full fig5/fig6 grids).
        let spec = tiny_spec();
        let sequential = run(&spec, 1).to_json().to_string_pretty();
        let parallel = run(&spec, 8).to_json().to_string_pretty();
        assert_eq!(sequential, parallel);
        let csv_seq = run(&spec, 1).to_csv();
        let csv_par = run(&spec, 8).to_csv();
        assert_eq!(csv_seq, csv_par);
    }

    #[test]
    fn fault_sweep_is_deterministic_across_jobs_and_converges() {
        // Same (seed, FaultPlan), different worker counts: byte-equal
        // output. One Table 1 topology keeps the unit test cheap; the
        // CLI integration test covers the whole quick grid.
        let mut spec = SweepSpec::faults(true);
        spec.topologies = vec![Table1::Mesh(3)];
        let sequential = run(&spec, 1);
        let parallel = run(&spec, 4);
        assert_eq!(
            sequential.to_json().to_string_pretty(),
            parallel.to_json().to_string_pretty()
        );
        assert_eq!(sequential.to_csv(), parallel.to_csv());
        // Convergence under the grid's bursty loss + exponential
        // backoff: full topology everywhere, with real degradation.
        for agg in &sequential.aggregates {
            assert_eq!(agg.full_topology, agg.completed, "{}", agg.algorithm);
            assert!(agg.mean_retries > 0.0, "{}", agg.algorithm);
        }
    }

    #[test]
    fn initial_cells_report_peak_occupancy_and_events() {
        let mut spec = SweepSpec::new("peak", vec![Table1::Mesh(3)]);
        spec.algorithms = vec![Algorithm::SerialPacket, Algorithm::Parallel];
        let result = run(&spec, 1);
        let serial = &result.cells[0];
        let parallel = &result.cells[1];
        assert_eq!(serial.peak_outstanding, 1, "serial keeps one in flight");
        assert!(
            parallel.peak_outstanding > 1,
            "parallel peak {}",
            parallel.peak_outstanding
        );
        assert!(serial.sim_events > 0);
        assert!(parallel.sim_events > 0);
    }

    #[test]
    fn scale_grid_is_parallel_only_over_the_scale_set() {
        let spec = SweepSpec::scale(false);
        assert_eq!(spec.algorithms, vec![Algorithm::Parallel]);
        assert_eq!(spec.topologies, Table1::scale());
        assert_eq!(spec.fm_counts, vec![1, 2, 4]);
        assert_eq!(spec.cells().len(), Table1::scale().len() * 3);
        let quick = SweepSpec::scale(true);
        assert_eq!(quick.cells().len(), 9);
        for t in &quick.topologies {
            assert!(
                Table1::scale().contains(t) || *t == Table1::Irregular(256),
                "{}",
                t.name()
            );
        }
    }

    #[test]
    fn fm_axis_shards_speed_up_and_stay_deterministic() {
        let mut spec = SweepSpec::new("fm-axis", vec![Table1::Mesh(8)]);
        spec.algorithms = vec![Algorithm::Parallel];
        spec.fm_counts = vec![1, 2];
        let sequential = run(&spec, 1);
        assert_eq!(sequential.cells.len(), 2);
        let (solo, duo) = (&sequential.cells[0], &sequential.cells[1]);
        assert_eq!(solo.fms, 1);
        assert_eq!(duo.fms, 2);
        // Both find the whole fabric; the sharded cell carries the
        // distributed columns.
        assert_eq!(solo.devices_found, solo.total_devices);
        assert_eq!(duo.devices_found, duo.total_devices);
        assert_eq!(solo.merge_time_s, 0.0);
        assert!(duo.merge_time_s > 0.0, "primary merged a report stream");
        assert_eq!(duo.failovers, 0);
        // The speedup gate: two managers beat one on a 128-device mesh.
        assert!(
            duo.discovery_time_s < solo.discovery_time_s,
            "sharded {} vs solo {}",
            duo.discovery_time_s,
            solo.discovery_time_s
        );
        // One aggregate row per manager count, byte-identical at any
        // worker count.
        assert_eq!(sequential.aggregates.len(), 2);
        assert_eq!(sequential.aggregates[1].fms, 2);
        assert_eq!(sequential.aggregates[1].full_topology, 1);
        let parallel = run(&spec, 4);
        assert_eq!(
            sequential.to_json().to_string_pretty(),
            parallel.to_json().to_string_pretty()
        );
        assert_eq!(sequential.to_csv(), parallel.to_csv());
    }

    #[test]
    fn csv_has_one_row_per_cell_plus_header() {
        let result = run(&tiny_spec(), 1);
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + result.cells.len());
        assert!(csv.starts_with("topology,"));
    }

    /// Minimal RFC 4180 row parser, for the quoting round-trip test.
    fn parse_csv_row(row: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = row.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if cur.is_empty() => quoted = true,
                ',' if !quoted => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
        fields.push(cur);
        fields
    }

    #[test]
    fn csv_fields_with_metacharacters_round_trip() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        let nasty = "mesh, 3x3 \"wide\"";
        let mut result = run(&tiny_spec(), 1);
        result.cells[0].topology = nasty.to_string();
        let csv = result.to_csv();
        let row = csv.lines().nth(1).unwrap();
        let fields = parse_csv_row(row);
        assert_eq!(fields[0], nasty, "row: {row}");
        // Every row still has exactly one field per header column.
        let columns = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(parse_csv_row(line).len(), columns, "{line}");
        }
    }

    #[test]
    fn warm_axis_doubles_the_grid_and_beats_cold() {
        let mut spec = SweepSpec::warmstart(true);
        spec.topologies = vec![Table1::Mesh(3)];
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert!(!cells[0].warm && cells[1].warm, "cold twin first");
        assert_eq!(cells[0].seed, cells[1].seed, "twins share the seed");
        let result = run(&spec, 2);
        let cold = &result.cells[0];
        let warm = &result.cells[1];
        assert!(!cold.warm && warm.warm);
        assert_eq!(cold.probes_verified, 0);
        assert_eq!(warm.probes_verified, warm.total_devices as u64 - 1);
        assert_eq!(warm.verify_mismatches, 0);
        assert!(!warm.warm_fallback);
        assert_eq!(warm.devices_found, cold.devices_found);
        assert!(
            warm.discovery_time_s < cold.discovery_time_s,
            "warm {} vs cold {}",
            warm.discovery_time_s,
            cold.discovery_time_s
        );
        // One aggregate row per mode.
        assert_eq!(result.aggregates.len(), 2);
        assert!(!result.aggregates[0].warm && result.aggregates[1].warm);
    }

    #[test]
    fn warm_sweep_is_byte_identical_across_jobs() {
        let mut spec = SweepSpec::warmstart(true);
        spec.topologies = vec![Table1::Mesh(3)];
        let sequential = run(&spec, 1);
        let parallel = run(&spec, 4);
        assert_eq!(
            sequential.to_json().to_string_pretty(),
            parallel.to_json().to_string_pretty()
        );
        assert_eq!(sequential.to_csv(), parallel.to_csv());
    }

    #[test]
    fn identical_runs_render_byte_identical_reports() {
        // Determinism regression: two fresh executions of the same spec
        // (not just two renderings of one result) must agree on every
        // byte of JSON, CSV and text output.
        let spec = tiny_spec();
        let a = run(&spec, 2);
        let b = run(&spec, 2);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_text(), b.to_text());
    }
}
