//! Output containers for reproduced tables and figures, with markdown and
//! CSV rendering — plus the discovery-trace collector and exporters
//! (ring buffer, JSON Lines, summaries) for the `asi_sim::trace` layer.

use crate::json::{self, Json};
use asi_sim::{SimDuration, SimTime, TraceEvent, TraceRecord, TraceSink};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::path::Path;
use std::rc::Rc;

/// One plotted series (a line in a paper figure).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label ("Serial Packet", …).
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A reproduced figure: axes plus one or more series.
#[derive(Clone, Debug)]
pub struct Chart {
    /// Identifier ("fig6a").
    pub id: String,
    /// Title as the paper captions it.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Chart {
        Chart {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Renders a compact markdown table: one row per x, one column per
    /// series (x values unioned across series).
    pub fn to_markdown(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "| {} |", trim_float(x));
            for s in &self.series {
                // Average all points of this series at this x (scatter
                // figures may repeat x values).
                let vals: Vec<f64> = s
                    .points
                    .iter()
                    .filter(|&&(px, _)| px == x)
                    .map(|&(_, y)| y)
                    .collect();
                if vals.is_empty() {
                    let _ = write!(out, " |");
                } else {
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    let _ = write!(out, " {} |", trim_float(mean));
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "\n_y: {}_\n", self.y_label);
        out
    }

    /// Renders long-format CSV: `series,x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", s.name, x, y);
            }
        }
        out
    }

    /// Writes `<dir>/<id>.csv` and `<dir>/<id>.md`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        std::fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        Ok(())
    }
}

/// A reproduced table.
#[derive(Clone, Debug)]
pub struct TableOut {
    /// Identifier ("table1").
    pub id: String,
    /// Caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl TableOut {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> TableOut {
        TableOut {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv` and `<dir>/<id>.md`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        std::fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        Ok(())
    }
}

impl Chart {
    /// Renders a rough ASCII plot (log-friendly): one glyph per series,
    /// x binned across the terminal width. Intended for eyeballing the
    /// *shape* of a reproduced figure in CI logs.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        let width = width.clamp(16, 200);
        let height = height.clamp(4, 60);
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if pts.is_empty() {
            return format!(
                "{} — (no data)
",
                self.id
            );
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 <= x0 {
            x1 = x0 + 1.0;
        }
        if y1 <= y0 {
            y1 = y0 + 1.0;
        }
        let glyphs = ['o', '+', 'x', '*', '#', '@'];
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let g = glyphs[si % glyphs.len()];
            for &(x, y) in &s.points {
                let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
                let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = g;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", glyphs[si % glyphs.len()], s.name);
        }
        let _ = writeln!(out, "y: {} in [{:.3e}, {:.3e}]", self.y_label, y0, y1);
        for row in grid {
            let _ = writeln!(out, "|{}", row.into_iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "+{}\n x: {} in [{}, {}]",
            "-".repeat(width),
            self.x_label,
            trim_float(x0),
            trim_float(x1)
        );
        out
    }
}

// ---------------------------------------------------------------------
// Discovery-trace collection and export
// ---------------------------------------------------------------------

/// A bounded, in-memory [`TraceSink`]: keeps the most recent `capacity`
/// records and counts (rather than stores) anything older it had to
/// evict, so a runaway trace can never exhaust memory.
pub struct RingCollector {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl RingCollector {
    /// An empty collector keeping at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> RingCollector {
        let capacity = capacity.max(1);
        RingCollector {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// A shared collector ready for `asi_sim::TraceHandle::to`; keep a
    /// clone of the `Rc` to read the records back after the run.
    pub fn shared(capacity: usize) -> Rc<RefCell<RingCollector>> {
        Rc::new(RefCell::new(RingCollector::new(capacity)))
    }

    /// The held records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains and returns the held records, oldest first.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        self.records.drain(..).collect()
    }
}

impl TraceSink for RingCollector {
    fn record(&mut self, record: TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// Renders one trace record as a JSON object: `t_ps` (picosecond
/// timestamp), `event` (the kind tag), then the payload fields. The
/// schema is documented in `docs/TRACE_FORMAT.md`.
pub fn trace_record_to_json(record: &TraceRecord) -> Json {
    let obj = Json::object()
        .with("t_ps", record.time.as_ps())
        .with("event", record.event.kind());
    match &record.event {
        TraceEvent::RunStarted { algorithm, trigger } => {
            obj.with("algorithm", *algorithm).with("trigger", *trigger)
        }
        TraceEvent::RunFinished {
            devices_found,
            links_found,
            requests_sent,
            timeouts,
        } => obj
            .with("devices_found", *devices_found)
            .with("links_found", *links_found)
            .with("requests_sent", *requests_sent)
            .with("timeouts", *timeouts),
        TraceEvent::RequestInjected { req_id, write } => {
            obj.with("req_id", *req_id).with("write", *write)
        }
        TraceEvent::RequestCompleted { req_id, ok } => obj.with("req_id", *req_id).with("ok", *ok),
        TraceEvent::RequestTimedOut { req_id } => obj.with("req_id", *req_id),
        TraceEvent::Pi5Emitted { dsn, port, up } | TraceEvent::Pi5Received { dsn, port, up } => {
            obj.with("dsn", *dsn).with("port", *port).with("up", *up)
        }
        TraceEvent::DeviceDiscovered { dsn, switch, ports } => obj
            .with("dsn", *dsn)
            .with("switch", *switch)
            .with("ports", *ports),
        TraceEvent::PendingTableSize { size } => obj.with("size", *size),
        TraceEvent::FmBusy { busy } => obj.with("busy_ps", busy.as_ps()),
        TraceEvent::FmIdle { idle } => obj.with("idle_ps", idle.as_ps()),
        TraceEvent::DeviceActivated { device } | TraceEvent::DeviceDeactivated { device } => {
            obj.with("device", *device)
        }
        TraceEvent::QueueSample { depth, processed } => {
            obj.with("depth", *depth).with("processed", *processed)
        }
        TraceEvent::FaultLinkDown { device, port }
        | TraceEvent::FaultLinkUp { device, port }
        | TraceEvent::FaultPacketLost { device, port } => {
            obj.with("device", *device).with("port", *port)
        }
        TraceEvent::FaultDeviceHang { device }
        | TraceEvent::FaultDeviceSlow { device }
        | TraceEvent::FaultCompletionCorrupted { device }
        | TraceEvent::FaultCompletionDuplicated { device } => obj.with("device", *device),
        TraceEvent::RequestAbandoned { req_id } => obj.with("req_id", *req_id),
        TraceEvent::SnapshotLoaded { devices, links }
        | TraceEvent::SnapshotSaved { devices, links } => {
            obj.with("devices", *devices).with("links", *links)
        }
        TraceEvent::WarmVerified { dsn } | TraceEvent::VerifyMismatch { dsn } => {
            obj.with("dsn", *dsn)
        }
        TraceEvent::WarmFallback {
            mismatches,
            threshold,
        } => obj
            .with("mismatches", *mismatches)
            .with("threshold", *threshold),
        TraceEvent::FmClaim { dsn, priority } => obj.with("dsn", *dsn).with("priority", *priority),
        TraceEvent::FmYield { dsn, to } => obj.with("dsn", *dsn).with("to", *to),
        TraceEvent::FmElected { primary, fms } => obj.with("primary", *primary).with("fms", *fms),
        TraceEvent::FmFailover { dsn, misses } => obj.with("dsn", *dsn).with("misses", *misses),
        TraceEvent::MergeComplete {
            devices,
            links,
            reports,
        } => obj
            .with("devices", *devices)
            .with("links", *links)
            .with("reports", *reports),
    }
}

/// Interns an algorithm name back to its `'static` spelling.
fn static_algorithm(name: &str) -> Option<&'static str> {
    ["Serial Packet", "Serial Device", "Parallel"]
        .into_iter()
        .find(|a| *a == name)
}

/// Interns a run-trigger tag back to its `'static` spelling.
fn static_trigger(tag: &str) -> Option<&'static str> {
    ["initial", "change", "partial", "failover", "warm-start"]
        .into_iter()
        .find(|t| *t == tag)
}

/// Parses one object produced by [`trace_record_to_json`] back into a
/// record. Returns `None` on unknown kinds, unknown algorithm/trigger
/// spellings, or missing fields.
pub fn trace_record_from_json(json: &Json) -> Option<TraceRecord> {
    let time = SimTime::from_ps(json.get("t_ps").as_u64()?);
    let req_id = || json.get("req_id").as_u64().map(|v| v as u32);
    let event = match json.get("event").as_str()? {
        "run-started" => TraceEvent::RunStarted {
            algorithm: static_algorithm(json.get("algorithm").as_str()?)?,
            trigger: static_trigger(json.get("trigger").as_str()?)?,
        },
        "run-finished" => TraceEvent::RunFinished {
            devices_found: json.get("devices_found").as_u64()?,
            links_found: json.get("links_found").as_u64()?,
            requests_sent: json.get("requests_sent").as_u64()?,
            timeouts: json.get("timeouts").as_u64()?,
        },
        "request-injected" => TraceEvent::RequestInjected {
            req_id: req_id()?,
            write: json.get("write").as_bool()?,
        },
        "request-completed" => TraceEvent::RequestCompleted {
            req_id: req_id()?,
            ok: json.get("ok").as_bool()?,
        },
        "request-timed-out" => TraceEvent::RequestTimedOut { req_id: req_id()? },
        kind @ ("pi5-emitted" | "pi5-received") => {
            let dsn = json.get("dsn").as_u64()?;
            let port = json.get("port").as_u64()? as u16;
            let up = json.get("up").as_bool()?;
            if kind == "pi5-emitted" {
                TraceEvent::Pi5Emitted { dsn, port, up }
            } else {
                TraceEvent::Pi5Received { dsn, port, up }
            }
        }
        "device-discovered" => TraceEvent::DeviceDiscovered {
            dsn: json.get("dsn").as_u64()?,
            switch: json.get("switch").as_bool()?,
            ports: json.get("ports").as_u64()? as u16,
        },
        "pending-table-size" => TraceEvent::PendingTableSize {
            size: json.get("size").as_u64()? as u32,
        },
        "fm-busy" => TraceEvent::FmBusy {
            busy: SimDuration::from_ps(json.get("busy_ps").as_u64()?),
        },
        "fm-idle" => TraceEvent::FmIdle {
            idle: SimDuration::from_ps(json.get("idle_ps").as_u64()?),
        },
        kind @ ("device-activated" | "device-deactivated") => {
            let device = json.get("device").as_u64()? as u32;
            if kind == "device-activated" {
                TraceEvent::DeviceActivated { device }
            } else {
                TraceEvent::DeviceDeactivated { device }
            }
        }
        "queue-sample" => TraceEvent::QueueSample {
            depth: json.get("depth").as_u64()?,
            processed: json.get("processed").as_u64()?,
        },
        kind @ ("fault-link-down" | "fault-link-up" | "fault-packet-lost") => {
            let device = json.get("device").as_u64()? as u32;
            let port = json.get("port").as_u64()? as u16;
            match kind {
                "fault-link-down" => TraceEvent::FaultLinkDown { device, port },
                "fault-link-up" => TraceEvent::FaultLinkUp { device, port },
                _ => TraceEvent::FaultPacketLost { device, port },
            }
        }
        kind @ ("fault-device-hang"
        | "fault-device-slow"
        | "fault-completion-corrupted"
        | "fault-completion-duplicated") => {
            let device = json.get("device").as_u64()? as u32;
            match kind {
                "fault-device-hang" => TraceEvent::FaultDeviceHang { device },
                "fault-device-slow" => TraceEvent::FaultDeviceSlow { device },
                "fault-completion-corrupted" => TraceEvent::FaultCompletionCorrupted { device },
                _ => TraceEvent::FaultCompletionDuplicated { device },
            }
        }
        "request-abandoned" => TraceEvent::RequestAbandoned { req_id: req_id()? },
        kind @ ("snapshot-loaded" | "snapshot-saved") => {
            let devices = json.get("devices").as_u64()?;
            let links = json.get("links").as_u64()?;
            if kind == "snapshot-loaded" {
                TraceEvent::SnapshotLoaded { devices, links }
            } else {
                TraceEvent::SnapshotSaved { devices, links }
            }
        }
        kind @ ("warm-verified" | "verify-mismatch") => {
            let dsn = json.get("dsn").as_u64()?;
            if kind == "warm-verified" {
                TraceEvent::WarmVerified { dsn }
            } else {
                TraceEvent::VerifyMismatch { dsn }
            }
        }
        "warm-fallback" => TraceEvent::WarmFallback {
            mismatches: json.get("mismatches").as_u64()?,
            threshold: json.get("threshold").as_u64()?,
        },
        "fm-claim" => TraceEvent::FmClaim {
            dsn: json.get("dsn").as_u64()?,
            priority: json.get("priority").as_u64()? as u8,
        },
        "fm-yield" => TraceEvent::FmYield {
            dsn: json.get("dsn").as_u64()?,
            to: json.get("to").as_u64()?,
        },
        "fm-elected" => TraceEvent::FmElected {
            primary: json.get("primary").as_u64()?,
            fms: json.get("fms").as_u64()? as u32,
        },
        "fm-failover" => TraceEvent::FmFailover {
            dsn: json.get("dsn").as_u64()?,
            misses: json.get("misses").as_u64()? as u32,
        },
        "merge-complete" => TraceEvent::MergeComplete {
            devices: json.get("devices").as_u64()?,
            links: json.get("links").as_u64()?,
            reports: json.get("reports").as_u64()? as u32,
        },
        _ => return None,
    };
    Some(TraceRecord { time, event })
}

/// Renders records as JSON Lines: one compact object per line.
pub fn trace_to_jsonl<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&trace_record_to_json(r).to_string_compact());
        out.push('\n');
    }
    out
}

/// Writes a JSONL trace dump to `path`.
pub fn save_trace_jsonl<'a>(
    path: &Path,
    records: impl IntoIterator<Item = &'a TraceRecord>,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, trace_to_jsonl(records))
}

/// Parses a JSONL trace dump (the inverse of [`trace_to_jsonl`]). Blank
/// lines are skipped; a malformed line fails with its 1-based number.
pub fn trace_from_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let record = trace_record_from_json(&value)
            .ok_or_else(|| format!("line {}: unrecognized trace record", i + 1))?;
        out.push(record);
    }
    Ok(out)
}

/// Aggregate view of a trace: per-kind counts plus the derived totals a
/// quick look needs (peak pending table, FM busy/idle time, time span).
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Record count per kind tag.
    pub counts: BTreeMap<&'static str, u64>,
    /// Timestamp of the first record.
    pub first: Option<SimTime>,
    /// Timestamp of the last record.
    pub last: Option<SimTime>,
    /// Peak pending-table size observed.
    pub max_pending: u32,
    /// Total FM busy time across `fm-busy` spans.
    pub fm_busy: SimDuration,
    /// Total FM idle time across `fm-idle` spans.
    pub fm_idle: SimDuration,
}

impl TraceSummary {
    /// Builds the summary of `records`.
    pub fn of<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in records {
            *s.counts.entry(r.event.kind()).or_insert(0) += 1;
            if s.first.is_none() {
                s.first = Some(r.time);
            }
            s.last = Some(r.time);
            match &r.event {
                TraceEvent::PendingTableSize { size } => {
                    s.max_pending = s.max_pending.max(*size);
                }
                TraceEvent::FmBusy { busy } => s.fm_busy += *busy,
                TraceEvent::FmIdle { idle } => s.fm_idle += *idle,
                _ => {}
            }
        }
        s
    }

    /// The count recorded for one kind tag (0 if absent).
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// Renders a markdown table of counts plus the derived totals.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("| event | count |\n|---|---|\n");
        for (kind, n) in &self.counts {
            let _ = writeln!(out, "| {kind} | {n} |");
        }
        if let (Some(first), Some(last)) = (self.first, self.last) {
            let _ = writeln!(
                out,
                "\nspan: {:.3} ms – {:.3} ms, peak pending {}, FM busy {:.3} ms / idle {:.3} ms",
                first.as_millis_f64(),
                last.as_millis_f64(),
                self.max_pending,
                self.fm_busy.as_millis_f64(),
                self.fm_idle.as_millis_f64(),
            );
        }
        out
    }
}

/// The pending-table occupancy step curve of a trace: x = simulated time
/// in µs, y = requests in flight. This is the measured counterpart of the
/// paper's §3 scheduling table — flat at 1 for Serial Packet, sawtooth
/// for Serial Device, bursty for Parallel.
pub fn pending_occupancy<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> Series {
    let mut series = Series::new("pending requests");
    for r in records {
        if let TraceEvent::PendingTableSize { size } = r.event {
            series.push(r.time.as_micros_f64(), f64::from(size));
        }
    }
    series
}

/// Formats a float without trailing noise.
pub fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_markdown_unions_x_values() {
        let mut c = Chart::new("figX", "demo", "n", "t");
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(2.0, 5.0);
        c.series.push(a);
        c.series.push(b);
        let md = c.to_markdown();
        assert!(md.contains("| n | A | B |"));
        assert!(md.contains("| 1 | 10 | |"));
        assert!(md.contains("| 2 | 20 | 5 |"));
    }

    #[test]
    fn chart_markdown_averages_repeated_x() {
        let mut c = Chart::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 10.0);
        s.push(1.0, 20.0);
        c.series.push(s);
        assert!(c.to_markdown().contains("| 1 | 15 |"));
    }

    #[test]
    fn csv_is_long_format() {
        let mut c = Chart::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.5, 2.5);
        c.series.push(s);
        assert_eq!(c.to_csv(), "series,x,y\nS,1.5,2.5\n");
    }

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = TableOut::new("t1", "caption", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert!(t.to_markdown().contains("| a | b |"));
        assert!(t.to_csv().contains("a,b\n1,2\n"));
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let mut c = Chart::new("f", "demo", "n", "t");
        let mut a = Series::new("A");
        let mut b = Series::new("B");
        for i in 0..10 {
            a.push(i as f64, i as f64);
            b.push(i as f64, (10 - i) as f64);
        }
        c.series.push(a);
        c.series.push(b);
        let art = c.to_ascii(40, 10);
        assert!(art.contains('o') && art.contains('+'), "{art}");
        assert!(art.contains("x: n in [0, 9]"));
        assert_eq!(art.lines().filter(|l| l.starts_with('|')).count(), 10);
    }

    #[test]
    fn ascii_plot_empty_chart() {
        let c = Chart::new("f", "demo", "n", "t");
        assert!(c.to_ascii(40, 10).contains("no data"));
    }

    #[test]
    fn ascii_plot_degenerate_ranges() {
        let mut c = Chart::new("f", "demo", "n", "t");
        let mut a = Series::new("A");
        a.push(5.0, 7.0); // single point: zero-width ranges
        c.series.push(a);
        let art = c.to_ascii(30, 6);
        assert!(art.contains('o'));
    }

    #[test]
    fn trim_float_behaviour() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(1234.56), "1234.6");
        assert_eq!(trim_float(3.21059), "3.211");
        assert_eq!(trim_float(0.00123456), "0.001235");
    }

    // --- trace collection and export ---

    fn rec(ps: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_ps(ps),
            event,
        }
    }

    /// One record of every variant, for exhaustive round-trip checks.
    fn one_of_each() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                TraceEvent::RunStarted {
                    algorithm: "Parallel",
                    trigger: "initial",
                },
            ),
            rec(
                1,
                TraceEvent::RequestInjected {
                    req_id: 1,
                    write: false,
                },
            ),
            rec(2, TraceEvent::PendingTableSize { size: 3 }),
            rec(
                3,
                TraceEvent::RequestCompleted {
                    req_id: 1,
                    ok: true,
                },
            ),
            rec(4, TraceEvent::RequestTimedOut { req_id: 2 }),
            rec(
                5,
                TraceEvent::DeviceDiscovered {
                    dsn: 0xdead_beef_cafe,
                    switch: true,
                    ports: 8,
                },
            ),
            rec(
                6,
                TraceEvent::Pi5Emitted {
                    dsn: 42,
                    port: 3,
                    up: false,
                },
            ),
            rec(
                7,
                TraceEvent::Pi5Received {
                    dsn: 42,
                    port: 3,
                    up: false,
                },
            ),
            rec(
                8,
                TraceEvent::FmBusy {
                    busy: SimDuration::from_ps(1500),
                },
            ),
            rec(
                9,
                TraceEvent::FmIdle {
                    idle: SimDuration::from_ps(2500),
                },
            ),
            rec(10, TraceEvent::DeviceActivated { device: 5 }),
            rec(11, TraceEvent::DeviceDeactivated { device: 5 }),
            rec(
                12,
                TraceEvent::QueueSample {
                    depth: 7,
                    processed: 4096,
                },
            ),
            rec(
                13,
                TraceEvent::RunFinished {
                    devices_found: 18,
                    links_found: 24,
                    requests_sent: 90,
                    timeouts: 1,
                },
            ),
            rec(14, TraceEvent::RequestAbandoned { req_id: 9 }),
            rec(
                15,
                TraceEvent::SnapshotLoaded {
                    devices: 18,
                    links: 21,
                },
            ),
            rec(
                16,
                TraceEvent::SnapshotSaved {
                    devices: 18,
                    links: 21,
                },
            ),
            rec(
                17,
                TraceEvent::WarmVerified {
                    dsn: 0xa51_0000_0007,
                },
            ),
            rec(
                18,
                TraceEvent::VerifyMismatch {
                    dsn: 0xa51_0000_0008,
                },
            ),
            rec(
                19,
                TraceEvent::WarmFallback {
                    mismatches: 5,
                    threshold: 4,
                },
            ),
            rec(
                20,
                TraceEvent::FmClaim {
                    dsn: 0xa51_0000_0001,
                    priority: 200,
                },
            ),
            rec(
                21,
                TraceEvent::FmYield {
                    dsn: 0xa51_0000_0009,
                    to: 0xa51_0000_0002,
                },
            ),
            rec(
                22,
                TraceEvent::FmElected {
                    primary: 0xa51_0000_0001,
                    fms: 4,
                },
            ),
            rec(
                23,
                TraceEvent::FmFailover {
                    dsn: 0xa51_0000_0002,
                    misses: 3,
                },
            ),
            rec(
                24,
                TraceEvent::MergeComplete {
                    devices: 128,
                    links: 240,
                    reports: 3,
                },
            ),
        ]
    }

    #[test]
    fn ring_collector_caps_and_counts_evictions() {
        let mut ring = RingCollector::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.record(rec(i, TraceEvent::PendingTableSize { size: i as u32 }));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        // Oldest two evicted: times 2, 3, 4 remain in order.
        let times: Vec<u64> = ring.records().map(|r| r.time.as_ps()).collect();
        assert_eq!(times, vec![2, 3, 4]);
        let taken = ring.take();
        assert_eq!(taken.len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn ring_collector_zero_capacity_keeps_one() {
        let mut ring = RingCollector::new(0);
        ring.record(rec(1, TraceEvent::PendingTableSize { size: 1 }));
        ring.record(rec(2, TraceEvent::PendingTableSize { size: 2 }));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let records = one_of_each();
        let text = trace_to_jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let parsed = trace_from_jsonl(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn jsonl_lines_carry_time_and_kind() {
        let records = one_of_each();
        let text = trace_to_jsonl(&records);
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(*first.get("t_ps"), 0u64);
        assert_eq!(*first.get("event"), "run-started");
        assert_eq!(*first.get("algorithm"), "Parallel");
        assert_eq!(*first.get("trigger"), "initial");
    }

    #[test]
    fn jsonl_parser_reports_bad_lines() {
        assert!(trace_from_jsonl("").unwrap().is_empty());
        assert!(trace_from_jsonl("\n\n").unwrap().is_empty());
        let err = trace_from_jsonl("{\"event\":\"no-such-kind\",\"t_ps\":1}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let good = "{\"t_ps\":2,\"event\":\"pending-table-size\",\"size\":1}";
        let err = trace_from_jsonl(&format!("{good}\nnot json")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        // Unknown algorithm spellings are rejected, not silently leaked.
        let bad = "{\"t_ps\":1,\"event\":\"run-started\",\"algorithm\":\"Quantum\",\"trigger\":\"initial\"}";
        assert!(trace_from_jsonl(bad).is_err());
    }

    #[test]
    fn save_trace_jsonl_writes_file() {
        let dir = std::env::temp_dir().join("asi-trace-report-test");
        let path = dir.join("trace.jsonl");
        let records = one_of_each();
        save_trace_jsonl(&path, &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(trace_from_jsonl(&text).unwrap(), records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_counts_and_derived_totals() {
        let s = TraceSummary::of(&one_of_each());
        assert_eq!(s.count("request-injected"), 1);
        assert_eq!(s.count("pi5-emitted"), 1);
        assert_eq!(s.count("no-such-kind"), 0);
        assert_eq!(s.counts.values().sum::<u64>(), 25);
        assert_eq!(s.first, Some(SimTime::ZERO));
        assert_eq!(s.last, Some(SimTime::from_ps(24)));
        assert_eq!(s.max_pending, 3);
        assert_eq!(s.fm_busy, SimDuration::from_ps(1500));
        assert_eq!(s.fm_idle, SimDuration::from_ps(2500));
        let md = s.to_markdown();
        assert!(md.contains("| request-injected | 1 |"), "{md}");
        assert!(md.contains("peak pending 3"), "{md}");
    }

    #[test]
    fn pending_occupancy_extracts_the_step_curve() {
        let records = vec![
            rec(1_000_000, TraceEvent::PendingTableSize { size: 1 }),
            rec(
                2_000_000,
                TraceEvent::RequestInjected {
                    req_id: 1,
                    write: false,
                },
            ),
            rec(3_000_000, TraceEvent::PendingTableSize { size: 4 }),
        ];
        let series = pending_occupancy(&records);
        assert_eq!(series.points, vec![(1.0, 1.0), (3.0, 4.0)]);
    }

    #[test]
    fn ring_collector_works_through_a_trace_handle() {
        let ring = RingCollector::shared(16);
        let handle = asi_sim::TraceHandle::to(ring.clone());
        handle.emit(SimTime::from_ns(5), || TraceEvent::PendingTableSize {
            size: 2,
        });
        assert_eq!(ring.borrow().len(), 1);
        assert_eq!(
            ring.borrow().records().next().unwrap().event.kind(),
            "pending-table-size"
        );
    }
}
