//! Output containers for reproduced tables and figures, with markdown and
//! CSV rendering.

use std::fmt::Write as _;
use std::path::Path;

/// One plotted series (a line in a paper figure).
#[derive(Clone, Debug, serde::Serialize)]
pub struct Series {
    /// Legend label ("Serial Packet", …).
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A reproduced figure: axes plus one or more series.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Chart {
    /// Identifier ("fig6a").
    pub id: String,
    /// Title as the paper captions it.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Chart {
        Chart {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Renders a compact markdown table: one row per x, one column per
    /// series (x values unioned across series).
    pub fn to_markdown(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "| {} |", trim_float(x));
            for s in &self.series {
                // Average all points of this series at this x (scatter
                // figures may repeat x values).
                let vals: Vec<f64> = s
                    .points
                    .iter()
                    .filter(|&&(px, _)| px == x)
                    .map(|&(_, y)| y)
                    .collect();
                if vals.is_empty() {
                    let _ = write!(out, " |");
                } else {
                    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                    let _ = write!(out, " {} |", trim_float(mean));
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "\n_y: {}_\n", self.y_label);
        out
    }

    /// Renders long-format CSV: `series,x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{},{},{}", s.name, x, y);
            }
        }
        out
    }

    /// Writes `<dir>/<id>.csv` and `<dir>/<id>.md`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        std::fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        Ok(())
    }
}

/// A reproduced table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TableOut {
    /// Identifier ("table1").
    pub id: String,
    /// Caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
}

impl TableOut {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> TableOut {
        TableOut {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv` and `<dir>/<id>.md`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        std::fs::write(dir.join(format!("{}.md", self.id)), self.to_markdown())?;
        Ok(())
    }
}

impl Chart {
    /// Renders a rough ASCII plot (log-friendly): one glyph per series,
    /// x binned across the terminal width. Intended for eyeballing the
    /// *shape* of a reproduced figure in CI logs.
    pub fn to_ascii(&self, width: usize, height: usize) -> String {
        let width = width.clamp(16, 200);
        let height = height.clamp(4, 60);
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        if pts.is_empty() {
            return format!("{} — (no data)
", self.id);
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 <= x0 {
            x1 = x0 + 1.0;
        }
        if y1 <= y0 {
            y1 = y0 + 1.0;
        }
        let glyphs = ['o', '+', 'x', '*', '#', '@'];
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let g = glyphs[si % glyphs.len()];
            for &(x, y) in &s.points {
                let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
                let cy = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = g;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", glyphs[si % glyphs.len()], s.name);
        }
        let _ = writeln!(out, "y: {} in [{:.3e}, {:.3e}]", self.y_label, y0, y1);
        for row in grid {
            let _ = writeln!(out, "|{}", row.into_iter().collect::<String>());
        }
        let _ = writeln!(
            out,
            "+{}\n x: {} in [{}, {}]",
            "-".repeat(width),
            self.x_label,
            trim_float(x0),
            trim_float(x1)
        );
        out
    }
}

/// Formats a float without trailing noise.
pub fn trim_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_markdown_unions_x_values() {
        let mut c = Chart::new("figX", "demo", "n", "t");
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(2.0, 5.0);
        c.series.push(a);
        c.series.push(b);
        let md = c.to_markdown();
        assert!(md.contains("| n | A | B |"));
        assert!(md.contains("| 1 | 10 | |"));
        assert!(md.contains("| 2 | 20 | 5 |"));
    }

    #[test]
    fn chart_markdown_averages_repeated_x() {
        let mut c = Chart::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 10.0);
        s.push(1.0, 20.0);
        c.series.push(s);
        assert!(c.to_markdown().contains("| 1 | 15 |"));
    }

    #[test]
    fn csv_is_long_format() {
        let mut c = Chart::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.5, 2.5);
        c.series.push(s);
        assert_eq!(c.to_csv(), "series,x,y\nS,1.5,2.5\n");
    }

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = TableOut::new("t1", "caption", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert!(t.to_markdown().contains("| a | b |"));
        assert!(t.to_csv().contains("a,b\n1,2\n"));
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let mut c = Chart::new("f", "demo", "n", "t");
        let mut a = Series::new("A");
        let mut b = Series::new("B");
        for i in 0..10 {
            a.push(i as f64, i as f64);
            b.push(i as f64, (10 - i) as f64);
        }
        c.series.push(a);
        c.series.push(b);
        let art = c.to_ascii(40, 10);
        assert!(art.contains('o') && art.contains('+'), "{art}");
        assert!(art.contains("x: n in [0, 9]"));
        assert_eq!(art.lines().filter(|l| l.starts_with('|')).count(), 10);
    }

    #[test]
    fn ascii_plot_empty_chart() {
        let c = Chart::new("f", "demo", "n", "t");
        assert!(c.to_ascii(40, 10).contains("no data"));
    }

    #[test]
    fn ascii_plot_degenerate_ranges() {
        let mut c = Chart::new("f", "demo", "n", "t");
        let mut a = Series::new("A");
        a.push(5.0, 7.0); // single point: zero-width ranges
        c.series.push(a);
        let art = c.to_ascii(30, 6);
        assert!(art.contains('o'));
    }

    #[test]
    fn trim_float_behaviour() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(1234.56), "1234.6");
        assert_eq!(trim_float(3.21059), "3.211");
        assert_eq!(trim_float(0.00123456), "0.001235");
    }
}
