//! Fig. 5: the paper shows two of its fabrics rendered in OPNET — a 6×6
//! mesh and a 4-port 3-tree. We regenerate them as Graphviz DOT files
//! (`fig5_mesh.dot`, `fig5_fattree.dot`; render with
//! `neato -Tpng fig5_mesh.dot -o fig5_mesh.png`).

use crate::sweep::SweepSpec;
use asi_topo::Table1;
use std::path::Path;

/// The two topologies the paper draws.
pub fn specs() -> [Table1; 2] {
    [Table1::Mesh(6), Table1::FatTree(4, 3)]
}

/// Initial-discovery sweep grid over the Fig. 5 fabrics (the timing
/// companion to the rendered topologies; also the CLI's `--grid fig5`).
pub fn discovery_sweep(quick: bool) -> SweepSpec {
    SweepSpec::fig5(quick)
}

/// Writes the DOT files into `dir`; returns `(file name, node count)`
/// pairs.
pub fn run(dir: &Path) -> std::io::Result<Vec<(String, usize)>> {
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::new();
    for (spec, file) in specs().iter().zip(["fig5_mesh.dot", "fig5_fattree.dot"]) {
        let topo = spec.build();
        std::fs::write(dir.join(file), topo.to_dot())?;
        out.push((file.to_string(), topo.node_count()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_dot_files_are_complete_graphs() {
        let dir = std::env::temp_dir().join("asi_fig5_test");
        let written = run(&dir).unwrap();
        assert_eq!(written.len(), 2);
        assert_eq!(written[0].1, 72); // 6x6 mesh
        assert_eq!(written[1].1, 36); // 4-port 3-tree
        for (file, nodes) in &written {
            let dot = std::fs::read_to_string(dir.join(file)).unwrap();
            assert!(dot.matches("label=").count() > *nodes);
            assert!(dot.starts_with("graph"));
            // Every node declared.
            assert_eq!(dot.lines().filter(|l| l.contains("shape=")).count(), *nodes);
        }
    }
}
