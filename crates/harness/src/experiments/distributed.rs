//! Distributed-discovery experiment (the paper's future-work item):
//! discovery time with 1, 2 and 3 collaborative fabric managers.

use crate::report::{trim_float, TableOut};
use crate::scenario::{distributed_discovery, Bench, Scenario};
use asi_core::Algorithm;
use asi_topo::Table1;

/// Compares single-manager Parallel discovery against distributed
/// discovery with 1–3 collaborators.
pub fn run(quick: bool) -> TableOut {
    let topos = if quick {
        vec![Table1::Mesh(4)]
    } else {
        vec![Table1::Mesh(6), Table1::Mesh(8), Table1::Torus(8)]
    };
    let mut t = TableOut::new(
        "extension_distributed",
        "Distributed discovery: time to the primary's merged database",
        &[
            "Topology",
            "Single FM (ms)",
            "2 FMs (ms)",
            "3 FMs (ms)",
            "Devices",
        ],
    );
    for spec in topos {
        let topo = spec.build();
        let scenario = Scenario::new(Algorithm::Parallel);
        let single = Bench::start(&topo, &scenario, &[])
            .last_run()
            .discovery_time();
        let (_, _, two) = distributed_discovery(&topo, 1, &scenario);
        let (_, _, three) = distributed_discovery(&topo, 2, &scenario);
        assert_eq!(
            two.devices,
            topo.node_count(),
            "{}: 2-FM merge incomplete",
            spec.name()
        );
        assert_eq!(
            three.devices,
            topo.node_count(),
            "{}: 3-FM merge incomplete",
            spec.name()
        );
        t.push_row(vec![
            spec.name(),
            trim_float(single.as_millis_f64()),
            trim_float(two.merged_time.as_millis_f64()),
            trim_float(three.merged_time.as_millis_f64()),
            topo.node_count().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_topo::mesh;

    #[test]
    fn two_managers_merge_the_full_fabric() {
        let g = mesh(4, 4);
        let scenario = Scenario::new(Algorithm::Parallel);
        let (fabric, primary, outcome) = distributed_discovery(&g.topology, 1, &scenario);
        assert_eq!(outcome.devices, 32);
        assert_eq!(outcome.links, g.topology.links().len());
        // Claim partitioning split the exploration: neither manager did
        // everything alone.
        assert_eq!(outcome.per_manager_devices.len(), 2);
        for (i, &n) in outcome.per_manager_devices.iter().enumerate() {
            assert!(n < 32, "manager {i} explored the whole fabric ({n})");
            assert!(n > 2, "manager {i} explored almost nothing ({n})");
        }
        // The merged database computes valid routes to every device.
        let agent = fabric
            .agent_as::<asi_core::FmAgent>(primary)
            .expect("primary agent");
        let db = agent.db().unwrap();
        let host = db.host_dsn();
        let mut reachable = 0;
        for d in db.devices() {
            if d.info.dsn == host {
                continue;
            }
            if matches!(
                db.route_between(host, d.info.dsn, asi_proto::MAX_POOL_BITS),
                Some(Ok(_))
            ) {
                reachable += 1;
            }
        }
        assert_eq!(reachable, 31, "merged routes incomplete");
    }

    #[test]
    fn distributed_beats_single_manager_on_big_fabrics() {
        let g = mesh(6, 6);
        let scenario = Scenario::new(Algorithm::Parallel);
        let single = Bench::start(&g.topology, &scenario, &[])
            .last_run()
            .discovery_time();
        let (_, _, out) = distributed_discovery(&g.topology, 1, &scenario);
        assert_eq!(out.devices, 72);
        assert!(
            out.merged_time < single,
            "distributed ({}) should beat single ({single})",
            out.merged_time
        );
    }
}
