//! Fig. 9: the Fig. 6 change experiment repeated under three processing
//! factor combinations — (a) FM 1 / device 1, (b) FM 1 / device 0.2,
//! (c) FM 4 / device 0.2. The paper's conclusion: faster FM + slower
//! devices maximizes the Parallel algorithm's advantage.

use crate::experiments::fig6;
use crate::report::Chart;

/// All three panels.
pub struct Fig9Output {
    /// (a) FM factor 1, device factor 1.
    pub a: Chart,
    /// (b) FM factor 1, device factor 0.2.
    pub b: Chart,
    /// (c) FM factor 4, device factor 0.2.
    pub c: Chart,
}

/// Runs the three panels.
pub fn run(quick: bool) -> Fig9Output {
    let a = fig6::run_with_factors(quick, 1.0, 1.0, "fig9_a").scatter;
    let b = fig6::run_with_factors(quick, 1.0, 0.2, "fig9_b").scatter;
    let c = fig6::run_with_factors(quick, 4.0, 0.2, "fig9_c").scatter;
    let mut a = a;
    let mut b = b;
    let mut c = c;
    a.id = "fig9a".into();
    b.id = "fig9b".into();
    c.id = "fig9c".into();
    Fig9Output { a, b, c }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_ratio(chart: &Chart) -> f64 {
        // Mean SerialPacket/Parallel discovery-time ratio across runs.
        let sp: f64 = chart.series[0].points.iter().map(|p| p.1).sum();
        let pa: f64 = chart.series[2].points.iter().map(|p| p.1).sum();
        sp / pa
    }

    #[test]
    fn fig9_fast_fm_slow_devices_maximizes_parallel_advantage() {
        let out = run(true);
        let r_a = mean_ratio(&out.a);
        let r_c = mean_ratio(&out.c);
        assert!(r_a > 1.0, "parallel must win in panel (a): ratio {r_a}");
        assert!(
            r_c > r_a,
            "panel (c) must widen the advantage: a={r_a:.3} c={r_c:.3}"
        );
    }
}
