//! One module per reproduced table/figure (see DESIGN.md §3) plus the
//! ablations of §4.

pub mod ablations;
pub mod distributed;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod pathdist;
pub mod table1;
