//! Table 1: the topologies evaluated (switches / endpoints / total).

use crate::report::TableOut;
use asi_topo::Table1;

/// Regenerates the paper's Table 1 by *building* each topology and
/// counting, rather than echoing the formulas.
pub fn run() -> TableOut {
    let mut t = TableOut::new(
        "table1",
        "Topologies evaluated",
        &["Topology", "Switches", "Endpoints", "Total Devices"],
    );
    for spec in Table1::all() {
        let topo = spec.build();
        assert!(topo.is_connected(), "{} disconnected", spec.name());
        t.push_row(vec![
            spec.name(),
            topo.switch_count().to_string(),
            topo.endpoint_count().to_string(),
            topo.node_count().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_matches_paper_counts() {
        let t = super::run();
        assert_eq!(t.rows.len(), 13);
        // Spot-check a few rows against the paper.
        let find = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        assert_eq!(find("3x3 mesh")[3], "18");
        assert_eq!(find("8x8 torus")[3], "128");
        assert_eq!(find("4-port 3-tree")[1], "20");
        assert_eq!(find("8-port 2-tree")[2], "32");
    }
}
