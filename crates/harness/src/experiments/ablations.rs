//! Ablations beyond the paper's figures (DESIGN.md §4):
//!
//! - background traffic on/off — verifies the paper's "application
//!   traffic scarcely influences discovery time" claim;
//! - partial (affected-region) assimilation vs full re-discovery;
//! - credit flow control on/off;
//! - the 31-bit spec turn-pool reachability study.

use crate::report::{trim_float, TableOut};
use crate::scenario::{Bench, Scenario, TrafficSpec};
use asi_core::Algorithm;
use asi_sim::SimDuration;
use asi_topo::{mesh, spec_reachability, Table1};

/// Background-traffic ablation: initial discovery time with and without
/// Poisson data traffic from every endpoint.
pub fn traffic(quick: bool) -> TableOut {
    let g = if quick { mesh(3, 3) } else { mesh(6, 6) };
    let mut t = TableOut::new(
        "ablation_traffic",
        "Effect of background application traffic on discovery time",
        &[
            "Algorithm",
            "No traffic (ms)",
            "With traffic (ms)",
            "Delta (%)",
        ],
    );
    for alg in Algorithm::all() {
        let quiet = Bench::start(&g.topology, &Scenario::new(alg), &[])
            .last_run()
            .discovery_time();
        let s = Scenario::new(alg).with_traffic(TrafficSpec {
            mean_gap: SimDuration::from_us(30),
            payload: 512,
        });
        let busy = Bench::start(&g.topology, &s, &[])
            .last_run()
            .discovery_time();
        let delta = 100.0 * (busy.as_secs_f64() - quiet.as_secs_f64()) / quiet.as_secs_f64();
        t.push_row(vec![
            alg.name().to_string(),
            trim_float(quiet.as_millis_f64()),
            trim_float(busy.as_millis_f64()),
            trim_float(delta),
        ]);
    }
    t
}

/// Partial vs full change assimilation.
pub fn partial_assimilation(quick: bool) -> TableOut {
    let g = if quick { mesh(4, 4) } else { mesh(8, 8) };
    let mut t = TableOut::new(
        "ablation_partial",
        "Full re-discovery vs partial (affected-region) assimilation after a switch removal",
        &["Mode", "Assimilation time (ms)", "PI-4 requests"],
    );
    for partial in [false, true] {
        let scenario = Scenario::new(Algorithm::Parallel)
            .with_seed(0xAB1)
            .with_partial_assimilation(partial);
        let mut bench = Bench::start(&g.topology, &scenario, &[]);
        let victim = bench.pick_victim_switch();
        let run = bench.remove_switch(victim);
        t.push_row(vec![
            if partial { "Partial" } else { "Full" }.to_string(),
            trim_float(run.discovery_time().as_millis_f64()),
            run.requests_sent.to_string(),
        ]);
    }
    t
}

/// Credit flow control on/off.
pub fn flow_control(quick: bool) -> TableOut {
    let g = if quick { mesh(3, 3) } else { mesh(6, 6) };
    let mut t = TableOut::new(
        "ablation_flow_control",
        "Effect of credit-based flow control on discovery time",
        &["Algorithm", "Credits on (ms)", "Credits off (ms)"],
    );
    for alg in Algorithm::all() {
        let on = Bench::start(&g.topology, &Scenario::new(alg), &[])
            .last_run()
            .discovery_time();
        let s = Scenario::new(alg).with_flow_control(false);
        let off = Bench::start(&g.topology, &s, &[])
            .last_run()
            .discovery_time();
        t.push_row(vec![
            alg.name().to_string(),
            trim_float(on.as_millis_f64()),
            trim_float(off.as_millis_f64()),
        ]);
    }
    t
}

/// 31-bit spec turn-pool reachability per Table 1 topology.
pub fn spec_pool(quick: bool) -> TableOut {
    let topos = if quick {
        Table1::quick()
    } else {
        Table1::all()
    };
    let mut t = TableOut::new(
        "ablation_spec_pool",
        "Fraction of each fabric addressable within the 31-bit spec turn pool",
        &[
            "Topology",
            "Reachable",
            "Within 31-bit pool",
            "Max turn bits",
        ],
    );
    for spec in topos {
        let topo = spec.build();
        let fm = asi_topo::default_fm_endpoint(&topo).unwrap();
        let r = spec_reachability(&topo, fm);
        t.push_row(vec![
            spec.name(),
            r.reachable.to_string(),
            r.within_spec.to_string(),
            r.max_turn_bits.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_barely_affects_discovery() {
        let t = traffic(true);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let delta: f64 = row[3].parse().unwrap();
            // The paper: "this traffic scarcely influences the discovery
            // time" — allow single-digit percent.
            assert!(
                delta.abs() < 10.0,
                "{}: traffic changed discovery time by {delta}%",
                row[0]
            );
        }
    }

    #[test]
    fn partial_is_faster_than_full() {
        let t = partial_assimilation(true);
        let full_ms: f64 = t.rows[0][1].parse().unwrap();
        let partial_ms: f64 = t.rows[1][1].parse().unwrap();
        assert!(partial_ms < full_ms, "partial {partial_ms} full {full_ms}");
        let full_req: u64 = t.rows[0][2].parse().unwrap();
        let partial_req: u64 = t.rows[1][2].parse().unwrap();
        assert!(partial_req * 2 < full_req);
    }

    #[test]
    fn flow_control_is_nearly_free_for_management() {
        let t = flow_control(true);
        for row in &t.rows {
            let on: f64 = row[1].parse().unwrap();
            let off: f64 = row[2].parse().unwrap();
            // Management load is tiny: credits should not be a bottleneck.
            assert!(
                (on - off).abs() / off < 0.05,
                "{}: on={on} off={off}",
                row[0]
            );
        }
    }

    #[test]
    fn spec_pool_covers_small_but_not_large_fabrics() {
        let t = spec_pool(false);
        let find = |name: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        let small = find("3x3 mesh");
        assert_eq!(small[1], small[2], "3x3 mesh should be fully in spec");
        let big = find("16x16 torus");
        let reach: u64 = big[1].parse().unwrap();
        let within: u64 = big[2].parse().unwrap();
        assert!(within < reach, "16x16 torus cannot fit the 31-bit pool");
    }
}
