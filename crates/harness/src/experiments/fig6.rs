//! Fig. 6: topology discovery time after a random switch addition or
//! removal — (a) per-run scatter versus active/reachable devices, and
//! (b) per-topology averages versus network size. Also reused (with
//! non-default processing factors) for Fig. 9.

use crate::report::{Chart, Series};
use crate::sweep::{self, SweepSpec};

/// Outputs of the change experiment.
pub struct Fig6Output {
    /// Per-run scatter (paper Fig. 6a / Fig. 9).
    pub scatter: Chart,
    /// Per-topology averages (paper Fig. 6b).
    pub averages: Chart,
}

/// Runs the Fig. 6 experiment at the given processing factors (Fig. 9
/// passes non-default ones). The grid executes on the deterministic
/// sweep runner ([`crate::sweep`]), so the charts are identical for any
/// worker count — including the serial `jobs = 1` case.
pub fn run_with_factors(quick: bool, fm_factor: f64, device_factor: f64, id: &str) -> Fig6Output {
    let spec = SweepSpec::fig6(quick, fm_factor, device_factor);
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let result = sweep::run(&spec, jobs);

    let mut scatter = Chart::new(
        format!("{id}a"),
        format!(
            "Discovery time vs active nodes (FM factor {fm_factor}, device factor {device_factor})"
        ),
        "Active Nodes",
        "Discovery Time (sec)",
    );
    let mut averages = Chart::new(
        format!("{id}b"),
        "Discovery time vs network size (average per topology)".to_string(),
        "Physical Nodes",
        "Discovery Time (sec)",
    );
    for &alg in &spec.algorithms {
        let mut s_scatter = Series::new(alg.name());
        // Cells arrive in canonical order (topologies outer, reps
        // inner), which is exactly the scatter point order.
        for c in result.cells.iter().filter(|c| c.algorithm == alg.name()) {
            s_scatter.push(c.active_nodes as f64, c.discovery_time_s);
        }
        let mut s_avg = Series::new(alg.name());
        for a in result
            .aggregates
            .iter()
            .filter(|a| a.algorithm == alg.name())
        {
            s_avg.push(a.total_devices as f64, a.mean_time_s);
        }
        scatter.series.push(s_scatter);
        averages.series.push(s_avg);
    }
    Fig6Output { scatter, averages }
}

/// The paper's Fig. 6 (default factors).
pub fn run(quick: bool) -> Fig6Output {
    run_with_factors(quick, 1.0, 1.0, "fig6")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_parallel_wins_everywhere() {
        let out = run(true);
        let avg = &out.averages;
        assert_eq!(avg.series.len(), 3);
        let n = avg.series[0].points.len();
        for i in 0..n {
            let (x_sp, sp) = avg.series[0].points[i];
            let (_, sd) = avg.series[1].points[i];
            let (_, pa) = avg.series[2].points[i];
            assert!(
                pa < sd && sd < sp,
                "ordering broken at x={x_sp}: sp={sp} sd={sd} pa={pa}"
            );
        }
        // The gap grows with size (scalable improvement).
        let gap_first = avg.series[0].points[0].1 - avg.series[2].points[0].1;
        let last = n - 1;
        // Find largest topology index by x.
        let (big_idx, _) = avg.series[0]
            .points
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .unwrap();
        let gap_big = avg.series[0].points[big_idx].1 - avg.series[2].points[big_idx].1;
        let _ = last;
        assert!(
            gap_big > gap_first,
            "serial-parallel gap must grow with fabric size"
        );
    }
}
