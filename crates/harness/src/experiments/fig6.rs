//! Fig. 6: topology discovery time after a random switch addition or
//! removal — (a) per-run scatter versus active/reachable devices, and
//! (b) per-topology averages versus network size. Also reused (with
//! non-default processing factors) for Fig. 9.

use crate::report::{Chart, Series};
use crate::scenario::{change_experiment, Scenario};
use asi_core::Algorithm;
use asi_sim::OnlineStats;
use asi_topo::Table1;

/// Outputs of the change experiment.
pub struct Fig6Output {
    /// Per-run scatter (paper Fig. 6a / Fig. 9).
    pub scatter: Chart,
    /// Per-topology averages (paper Fig. 6b).
    pub averages: Chart,
}

/// Runs the Fig. 6 experiment at the given processing factors (Fig. 9
/// passes non-default ones).
pub fn run_with_factors(
    quick: bool,
    fm_factor: f64,
    device_factor: f64,
    id: &str,
) -> Fig6Output {
    let topos = if quick { Table1::quick() } else { Table1::all() };
    let reps = if quick { 2 } else { 6 };
    let mut scatter = Chart::new(
        format!("{id}a"),
        format!(
            "Discovery time vs active nodes (FM factor {fm_factor}, device factor {device_factor})"
        ),
        "Active Nodes",
        "Discovery Time (sec)",
    );
    let mut averages = Chart::new(
        format!("{id}b"),
        "Discovery time vs network size (average per topology)".to_string(),
        "Physical Nodes",
        "Discovery Time (sec)",
    );
    // One task per (algorithm, topology) pair, fanned out with scoped
    // threads; seeds are fixed per task so the output is identical to the
    // sequential sweep.
    let algs = Algorithm::all();
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    for a in 0..algs.len() {
        for t in 0..topos.len() {
            tasks.push((a, t));
        }
    }
    type TaskResult = (Vec<(f64, f64)>, (f64, f64));
    let mut results: Vec<Option<TaskResult>> = vec![None; tasks.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for &(a, t) in &tasks {
            let spec = topos[t];
            let alg = algs[a];
            handles.push(scope.spawn(move || {
                let topo = spec.build();
                let mut points = Vec::new();
                let mut stats = OnlineStats::new();
                for rep in 0..reps {
                    let remove = rep % 2 == 0;
                    let scenario = Scenario::new(alg)
                        .with_factors(fm_factor, device_factor)
                        .with_seed(0xF16_6000 + rep as u64 * 7919 + spec.switches() as u64);
                    let (run, active) = change_experiment(&topo, &scenario, remove);
                    let time = run.discovery_time().as_secs_f64();
                    points.push((active as f64, time));
                    stats.push(time);
                }
                (points, (spec.total_devices() as f64, stats.mean()))
            }));
        }
        for (slot, handle) in handles.into_iter().enumerate() {
            results[slot] = Some(handle.join().expect("sweep task panicked"));
        }
    });

    for (a, alg) in algs.iter().enumerate() {
        let mut s_scatter = Series::new(alg.name());
        let mut s_avg = Series::new(alg.name());
        for t in 0..topos.len() {
            let idx = tasks.iter().position(|&x| x == (a, t)).expect("task exists");
            let (points, avg) = results[idx].take().expect("task ran");
            for (x, y) in points {
                s_scatter.push(x, y);
            }
            s_avg.push(avg.0, avg.1);
        }
        scatter.series.push(s_scatter);
        averages.series.push(s_avg);
    }
    Fig6Output { scatter, averages }
}

/// The paper's Fig. 6 (default factors).
pub fn run(quick: bool) -> Fig6Output {
    run_with_factors(quick, 1.0, 1.0, "fig6")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_parallel_wins_everywhere() {
        let out = run(true);
        let avg = &out.averages;
        assert_eq!(avg.series.len(), 3);
        let n = avg.series[0].points.len();
        for i in 0..n {
            let (x_sp, sp) = avg.series[0].points[i];
            let (_, sd) = avg.series[1].points[i];
            let (_, pa) = avg.series[2].points[i];
            assert!(
                pa < sd && sd < sp,
                "ordering broken at x={x_sp}: sp={sp} sd={sd} pa={pa}"
            );
        }
        // The gap grows with size (scalable improvement).
        let gap_first = avg.series[0].points[0].1 - avg.series[2].points[0].1;
        let last = n - 1;
        // Find largest topology index by x.
        let (big_idx, _) = avg.series[0]
            .points
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .unwrap();
        let gap_big = avg.series[0].points[big_idx].1 - avg.series[2].points[big_idx].1;
        let _ = last;
        assert!(
            gap_big > gap_first,
            "serial-parallel gap must grow with fabric size"
        );
    }
}
