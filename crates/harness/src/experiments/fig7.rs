//! Fig. 7: (a) the time at which each discovery packet is processed at
//! the FM during the 3×3-mesh initial discovery, and (b) the idealized
//! serial/parallel pipelining model.

use crate::report::{Chart, Series};
use crate::scenario::{Bench, Scenario};
use asi_core::{ideal, Algorithm};
use asi_sim::SimDuration;
use asi_topo::mesh;

/// Fig. 7(a): per-packet FM timeline for the 3×3 mesh, all devices
/// active.
pub fn run_timeline() -> Chart {
    let g = mesh(3, 3);
    let mut chart = Chart::new(
        "fig7a",
        "Time each discovery packet is processed at the FM (3x3 mesh)",
        "Packet Number",
        "Simulation Time (sec)",
    );
    for alg in Algorithm::all() {
        let bench = Bench::start(&g.topology, &Scenario::new(alg), &[]);
        let run = bench.last_run();
        let mut series = Series::new(alg.name());
        for &(t, ordinal) in run.fm_timeline.points() {
            series.push(ordinal, t.saturating_since(run.started_at).as_secs_f64());
        }
        chart.series.push(series);
    }
    chart
}

/// Fig. 7(b): the closed-form serial vs parallel behaviour (packet
/// completion times under each ideal model).
pub fn run_ideal() -> Chart {
    let params = ideal::IdealParams {
        t_fm: SimDuration::from_us(19),
        t_device: SimDuration::from_us(4),
        t_prop: SimDuration::from_us(1),
    };
    let mut chart = Chart::new(
        "fig7b",
        "Ideal serial and parallel behaviours (T_FM=19us, T_Device=4us, T_Prop=1us)",
        "Packet Number",
        "Completion Time (sec)",
    );
    let mut serial = Series::new("Serial behavior");
    let mut parallel = Series::new("Parallel behavior");
    for n in 1..=40u64 {
        serial.push(n as f64, ideal::serial_total(params, n).as_secs_f64());
        parallel.push(n as f64, ideal::parallel_total(params, n).as_secs_f64());
    }
    chart.series.push(serial);
    chart.series.push(parallel);
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear-regression slope of a series.
    fn slope(points: &[(f64, f64)]) -> f64 {
        let n = points.len() as f64;
        let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
        let my = points.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let var: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
        cov / var
    }

    #[test]
    fn fig7a_slopes_match_paper() {
        let chart = run_timeline();
        assert_eq!(chart.series.len(), 3);
        let sp = slope(&chart.series[0].points);
        let sd = slope(&chart.series[1].points);
        let pa = slope(&chart.series[2].points);
        // Paper: SerialPacket has the steepest (constant) slope; Serial
        // Device is in between; Parallel the flattest.
        assert!(sp > sd && sd > pa, "slopes sp={sp} sd={sd} pa={pa}");
        // Slope magnitudes: serial ~25us/packet, parallel ~13us/packet.
        assert!((20e-6..32e-6).contains(&sp), "sp slope {sp}");
        assert!((10e-6..18e-6).contains(&pa), "pa slope {pa}");
    }

    #[test]
    fn fig7a_timelines_are_monotonic() {
        let chart = run_timeline();
        for s in &chart.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{} time went backwards", s.name);
                assert!(w[1].0 > w[0].0, "{} packet ordinal not increasing", s.name);
            }
        }
    }

    #[test]
    fn fig7b_parallel_below_serial() {
        let chart = run_ideal();
        for (s, p) in chart.series[0].points.iter().zip(&chart.series[1].points) {
            if p.0 <= 1.0 {
                // With a single packet there is nothing to overlap.
                assert!(p.1 <= s.1);
            } else {
                assert!(
                    p.1 < s.1,
                    "ideal parallel must undercut serial at n={}",
                    p.0
                );
            }
        }
    }
}
