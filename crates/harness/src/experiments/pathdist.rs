//! Path-distribution experiment (the paper's third future-work item):
//! time to push fresh route tables to every endpoint after discovery.

use crate::report::{trim_float, TableOut};
use asi_core::{Algorithm, FmAgent, FmConfig, TOKEN_START_DISCOVERY};
use asi_fabric::{DevId, Fabric, FabricConfig};
use asi_sim::SimDuration;
use asi_topo::Table1;

/// Measures discovery + distribution per topology.
pub fn run(quick: bool) -> TableOut {
    let topos = if quick {
        vec![Table1::Mesh(3), Table1::FatTree(4, 2)]
    } else {
        vec![
            Table1::Mesh(3),
            Table1::Mesh(6),
            Table1::Mesh(8),
            Table1::FatTree(4, 3),
            Table1::FatTree(8, 2),
        ]
    };
    let mut t = TableOut::new(
        "extension_pathdist",
        "Route-table distribution after discovery (Parallel algorithm)",
        &[
            "Topology",
            "Discovery (ms)",
            "Distribution (ms)",
            "Writes",
            "Endpoints",
        ],
    );
    for spec in topos {
        let topo = spec.build();
        let mut fabric = Fabric::new(&topo, FabricConfig::default());
        fabric.set_event_limit(2_000_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let fm_node = asi_topo::default_fm_endpoint(&topo).unwrap();
        let fm = DevId(fm_node.0);
        let mut cfg = FmConfig::new(Algorithm::Parallel);
        cfg.distribute_paths = true;
        fabric.set_agent(fm, Box::new(FmAgent::new(cfg)));
        fabric.schedule_agent_timer(fm, SimDuration::ZERO, TOKEN_START_DISCOVERY);
        fabric.run_until_idle();

        let agent = fabric.agent_as::<FmAgent>(fm).unwrap();
        let run = agent.last_run().unwrap();
        let dist = agent.distributions.last().expect("distribution phase ran");
        assert_eq!(dist.failures, 0, "{}: distribution failures", spec.name());
        t.push_row(vec![
            spec.name(),
            trim_float(run.discovery_time().as_millis_f64()),
            trim_float(dist.distribution_time().as_millis_f64()),
            dist.writes.to_string(),
            spec.endpoints().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn distribution_completes_on_quick_topologies() {
        let t = super::run(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let endpoints: u64 = row[4].parse().unwrap();
            let writes: u64 = row[3].parse().unwrap();
            // (endpoints - 1 owners) × (endpoints - 1 destinations).
            assert_eq!(writes, (endpoints - 1) * (endpoints - 1));
            let dist_ms: f64 = row[2].parse().unwrap();
            assert!(dist_ms > 0.0);
        }
    }
}
