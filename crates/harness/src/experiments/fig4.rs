//! Fig. 4: average time to process a PI-4 packet at the FM, per
//! algorithm, as a function of network size (switches).

use crate::report::{Chart, Series};
use crate::scenario::{Bench, Scenario};
use asi_core::Algorithm;
use asi_topo::Table1;

/// Runs the initial discovery on every Table 1 topology for each
/// algorithm and reports the measured mean per-packet FM processing time.
pub fn run(quick: bool) -> Chart {
    let topos = if quick {
        Table1::quick()
    } else {
        Table1::all()
    };
    let mut chart = Chart::new(
        "fig4",
        "Average PI-4 processing time at the FM vs network size",
        "Network Size (switches)",
        "PI-4 Processing Time (microsec)",
    );
    for alg in Algorithm::all() {
        let mut series = Series::new(alg.name());
        for spec in &topos {
            let topo = spec.build();
            let bench = Bench::start(&topo, &Scenario::new(alg), &[]);
            let run = bench.last_run();
            series.push(
                spec.switches() as f64,
                run.mean_fm_processing().as_micros_f64(),
            );
        }
        chart.series.push(series);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_matches_paper() {
        let chart = run(true);
        assert_eq!(chart.series.len(), 3);
        // At every size: SerialPacket > SerialDevice > Parallel, and all
        // in the paper's 10–25 microsecond band.
        for i in 0..chart.series[0].points.len() {
            let sp = chart.series[0].points[i].1;
            let sd = chart.series[1].points[i].1;
            let pa = chart.series[2].points[i].1;
            assert!(sp > sd && sd > pa, "ordering broken at point {i}");
            for v in [sp, sd, pa] {
                assert!((5.0..30.0).contains(&v), "implausible FM time {v}us");
            }
        }
        // Device count grows along each series (x sorted ascending is not
        // guaranteed, but sizes must vary).
        let xs: Vec<f64> = chart.series[0].points.iter().map(|p| p.0).collect();
        assert!(xs.iter().any(|&x| x != xs[0]));
    }
}
