//! Fig. 8: discovery time under varying FM and device processing-speed
//! factors (8×8 mesh, all devices active).

use crate::report::{Chart, Series};
use crate::scenario::{Bench, Scenario};
use asi_core::Algorithm;
use asi_topo::mesh;

/// FM-factor sweep of Fig. 8(a).
pub const FM_FACTORS: [f64; 7] = [0.25, 1.0 / 3.0, 0.5, 1.0, 2.0, 3.0, 4.0];
/// Device-factor sweep of Fig. 8(b), including the sub-1/3 regime where
/// the paper observes the Parallel algorithm finally degrading.
pub const DEVICE_FACTORS: [f64; 8] = [0.2, 0.25, 1.0 / 3.0, 0.5, 1.0, 2.0, 3.0, 4.0];

fn measure(quick: bool, fm_factor: f64, device_factor: f64, alg: Algorithm) -> f64 {
    let g = if quick { mesh(4, 4) } else { mesh(8, 8) };
    let scenario = Scenario::new(alg).with_factors(fm_factor, device_factor);
    let bench = Bench::start(&g.topology, &scenario, &[]);
    bench.last_run().discovery_time().as_secs_f64()
}

/// Fig. 8(a): sweep the FM factor, device factor fixed at 1.
pub fn run_fm_sweep(quick: bool) -> Chart {
    let mut chart = Chart::new(
        "fig8a",
        "Discovery time vs FM processing factor (device factor = 1)",
        "FM Processing Factor",
        "Discovery Time (sec)",
    );
    for alg in Algorithm::all() {
        let mut s = Series::new(alg.name());
        for &f in &FM_FACTORS {
            s.push(f, measure(quick, f, 1.0, alg));
        }
        chart.series.push(s);
    }
    chart
}

/// Fig. 8(b): sweep the device factor, FM factor fixed at 1.
pub fn run_device_sweep(quick: bool) -> Chart {
    let mut chart = Chart::new(
        "fig8b",
        "Discovery time vs device processing factor (FM factor = 1)",
        "Device Processing Factor",
        "Discovery Time (sec)",
    );
    for alg in Algorithm::all() {
        let mut s = Series::new(alg.name());
        for &f in &DEVICE_FACTORS {
            s.push(f, measure(quick, 1.0, f, alg));
        }
        chart.series.push(s);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    fn y_at(series: &Series, x: f64) -> f64 {
        series
            .points
            .iter()
            .find(|p| (p.0 - x).abs() < 1e-9)
            .expect("point present")
            .1
    }

    #[test]
    fn fig8a_faster_fm_widens_the_parallel_gap() {
        let chart = run_fm_sweep(true);
        let sp = &chart.series[0];
        let pa = &chart.series[2];
        // Discovery time decreases as the factor grows.
        for s in &chart.series {
            assert!(y_at(s, 0.25) > y_at(s, 4.0), "{} not improving", s.name);
        }
        // Relative serial/parallel gap grows with FM speed.
        let ratio_slow = y_at(sp, 0.25) / y_at(pa, 0.25);
        let ratio_fast = y_at(sp, 4.0) / y_at(pa, 4.0);
        assert!(
            ratio_fast > ratio_slow,
            "gap should widen: slow {ratio_slow:.3} fast {ratio_fast:.3}"
        );
    }

    #[test]
    fn fig8b_device_speed_only_helps_serial() {
        let chart = run_device_sweep(true);
        let sp = &chart.series[0];
        let pa = &chart.series[2];
        // Serial improves substantially from factor 0.2 to 4.
        assert!(y_at(sp, 0.2) > y_at(sp, 4.0) * 1.3);
        // Parallel is flat for factors >= 1/3 ...
        let pa_third = y_at(pa, 1.0 / 3.0);
        let pa_fast = y_at(pa, 4.0);
        assert!(
            (pa_third - pa_fast).abs() / pa_fast < 0.1,
            "parallel should be flat above 1/3: {pa_third} vs {pa_fast}"
        );
        // ... but degrades below 1/3 (the paper's observation).
        assert!(
            y_at(pa, 0.2) > pa_fast * 1.1,
            "parallel should degrade at factor 0.2"
        );
    }
}
