//! Topology-snapshot persistence for the harness: a JSON Lines rendering
//! of `asi_state::Snapshot` next to the crate's compact binary encoding,
//! plus save/load helpers that sniff the format on load.
//!
//! The JSONL form is one object per line — a header carrying the format
//! version, host DSN and the binary encoding's checksum, then one line
//! per device and one per link — so snapshots diff cleanly under line
//! tools and stream through the same machinery as discovery traces.
//! Every u64 that may not survive an f64 round trip (DSNs, checksum,
//! turn-pool words) is rendered as a `0x…` hex string.

use crate::json::{self, Json};
use asi_proto::{DeviceInfo, DeviceType, PortInfo, PortState, TurnPool};
use asi_state::{checksum_of, Snapshot, SnapshotDevice, SnapshotRoute, SNAPSHOT_VERSION};
use std::path::Path;

/// On-disk snapshot encodings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotFormat {
    /// The `asi-state` compact binary codec (magic `ASIS`).
    Binary,
    /// One JSON object per line (header, devices, links).
    Jsonl,
}

fn hex(v: u64) -> String {
    format!("{v:#x}")
}

fn from_hex(json: &Json, key: &str) -> Result<u64, String> {
    let s = json
        .get(key)
        .as_str()
        .ok_or_else(|| format!("missing hex field `{key}`"))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("field `{key}`: expected 0x-prefixed hex, got `{s}`"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("field `{key}`: {e}"))
}

fn get_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .as_u64()
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn get_bool(json: &Json, key: &str) -> Result<bool, String> {
    json.get(key)
        .as_bool()
        .ok_or_else(|| format!("missing boolean field `{key}`"))
}

fn type_tag(t: DeviceType) -> &'static str {
    match t {
        DeviceType::Switch => "switch",
        DeviceType::Endpoint => "endpoint",
    }
}

fn state_tag(s: PortState) -> &'static str {
    match s {
        PortState::Down => "down",
        PortState::Training => "training",
        PortState::Active => "active",
    }
}

fn device_to_json(d: &SnapshotDevice) -> Json {
    let pool_words: Vec<Json> = d
        .route
        .pool
        .words()
        .iter()
        .map(|&w| Json::Str(hex(w)))
        .collect();
    let ports: Vec<Json> = d
        .ports
        .iter()
        .map(|p| match p {
            None => Json::Null,
            Some(p) => Json::object()
                .with("state", state_tag(p.state))
                .with("link_width", p.link_width)
                .with("link_speed", p.link_speed)
                .with("peer_port", p.peer_port),
        })
        .collect();
    Json::object()
        .with("kind", "device")
        .with("dsn", hex(d.info.dsn))
        .with("type", type_tag(d.info.device_type))
        .with("port_count", d.info.port_count)
        .with("max_packet_size", d.info.max_packet_size)
        .with("fm_capable", d.info.fm_capable)
        .with("fm_priority", d.info.fm_priority)
        .with("egress", d.route.egress)
        .with("entry_port", d.route.entry_port)
        .with("hops", d.route.hops)
        .with("pool_len", d.route.pool.len_bits())
        .with("pool_capacity", d.route.pool.capacity())
        .with("pool_words", Json::Arr(pool_words))
        .with("ports", Json::Arr(ports))
}

fn device_from_json(json: &Json) -> Result<SnapshotDevice, String> {
    let device_type = match json.get("type").as_str() {
        Some("switch") => DeviceType::Switch,
        Some("endpoint") => DeviceType::Endpoint,
        other => return Err(format!("unknown device type {other:?}")),
    };
    let info = DeviceInfo {
        device_type,
        dsn: from_hex(json, "dsn")?,
        port_count: get_u64(json, "port_count")? as u16,
        max_packet_size: get_u64(json, "max_packet_size")? as u16,
        fm_capable: get_bool(json, "fm_capable")?,
        fm_priority: get_u64(json, "fm_priority")? as u8,
    };
    let words_json = json
        .get("pool_words")
        .as_array()
        .ok_or("missing `pool_words`")?;
    if words_json.len() != asi_proto::POOL_WORDS {
        return Err(format!(
            "`pool_words` has {} entries, not {}",
            words_json.len(),
            asi_proto::POOL_WORDS
        ));
    }
    let mut words = [0u64; asi_proto::POOL_WORDS];
    for (i, w) in words_json.iter().enumerate() {
        let s = w.as_str().ok_or("non-string pool word")?;
        let digits = s.strip_prefix("0x").ok_or("pool word not 0x-prefixed")?;
        words[i] = u64::from_str_radix(digits, 16).map_err(|e| format!("pool word: {e}"))?;
    }
    let pool = TurnPool::from_words(
        words,
        get_u64(json, "pool_len")? as u16,
        get_u64(json, "pool_capacity")? as u16,
    )
    .map_err(|e| format!("turn pool: {e:?}"))?;
    let route = SnapshotRoute {
        egress: get_u64(json, "egress")? as u8,
        entry_port: get_u64(json, "entry_port")? as u8,
        hops: get_u64(json, "hops")? as u16,
        pool,
    };
    let ports_json = json.get("ports").as_array().ok_or("missing `ports`")?;
    let mut ports = Vec::with_capacity(ports_json.len());
    for p in ports_json {
        if *p == Json::Null {
            ports.push(None);
            continue;
        }
        let state = match p.get("state").as_str() {
            Some("down") => PortState::Down,
            Some("training") => PortState::Training,
            Some("active") => PortState::Active,
            other => return Err(format!("unknown port state {other:?}")),
        };
        ports.push(Some(PortInfo {
            state,
            link_width: get_u64(p, "link_width")? as u8,
            link_speed: get_u64(p, "link_speed")? as u8,
            peer_port: get_u64(p, "peer_port")? as u8,
        }));
    }
    Ok(SnapshotDevice { info, route, ports })
}

/// Renders a snapshot as JSON Lines. The header repeats the binary
/// codec's checksum, so the two encodings cross-validate.
pub fn snapshot_to_jsonl(snapshot: &Snapshot) -> String {
    let mut snapshot = snapshot.clone();
    snapshot.canonicalize();
    let mut out = String::new();
    let header = Json::object()
        .with("kind", "snapshot")
        .with("version", u64::from(SNAPSHOT_VERSION))
        .with("host_dsn", hex(snapshot.host_dsn))
        .with("devices", snapshot.device_count())
        .with("links", snapshot.link_count())
        .with("checksum", hex(checksum_of(&snapshot)));
    out.push_str(&header.to_string_compact());
    out.push('\n');
    for d in &snapshot.devices {
        out.push_str(&device_to_json(d).to_string_compact());
        out.push('\n');
    }
    for &(a, ap, b, bp) in &snapshot.links {
        let link = Json::object()
            .with("kind", "link")
            .with("a", hex(a))
            .with("a_port", ap)
            .with("b", hex(b))
            .with("b_port", bp);
        out.push_str(&link.to_string_compact());
        out.push('\n');
    }
    out
}

/// Parses the JSONL rendering back into a snapshot. Record counts and
/// the header checksum are verified; a mismatch (hand-edited or
/// truncated dump) fails with a description.
pub fn snapshot_from_jsonl(text: &str) -> Result<Snapshot, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty snapshot file")?;
    let header = json::parse(first).map_err(|e| format!("line 1: {e}"))?;
    if header.get("kind").as_str() != Some("snapshot") {
        return Err("first record is not a snapshot header".into());
    }
    let version = get_u64(&header, "version")?;
    if version != u64::from(SNAPSHOT_VERSION) {
        return Err(format!(
            "snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        ));
    }
    let mut snapshot = Snapshot::new(from_hex(&header, "host_dsn")?);
    for (i, line) in lines {
        let record = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match record.get("kind").as_str() {
            Some("device") => snapshot
                .devices
                .push(device_from_json(&record).map_err(|e| format!("line {}: {e}", i + 1))?),
            Some("link") => snapshot.links.push((
                from_hex(&record, "a").map_err(|e| format!("line {}: {e}", i + 1))?,
                get_u64(&record, "a_port").map_err(|e| format!("line {}: {e}", i + 1))? as u8,
                from_hex(&record, "b").map_err(|e| format!("line {}: {e}", i + 1))?,
                get_u64(&record, "b_port").map_err(|e| format!("line {}: {e}", i + 1))? as u8,
            )),
            other => return Err(format!("line {}: unknown record kind {other:?}", i + 1)),
        }
    }
    snapshot.canonicalize();
    if snapshot.device_count() as u64 != get_u64(&header, "devices")?
        || snapshot.link_count() as u64 != get_u64(&header, "links")?
    {
        return Err("record counts do not match the header".into());
    }
    let stored = from_hex(&header, "checksum")?;
    let computed = checksum_of(&snapshot);
    if stored != computed {
        return Err(format!(
            "checksum mismatch: header {stored:#x}, records {computed:#x}"
        ));
    }
    Ok(snapshot)
}

/// Writes a snapshot to `path` in the requested format.
pub fn save_snapshot(
    path: &Path,
    snapshot: &Snapshot,
    format: SnapshotFormat,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    match format {
        SnapshotFormat::Binary => std::fs::write(path, snapshot.to_bytes()),
        SnapshotFormat::Jsonl => std::fs::write(path, snapshot_to_jsonl(snapshot)),
    }
}

/// Reads a snapshot from `path`, sniffing the format: files opening with
/// the `ASIS` magic decode through the binary codec, anything else is
/// parsed as JSONL.
pub fn load_snapshot(path: &Path) -> Result<Snapshot, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if bytes.starts_with(&asi_state::SNAPSHOT_MAGIC) {
        return Snapshot::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()));
    }
    let text =
        String::from_utf8(bytes).map_err(|e| format!("{}: not UTF-8: {e}", path.display()))?;
    snapshot_from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(3, 5).unwrap();
        let mut s = Snapshot::new(0xA51_0000_0001);
        s.devices.push(SnapshotDevice {
            info: DeviceInfo {
                device_type: DeviceType::Endpoint,
                dsn: 0xA51_0000_0001,
                port_count: 1,
                max_packet_size: 2048,
                fm_capable: true,
                fm_priority: 7,
            },
            route: SnapshotRoute {
                egress: 0,
                entry_port: 0,
                hops: 0,
                pool: TurnPool::new_spec(),
            },
            ports: vec![Some(PortInfo {
                state: PortState::Active,
                link_width: 1,
                link_speed: 10,
                peer_port: 4,
            })],
        });
        s.devices.push(SnapshotDevice {
            info: DeviceInfo {
                device_type: DeviceType::Switch,
                dsn: 0xA51_0000_0002,
                port_count: 3,
                max_packet_size: 2048,
                fm_capable: false,
                fm_priority: 0,
            },
            route: SnapshotRoute {
                egress: 0,
                entry_port: 4,
                hops: 1,
                pool,
            },
            ports: vec![
                Some(PortInfo {
                    state: PortState::Active,
                    link_width: 1,
                    link_speed: 10,
                    peer_port: 0,
                }),
                None,
                Some(PortInfo {
                    state: PortState::Down,
                    link_width: 0,
                    link_speed: 0,
                    peer_port: 0,
                }),
            ],
        });
        s.links.push((0xA51_0000_0001, 0, 0xA51_0000_0002, 4));
        s.canonicalize();
        s
    }

    #[test]
    fn jsonl_round_trips() {
        let s = sample();
        let text = snapshot_to_jsonl(&s);
        assert_eq!(text.lines().count(), 1 + 2 + 1);
        let back = snapshot_from_jsonl(&text).unwrap();
        assert_eq!(back, s);
        // JSONL and binary agree byte-for-byte after a round trip.
        assert_eq!(back.to_bytes(), s.to_bytes());
    }

    #[test]
    fn jsonl_header_checksum_matches_binary_codec() {
        let s = sample();
        let text = snapshot_to_jsonl(&s);
        let header = json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(
            header.get("checksum").as_str().unwrap(),
            format!("{:#x}", checksum_of(&s))
        );
    }

    #[test]
    fn jsonl_rejects_tampering() {
        let s = sample();
        let text = snapshot_to_jsonl(&s);
        // Drop a device line: counts no longer match the header.
        let truncated: Vec<&str> = text.lines().take(2).chain(text.lines().skip(3)).collect();
        let err = snapshot_from_jsonl(&truncated.join("\n")).unwrap_err();
        assert!(err.contains("counts"), "{err}");
        // Flip a port count: checksum catches it.
        let edited = text.replacen("\"port_count\":3", "\"port_count\":2", 1);
        let err = snapshot_from_jsonl(&edited).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        assert!(snapshot_from_jsonl("").is_err());
        assert!(snapshot_from_jsonl("{\"kind\":\"device\"}").is_err());
    }

    #[test]
    fn save_and_load_sniff_both_formats() {
        let dir = std::env::temp_dir().join("asi-harness-snapshot-test");
        let s = sample();
        let bin = dir.join("fabric.snap");
        let jsonl = dir.join("fabric.jsonl");
        save_snapshot(&bin, &s, SnapshotFormat::Binary).unwrap();
        save_snapshot(&jsonl, &s, SnapshotFormat::Jsonl).unwrap();
        assert_eq!(load_snapshot(&bin).unwrap(), s);
        assert_eq!(load_snapshot(&jsonl).unwrap(), s);
        // save → load → re-save is byte-identical in both formats.
        let reloaded = load_snapshot(&bin).unwrap();
        assert_eq!(std::fs::read(&bin).unwrap(), reloaded.to_bytes());
        assert_eq!(
            std::fs::read_to_string(&jsonl).unwrap(),
            snapshot_to_jsonl(&load_snapshot(&jsonl).unwrap())
        );
        assert!(load_snapshot(&dir.join("missing.snap")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn large_u64s_survive_the_json_path() {
        let mut s = sample();
        s.host_dsn = u64::MAX;
        s.devices[0].info.dsn = u64::MAX;
        s.links[0].0 = u64::MAX;
        s.canonicalize();
        let back = snapshot_from_jsonl(&snapshot_to_jsonl(&s)).unwrap();
        assert_eq!(back.host_dsn, u64::MAX);
        assert_eq!(back, s);
    }
}
