//! Property-based tests over the topology generators and path machinery.

use asi_proto::{apply_backward, apply_forward, turn_width, DeviceType, Direction, TurnCursor};
use asi_sim::SimRng;
use asi_topo::{
    fat_tree, irregular, mesh, routes_from, shortest_route, torus, IrregularSpec, NodeId,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any mesh/torus is connected, has one endpoint per switch, and its
    /// switch degrees are bounded by the dimension count + 1.
    #[test]
    fn grids_are_well_formed(w in 2usize..9, h in 2usize..9, wrap in any::<bool>()) {
        let g = if wrap { torus(w, h) } else { mesh(w, h) };
        let t = &g.topology;
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.switch_count(), w * h);
        prop_assert_eq!(t.endpoint_count(), w * h);
        for sw in t.switches() {
            let d = t.degree(sw);
            prop_assert!(d > 1, "switch under-connected");
            prop_assert!(d <= 5, "switch over-connected: {d}");
        }
        for ep in t.endpoints() {
            prop_assert_eq!(t.degree(ep), 1);
        }
    }

    /// Fat-tree counts always match the Lin et al. formulas and the
    /// fabric is connected with fully used switch ports.
    #[test]
    fn fat_trees_are_well_formed(k in 1u32..5, n in 1u32..4) {
        let m = 2 * k;
        let ft = fat_tree(m, n);
        let t = &ft.topology;
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.switch_count() as u32, (2 * n - 1) * k.pow(n - 1));
        prop_assert_eq!(t.endpoint_count() as u32, 2 * k.pow(n));
        for sw in t.switches() {
            prop_assert_eq!(t.degree(sw) as u32, m, "every switch port used");
        }
    }

    /// Every BFS route executes forward to its destination AND the
    /// response retraces it backward to the source (the PI-4 completion
    /// path), over arbitrary grids.
    #[test]
    fn routes_execute_forward_and_backward(
        w in 2usize..7,
        h in 2usize..7,
        wrap in any::<bool>(),
        src_i in any::<prop::sample::Index>(),
        dst_i in any::<prop::sample::Index>(),
    ) {
        let g = if wrap { torus(w, h) } else { mesh(w, h) };
        let t = &g.topology;
        let eps = t.endpoints();
        let src = *src_i.get(&eps);
        let dst = *dst_i.get(&eps);
        prop_assume!(src != dst);
        let route = shortest_route(t, src, dst).expect("connected");
        let pool = route.encode(t, asi_proto::MAX_POOL_BITS).unwrap();

        // Forward walk.
        let mut at = t.peer(src, route.source_port).unwrap();
        let mut cursor = TurnCursor::start(&pool, Direction::Forward);
        while !cursor.exhausted(&pool) {
            let node = t.node(at.node).unwrap();
            prop_assert_eq!(node.device_type, DeviceType::Switch);
            let (turn, next) = cursor.take_turn(&pool, turn_width(node.ports)).unwrap();
            at = t.peer(at.node, apply_forward(at.port, turn, node.ports)).unwrap();
            cursor = next;
        }
        prop_assert_eq!(at.node, dst);
        prop_assert_eq!(at.port, route.dest_port);

        // Backward walk (the completion): start where the request ended.
        let mut back = t.peer(dst, route.dest_port).unwrap();
        let mut cursor = TurnCursor::start(&pool, Direction::Backward);
        while !cursor.exhausted(&pool) {
            let node = t.node(back.node).unwrap();
            let (turn, next) = cursor.take_turn(&pool, turn_width(node.ports)).unwrap();
            back = t.peer(back.node, apply_backward(back.port, turn, node.ports)).unwrap();
            cursor = next;
        }
        prop_assert_eq!(back.node, src);
        prop_assert_eq!(back.port, route.source_port);
    }

    /// BFS distances satisfy the triangle property against the grid
    /// Manhattan metric (meshes only: the route length through switches
    /// equals Manhattan distance + 1 for endpoint-to-endpoint pairs).
    #[test]
    fn mesh_route_lengths_are_manhattan(
        w in 2usize..8,
        h in 2usize..8,
        x1 in 0usize..8, y1 in 0usize..8,
        x2 in 0usize..8, y2 in 0usize..8,
    ) {
        prop_assume!(x1 < w && x2 < w && y1 < h && y2 < h);
        prop_assume!((x1, y1) != (x2, y2));
        let g = mesh(w, h);
        let r = shortest_route(&g.topology, g.endpoint_at(x1, y1), g.endpoint_at(x2, y2))
            .unwrap();
        let manhattan = x1.abs_diff(x2) + y1.abs_diff(y2);
        prop_assert_eq!(r.hops.len(), manhattan + 1);
    }

    /// Every parameterised generator certifies clean under the
    /// whole-graph validator across its seeded range: connected,
    /// symmetric link tables, and no port double-use. This is the
    /// scale subsystem's contract — `validate()` is exactly what the
    /// generators run on their own output before handing it to
    /// discovery.
    #[test]
    fn every_generator_validates(
        w in 2usize..13,
        h in 2usize..13,
        k in 1u32..9,
        n in 1u32..4,
        seed in any::<u64>(),
        switches in 1usize..200,
        extra in 0usize..12,
        eps in 1usize..3,
    ) {
        prop_assert_eq!(mesh(w, h).topology.validate(), Ok(()));
        prop_assert_eq!(torus(w, h).topology.validate(), Ok(()));
        // 2k = arity, up to the 16-port fat-tree ceiling; n = levels.
        prop_assert_eq!(fat_tree(2 * k, n).topology.validate(), Ok(()));
        let mut rng = SimRng::new(seed);
        let t = irregular(
            IrregularSpec {
                switches,
                extra_links: extra,
                endpoints_per_switch: eps,
            },
            &mut rng,
        );
        prop_assert_eq!(t.validate(), Ok(()));
    }

    /// Irregular fabrics are connected and their routes cover every node.
    #[test]
    fn irregular_fabrics_connected_and_routable(
        seed in any::<u64>(),
        switches in 1usize..20,
        extra in 0usize..10,
        eps in 1usize..3,
    ) {
        let mut rng = SimRng::new(seed);
        let t = irregular(
            IrregularSpec {
                switches,
                extra_links: extra,
                endpoints_per_switch: eps,
            },
            &mut rng,
        );
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.endpoint_count(), switches * eps);
        let src = t.endpoints()[0];
        let routed = routes_from(&t, src).iter().flatten().count();
        prop_assert_eq!(routed, t.node_count() - 1);
    }

    /// reachable_from with removals never returns removed nodes and is
    /// monotone: removing more nodes never grows the reachable set.
    #[test]
    fn reachability_monotone_under_removal(
        w in 2usize..6,
        h in 2usize..6,
        kill in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
    ) {
        let g = mesh(w, h);
        let t = &g.topology;
        let switches = t.switches();
        let start = g.endpoint_at(0, 0);
        let mut removed: Vec<NodeId> = Vec::new();
        let mut last = t.reachable_from(start, &[]).len();
        for k in kill {
            let victim = *k.get(&switches);
            if victim == g.switch_at(0, 0) || removed.contains(&victim) {
                continue;
            }
            removed.push(victim);
            let reach = t.reachable_from(start, &removed);
            for r in &removed {
                prop_assert!(!reach.contains(r));
            }
            prop_assert!(reach.len() <= last);
            last = reach.len();
        }
    }
}
