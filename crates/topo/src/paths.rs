//! Ground-truth shortest paths and turn-pool encoding.
//!
//! The fabric manager computes its own routes from the *discovered*
//! topology database (crate `asi-core`); the functions here operate on the
//! generator's ground-truth [`Topology`] and are used to validate the FM's
//! results, to pre-load endpoint route tables, and for the 31-bit
//! spec-reachability study.

use crate::graph::{NodeId, Topology};
use asi_proto::{turn_for, turn_width, DeviceType, TurnError, TurnPool, SPEC_POOL_BITS};
use std::collections::VecDeque;

/// One switch traversal on a route.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SwitchHop {
    /// The switch being crossed.
    pub switch: NodeId,
    /// Port the packet enters on.
    pub ingress: u8,
    /// Port the packet leaves on.
    pub egress: u8,
}

/// A source route from one device to another.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Route {
    /// Switches crossed, in order. Empty when source and destination share
    /// a link.
    pub hops: Vec<SwitchHop>,
    /// Port the packet leaves the source on.
    pub source_port: u8,
    /// Port the packet arrives at on the destination.
    pub dest_port: u8,
}

impl Route {
    /// Number of link traversals (switch hops + 1).
    pub fn link_hops(&self) -> usize {
        self.hops.len() + 1
    }

    /// Encodes the route into a turn pool of the given capacity.
    pub fn encode(&self, topo: &Topology, capacity: u16) -> Result<TurnPool, TurnError> {
        let mut pool = TurnPool::with_capacity(capacity);
        for hop in &self.hops {
            let ports = topo
                .node(hop.switch)
                .expect("route references unknown switch")
                .ports;
            let turn = turn_for(hop.ingress, hop.egress, ports);
            pool.push_turn(turn, turn_width(ports))?;
        }
        Ok(pool)
    }

    /// Total turn bits the route needs.
    pub fn turn_bits(&self, topo: &Topology) -> u16 {
        self.hops
            .iter()
            .map(|h| {
                u16::from(turn_width(
                    topo.node(h.switch).expect("unknown switch").ports,
                ))
            })
            .sum()
    }
}

/// Breadth-first shortest-path tree from `src` over the ground truth.
///
/// Returns, for each node, the predecessor attachment info needed to
/// reconstruct routes: `(prev_node, prev_egress_port, entry_port)`.
struct BfsTree {
    prev: Vec<Option<(NodeId, u8, u8)>>,
    src: NodeId,
}

fn bfs(topo: &Topology, src: NodeId) -> BfsTree {
    let mut prev: Vec<Option<(NodeId, u8, u8)>> = vec![None; topo.node_count()];
    let mut seen = vec![false; topo.node_count()];
    seen[src.idx()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(n) = queue.pop_front() {
        for (port, peer) in topo.neighbors(n) {
            if !seen[peer.node.idx()] {
                seen[peer.node.idx()] = true;
                prev[peer.node.idx()] = Some((n, port, peer.port));
                queue.push_back(peer.node);
            }
        }
    }
    BfsTree { prev, src }
}

fn route_from_tree(tree: &BfsTree, dst: NodeId) -> Option<Route> {
    if dst == tree.src {
        return None;
    }
    tree.prev[dst.idx()]?;
    // Walk back to the source, collecting (node, egress, entry-at-next).
    let mut chain: Vec<(NodeId, u8, u8)> = Vec::new();
    let mut cur = dst;
    while cur != tree.src {
        let (p, egress, entry) = tree.prev[cur.idx()]?;
        chain.push((p, egress, entry));
        cur = p;
    }
    chain.reverse();
    // chain[i] = (node_i, egress from node_i, ingress at node_{i+1});
    // node_0 = src, the final arrival is dst.
    let source_port = chain[0].1;
    let dest_port = chain.last().unwrap().2;
    let mut hops = Vec::with_capacity(chain.len().saturating_sub(1));
    for i in 1..chain.len() {
        let (switch, egress, _) = chain[i];
        let ingress = chain[i - 1].2;
        hops.push(SwitchHop {
            switch,
            ingress,
            egress,
        });
    }
    Some(Route {
        hops,
        source_port,
        dest_port,
    })
}

/// Shortest route from `src` to `dst`, or `None` if unreachable or equal.
pub fn shortest_route(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Route> {
    route_from_tree(&bfs(topo, src), dst)
}

/// Shortest routes from `src` to every other node (`None` when
/// unreachable). Index = node id.
pub fn routes_from(topo: &Topology, src: NodeId) -> Vec<Option<Route>> {
    let tree = bfs(topo, src);
    (0..topo.node_count() as u32)
        .map(|i| route_from_tree(&tree, NodeId(i)))
        .collect()
}

/// Result of the 31-bit turn-pool reachability study for one source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecReachability {
    /// Devices reachable at all.
    pub reachable: usize,
    /// Devices whose shortest route fits the 31-bit spec pool.
    pub within_spec: usize,
    /// Largest turn-bit requirement among shortest routes.
    pub max_turn_bits: u16,
}

/// Measures how much of the fabric a manager at `src` can address within
/// the specification's 31-bit turn pool (DESIGN.md's spec-limit study).
pub fn spec_reachability(topo: &Topology, src: NodeId) -> SpecReachability {
    let mut reachable = 0;
    let mut within = 0;
    let mut max_bits = 0u16;
    for route in routes_from(topo, src).into_iter().flatten() {
        reachable += 1;
        let bits = route.turn_bits(topo);
        max_bits = max_bits.max(bits);
        if bits <= SPEC_POOL_BITS {
            within += 1;
        }
    }
    SpecReachability {
        reachable,
        within_spec: within,
        max_turn_bits: max_bits,
    }
}

/// Picks the first FM-capable endpoint by convention (lowest id); the
/// generators attach endpoints in deterministic order so this is stable.
pub fn default_fm_endpoint(topo: &Topology) -> Option<NodeId> {
    topo.nodes()
        .find(|(_, n)| n.device_type == DeviceType::Endpoint)
        .map(|(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fattree::fat_tree;
    use crate::mesh::{mesh, torus, PORT_EAST, PORT_ENDPOINT, PORT_WEST};
    use asi_proto::{apply_forward, Direction, TurnCursor, MAX_POOL_BITS};

    #[test]
    fn route_to_directly_attached_neighbor_has_no_hops() {
        let g = mesh(3, 3);
        let ep = g.endpoint_at(0, 0);
        let sw = g.switch_at(0, 0);
        let r = shortest_route(&g.topology, ep, sw).unwrap();
        assert!(r.hops.is_empty());
        assert_eq!(r.source_port, 0);
        assert_eq!(r.dest_port, PORT_ENDPOINT);
        assert_eq!(r.link_hops(), 1);
    }

    #[test]
    fn route_to_self_is_none() {
        let g = mesh(3, 3);
        let ep = g.endpoint_at(0, 0);
        assert!(shortest_route(&g.topology, ep, ep).is_none());
    }

    #[test]
    fn route_across_mesh_has_expected_length() {
        let g = mesh(3, 3);
        // ep(0,0) -> ep(2,0): through sw(0,0), sw(1,0), sw(2,0).
        let r = shortest_route(&g.topology, g.endpoint_at(0, 0), g.endpoint_at(2, 0)).unwrap();
        assert_eq!(r.hops.len(), 3);
        assert_eq!(r.hops[0].switch, g.switch_at(0, 0));
        assert_eq!(r.hops[0].ingress, PORT_ENDPOINT);
        assert_eq!(r.hops[0].egress, PORT_EAST);
        assert_eq!(r.hops[1].ingress, PORT_WEST);
        assert_eq!(r.hops[2].egress, PORT_ENDPOINT);
    }

    #[test]
    fn bfs_routes_are_shortest() {
        // In a 4x4 torus the two endpoints two hops apart horizontally
        // must use 3 switches, never more.
        let g = torus(4, 4);
        let r = shortest_route(&g.topology, g.endpoint_at(0, 0), g.endpoint_at(2, 0)).unwrap();
        assert_eq!(r.hops.len(), 3);
        // Wraparound shortcut: (0,0) to (3,0) is 1 hop through the wrap.
        let r = shortest_route(&g.topology, g.endpoint_at(0, 0), g.endpoint_at(3, 0)).unwrap();
        assert_eq!(r.hops.len(), 2);
    }

    #[test]
    fn routes_from_covers_connected_graph() {
        let g = mesh(4, 4);
        let src = g.endpoint_at(0, 0);
        let routes = routes_from(&g.topology, src);
        let reachable = routes.iter().flatten().count();
        assert_eq!(reachable, g.topology.node_count() - 1);
    }

    /// Encode every mesh route into a turn pool and re-execute it with the
    /// switch forwarding arithmetic: it must arrive at the right place.
    #[test]
    fn encoded_routes_execute_correctly() {
        let g = mesh(4, 4);
        let topo = &g.topology;
        let src = g.endpoint_at(0, 0);
        for (dst, route) in routes_from(topo, src).into_iter().enumerate() {
            let Some(route) = route else { continue };
            let pool = route.encode(topo, MAX_POOL_BITS).unwrap();
            // Walk the fabric: start at src, leave on source_port.
            let mut cursor = TurnCursor::start(&pool, Direction::Forward);
            let mut at = topo.peer(src, route.source_port).unwrap();
            while !cursor.exhausted(&pool) {
                let node = topo.node(at.node).unwrap();
                assert_eq!(node.device_type, DeviceType::Switch);
                let width = turn_width(node.ports);
                let (turn, next) = cursor.take_turn(&pool, width).unwrap();
                let egress = apply_forward(at.port, turn, node.ports);
                at = topo.peer(at.node, egress).unwrap();
                cursor = next;
            }
            assert_eq!(at.node, NodeId(dst as u32), "route landed at wrong node");
            assert_eq!(at.port, route.dest_port);
        }
    }

    #[test]
    fn turn_bits_accounting() {
        let g = mesh(3, 3);
        let r = shortest_route(&g.topology, g.endpoint_at(0, 0), g.endpoint_at(2, 2)).unwrap();
        // 5 switches at 4 bits each (16 ports).
        assert_eq!(r.hops.len(), 5);
        assert_eq!(r.turn_bits(&g.topology), 20);
    }

    #[test]
    fn spec_pool_covers_small_meshes_only() {
        // 3x3 mesh: max 5 switch hops * 4 bits = 20 <= 31: all reachable.
        let g = mesh(3, 3);
        let s = spec_reachability(&g.topology, g.endpoint_at(0, 0));
        assert_eq!(s.reachable, 17);
        assert_eq!(s.within_spec, 17);
        assert_eq!(s.max_turn_bits, 20);

        // 8x8 mesh from a corner: farthest endpoint needs 15 switches * 4
        // bits = 60 > 31, so part of the fabric is out of spec reach.
        let g = mesh(8, 8);
        let s = spec_reachability(&g.topology, g.endpoint_at(0, 0));
        assert_eq!(s.reachable, 127);
        assert!(s.within_spec < s.reachable);
        assert_eq!(s.max_turn_bits, 60);
    }

    #[test]
    fn fat_tree_routes_climb_and_descend() {
        let ft = fat_tree(4, 2);
        let topo = &ft.topology;
        let eps = topo.endpoints();
        // Endpoints in different halves route through a root: 3 switches.
        let a = eps[0];
        let b = *eps.last().unwrap();
        let r = shortest_route(topo, a, b).unwrap();
        assert_eq!(r.hops.len(), 3);
        // Same leaf switch: 1 switch.
        let r = shortest_route(topo, eps[0], eps[1]).unwrap();
        assert_eq!(r.hops.len(), 1);
    }

    #[test]
    fn default_fm_endpoint_is_first_endpoint() {
        let g = mesh(3, 3);
        assert_eq!(default_fm_endpoint(&g.topology), Some(g.endpoint_at(0, 0)));
        let empty = Topology::new("no endpoints");
        assert_eq!(default_fm_endpoint(&empty), None);
    }

    #[test]
    fn unreachable_nodes_have_no_route() {
        let mut t = Topology::new("islands");
        let a = t.add_endpoint("a");
        let b = t.add_endpoint("b");
        assert!(shortest_route(&t, a, b).is_none());
    }
}
