//! `asi-topo` — fabric topologies for the Advanced Switching reproduction.
//!
//! Provides the ground-truth topology graph ([`Topology`]), the generators
//! for every topology the paper evaluates (2-D meshes and tori, and the
//! *m*-port *n*-trees of Lin et al. — see [`table1::Table1`]), a random
//! irregular generator, and shortest-path / turn-pool-encoding utilities
//! used for validation and for the 31-bit spec-reachability study.

#![warn(missing_docs)]

pub mod fattree;
pub mod graph;
pub mod irregular;
pub mod mesh;
pub mod paths;
pub mod table1;

pub use fattree::{fat_tree, FatTree};
pub use graph::{Attachment, Link, Node, NodeId, Topology, TopologyError, ValidationError};
pub use irregular::{irregular, IrregularSpec};
pub use mesh::{mesh, torus, Grid, PORT_ENDPOINT, SWITCH_PORTS};
pub use paths::{
    default_fm_endpoint, routes_from, shortest_route, spec_reachability, Route, SpecReachability,
    SwitchHop,
};
pub use table1::Table1;
