//! Random irregular topology generator (extension beyond the paper's
//! regular topologies, useful for robustness testing of the discovery
//! algorithms).

use crate::graph::{NodeId, Topology};
use crate::mesh::SWITCH_PORTS;
use asi_sim::SimRng;

/// Parameters for the irregular generator.
#[derive(Clone, Copy, Debug)]
pub struct IrregularSpec {
    /// Number of switches.
    pub switches: usize,
    /// Extra links beyond the spanning tree (adds redundancy/alternate
    /// paths, exercising the FM's DSN dedup logic).
    pub extra_links: usize,
    /// Endpoints per switch.
    pub endpoints_per_switch: usize,
}

impl Default for IrregularSpec {
    fn default() -> Self {
        IrregularSpec {
            switches: 16,
            extra_links: 8,
            endpoints_per_switch: 1,
        }
    }
}

/// Builds a random connected topology: a random spanning tree over the
/// switches plus `extra_links` random redundant links, with endpoints
/// attached to every switch. Deterministic for a given `rng` state.
pub fn irregular(spec: IrregularSpec, rng: &mut SimRng) -> Topology {
    assert!(spec.switches >= 1, "need at least one switch");
    let mut topo = Topology::new(format!("irregular-{}sw", spec.switches));
    let switches: Vec<NodeId> = (0..spec.switches)
        .map(|i| topo.add_switch(SWITCH_PORTS, format!("sw{i}")))
        .collect();

    // Track next free port per switch; endpoints take the tail ports, so
    // inter-switch wiring uses the head ports up to `cap`.
    let cap = usize::from(SWITCH_PORTS)
        .checked_sub(spec.endpoints_per_switch)
        .expect("too many endpoints per switch") as u8;
    let mut used = vec![0u8; spec.switches];

    // Random spanning tree: connect each switch (in shuffled order) to a
    // random already-connected switch with spare ports. Switches whose
    // inter-switch ports filled up are evicted from the candidate list as
    // they are drawn, so attachment stays amortized O(1) per switch and
    // the generator scales to fabrics with thousands of switches.
    let mut order: Vec<usize> = (1..spec.switches).collect();
    rng.shuffle(&mut order);
    let mut open = vec![0usize];
    for &i in &order {
        let j = loop {
            assert!(
                !open.is_empty(),
                "could not attach switch {i}: ports exhausted"
            );
            let k = rng.gen_index(open.len());
            let j = open[k];
            if used[j] < cap {
                break j;
            }
            open.swap_remove(k);
        };
        let (pi, pj) = (used[i], used[j]);
        used[i] += 1;
        used[j] += 1;
        topo.connect(switches[i], pi, switches[j], pj)
            .expect("ports tracked as free");
        open.push(i);
    }

    // Redundant extra links.
    let mut added = 0;
    let mut attempts = 0;
    while added < spec.extra_links && attempts < spec.extra_links * 20 + 20 {
        attempts += 1;
        let i = rng.gen_index(spec.switches);
        let j = rng.gen_index(spec.switches);
        if i == j || used[i] >= cap || used[j] >= cap {
            continue;
        }
        let (pi, pj) = (used[i], used[j]);
        used[i] += 1;
        used[j] += 1;
        topo.connect(switches[i], pi, switches[j], pj)
            .expect("ports tracked as free");
        added += 1;
    }

    // Endpoints on the tail ports.
    for (i, &sw) in switches.iter().enumerate() {
        for e in 0..spec.endpoints_per_switch {
            let ep = topo.add_endpoint(format!("ep{i}.{e}"));
            let port = SWITCH_PORTS - 1 - e as u8;
            topo.connect(sw, port, ep, 0).expect("tail port free");
        }
    }

    topo.validate().expect("generated fabric is well-formed");
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..20 {
            let mut rng = SimRng::new(seed);
            let t = irregular(IrregularSpec::default(), &mut rng);
            assert!(t.is_connected(), "seed {seed} produced disconnected fabric");
        }
    }

    #[test]
    fn counts_match_spec() {
        let mut rng = SimRng::new(7);
        let spec = IrregularSpec {
            switches: 10,
            extra_links: 5,
            endpoints_per_switch: 2,
        };
        let t = irregular(spec, &mut rng);
        assert_eq!(t.switch_count(), 10);
        assert_eq!(t.endpoint_count(), 20);
        // Links: 9 tree + up to 5 extra + 20 endpoint links.
        let l = t.links().len();
        assert!((9 + 20..=9 + 5 + 20).contains(&l), "links {l}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let build = |seed| {
            let mut rng = SimRng::new(seed);
            let t = irregular(IrregularSpec::default(), &mut rng);
            t.links().to_vec()
        };
        assert_eq!(build(42), build(42));
        assert_ne!(build(42), build(43));
    }

    #[test]
    fn scales_to_thousands_of_switches() {
        let mut rng = SimRng::new(9);
        let spec = IrregularSpec {
            switches: 2048,
            extra_links: 512,
            endpoints_per_switch: 1,
        };
        let t = irregular(spec, &mut rng);
        assert_eq!(t.switch_count(), 2048);
        assert_eq!(t.endpoint_count(), 2048);
        assert_eq!(t.validate(), Ok(()));
    }

    #[test]
    fn single_switch_degenerate_case() {
        let mut rng = SimRng::new(1);
        let t = irregular(
            IrregularSpec {
                switches: 1,
                extra_links: 0,
                endpoints_per_switch: 1,
            },
            &mut rng,
        );
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.endpoint_count(), 1);
        assert!(t.is_connected());
    }
}
