//! The paper's Table 1: the exact set of topologies evaluated.
//!
//! | Topology        | Switches | Endpoints | Total |
//! |-----------------|----------|-----------|-------|
//! | 3×3 mesh/torus  | 9        | 9         | 18    |
//! | 4×4 mesh/torus  | 16       | 16        | 32    |
//! | 6×6 mesh/torus  | 36       | 36        | 72    |
//! | 8×8 mesh/torus  | 64       | 64        | 128   |
//! | 16×16 torus     | 256      | 256       | 512   |
//! | 4-port 2-tree   | 6        | 8         | 14    |
//! | 4-port 3-tree   | 20       | 16        | 36    |
//! | 4-port 4-tree   | 56       | 32        | 88    |
//! | 8-port 2-tree   | 12       | 32        | 44    |
//!
//! Meshes and tori host one single-port endpoint per switch (the paper's
//! model uses 1-port fabric endpoints); fat-trees follow the Lin et al.
//! formulas.

use crate::fattree::{expected_endpoints, expected_switches, fat_tree};
use crate::graph::Topology;
use crate::irregular::{irregular, IrregularSpec};
use crate::mesh::{mesh, torus};
use asi_sim::SimRng;

/// One row of Table 1.
///
/// ```
/// use asi_topo::Table1;
/// let topo = Table1::Mesh(3).build();
/// assert_eq!(topo.node_count(), 18); // 9 switches + 9 endpoints
/// assert!(topo.is_connected());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Table1 {
    /// W×W mesh.
    Mesh(usize),
    /// W×W torus.
    Torus(usize),
    /// m-port n-tree.
    FatTree(u32, u32),
    /// Random irregular fabric with N switches (one endpoint each) —
    /// beyond the paper's Table 1, used by the scale sweeps. The seed is
    /// derived from N, so the same variant always builds the same
    /// fabric.
    Irregular(usize),
}

impl Table1 {
    /// Every topology in the paper's Table 1, in presentation order.
    pub fn all() -> Vec<Table1> {
        vec![
            Table1::Mesh(3),
            Table1::Torus(3),
            Table1::Mesh(4),
            Table1::Torus(4),
            Table1::Mesh(6),
            Table1::Torus(6),
            Table1::Mesh(8),
            Table1::Torus(8),
            Table1::Torus(16),
            Table1::FatTree(4, 2),
            Table1::FatTree(4, 3),
            Table1::FatTree(4, 4),
            Table1::FatTree(8, 2),
        ]
    }

    /// A smaller subset for fast test/bench sweeps.
    pub fn quick() -> Vec<Table1> {
        vec![
            Table1::Mesh(3),
            Table1::Torus(4),
            Table1::FatTree(4, 2),
            Table1::FatTree(8, 2),
        ]
    }

    /// Larger instances of the same families for throughput/scale
    /// sweeps — not part of the paper's Table 1. The biggest cell is the
    /// 64×64 mesh (8192 devices) exercised by the `stress` CLI mode.
    pub fn scale() -> Vec<Table1> {
        vec![
            Table1::Mesh(16),
            Table1::Torus(16),
            Table1::Mesh(32),
            Table1::FatTree(8, 3),
            Table1::FatTree(16, 3),
            Table1::Irregular(1024),
        ]
    }

    /// Paper-style display name.
    pub fn name(&self) -> String {
        match *self {
            Table1::Mesh(w) => format!("{w}x{w} mesh"),
            Table1::Torus(w) => format!("{w}x{w} torus"),
            Table1::FatTree(m, n) => format!("{m}-port {n}-tree"),
            Table1::Irregular(n) => format!("irregular-{n}sw"),
        }
    }

    /// Expected switch count.
    pub fn switches(&self) -> usize {
        match *self {
            Table1::Mesh(w) | Table1::Torus(w) => w * w,
            Table1::FatTree(m, n) => expected_switches(m, n),
            Table1::Irregular(n) => n,
        }
    }

    /// Expected endpoint count.
    pub fn endpoints(&self) -> usize {
        match *self {
            Table1::Mesh(w) | Table1::Torus(w) => w * w,
            Table1::FatTree(m, n) => expected_endpoints(m, n),
            Table1::Irregular(n) => n,
        }
    }

    /// Expected total device count.
    pub fn total_devices(&self) -> usize {
        self.switches() + self.endpoints()
    }

    /// Builds the topology.
    pub fn build(&self) -> Topology {
        match *self {
            Table1::Mesh(w) => mesh(w, w).topology,
            Table1::Torus(w) => torus(w, w).topology,
            Table1::FatTree(m, n) => fat_tree(m, n).topology,
            Table1::Irregular(n) => {
                // Seed fixed by the switch count: the variant stays `Copy`
                // and a given cell name always denotes the same fabric.
                let mut rng = SimRng::new(0xA51_5EED ^ n as u64);
                irregular(
                    IrregularSpec {
                        switches: n,
                        extra_links: n / 4,
                        endpoints_per_switch: 1,
                    },
                    &mut rng,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_thirteen_rows() {
        assert_eq!(Table1::all().len(), 13);
    }

    #[test]
    fn built_topologies_match_declared_counts() {
        for t in Table1::all() {
            let topo = t.build();
            assert_eq!(topo.switch_count(), t.switches(), "{}", t.name());
            assert_eq!(topo.endpoint_count(), t.endpoints(), "{}", t.name());
            assert_eq!(topo.node_count(), t.total_devices(), "{}", t.name());
            assert!(topo.is_connected(), "{} disconnected", t.name());
        }
    }

    #[test]
    fn paper_totals() {
        assert_eq!(Table1::Mesh(3).total_devices(), 18);
        assert_eq!(Table1::Mesh(8).total_devices(), 128);
        assert_eq!(Table1::Torus(16).total_devices(), 512);
        assert_eq!(Table1::FatTree(4, 2).total_devices(), 14);
        assert_eq!(Table1::FatTree(4, 3).total_devices(), 36);
        assert_eq!(Table1::FatTree(4, 4).total_devices(), 88);
        assert_eq!(Table1::FatTree(8, 2).total_devices(), 44);
    }

    #[test]
    fn names_match_paper_style() {
        assert_eq!(Table1::Mesh(6).name(), "6x6 mesh");
        assert_eq!(Table1::Torus(16).name(), "16x16 torus");
        assert_eq!(Table1::FatTree(4, 3).name(), "4-port 3-tree");
    }

    #[test]
    fn scale_set_matches_declared_counts() {
        for t in Table1::scale() {
            let topo = t.build();
            assert_eq!(topo.switch_count(), t.switches(), "{}", t.name());
            assert_eq!(topo.endpoint_count(), t.endpoints(), "{}", t.name());
            assert_eq!(topo.validate(), Ok(()), "{}", t.name());
        }
    }

    #[test]
    fn irregular_variant_is_reproducible() {
        let a = Table1::Irregular(64).build();
        let b = Table1::Irregular(64).build();
        assert_eq!(a.links(), b.links());
        assert_eq!(a.name, "irregular-64sw");
    }

    #[test]
    fn quick_subset_is_subset_of_all() {
        let all = Table1::all();
        for q in Table1::quick() {
            assert!(all.contains(&q));
        }
    }
}
