//! 2-D mesh and torus generators.
//!
//! Following the paper's simulation model: 16-port switches arranged in a
//! W×H grid, each hosting one single-port endpoint. Port conventions on
//! every switch:
//!
//! | port | neighbour |
//! |------|-----------|
//! | 0    | east (x+1) |
//! | 1    | west (x−1) |
//! | 2    | south (y+1) |
//! | 3    | north (y−1) |
//! | 4    | local endpoint |
//! | 5–15 | unused |

use crate::graph::{NodeId, Topology};

/// Switch port count used by the paper's model.
pub const SWITCH_PORTS: u8 = 16;
/// Port leading east.
pub const PORT_EAST: u8 = 0;
/// Port leading west.
pub const PORT_WEST: u8 = 1;
/// Port leading south.
pub const PORT_SOUTH: u8 = 2;
/// Port leading north.
pub const PORT_NORTH: u8 = 3;
/// Port attached to the local endpoint.
pub const PORT_ENDPOINT: u8 = 4;

/// Output of a grid generator: the topology plus id lookup tables.
#[derive(Clone, Debug)]
pub struct Grid {
    /// The generated topology.
    pub topology: Topology,
    /// `switch[y * width + x]`.
    pub switches: Vec<NodeId>,
    /// `endpoint[y * width + x]` — the endpoint hosted by that switch.
    pub endpoints: Vec<NodeId>,
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
}

impl Grid {
    /// Switch at `(x, y)`.
    pub fn switch_at(&self, x: usize, y: usize) -> NodeId {
        self.switches[y * self.width + x]
    }

    /// Endpoint hosted at `(x, y)`.
    pub fn endpoint_at(&self, x: usize, y: usize) -> NodeId {
        self.endpoints[y * self.width + x]
    }
}

fn build_grid(width: usize, height: usize, wrap: bool, name: String) -> Grid {
    assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
    let mut topo = Topology::new(name);
    let mut switches = Vec::with_capacity(width * height);
    let mut endpoints = Vec::with_capacity(width * height);

    for y in 0..height {
        for x in 0..width {
            let sw = topo.add_switch(SWITCH_PORTS, format!("sw({x},{y})"));
            let ep = topo.add_endpoint(format!("ep({x},{y})"));
            topo.connect(sw, PORT_ENDPOINT, ep, 0)
                .expect("endpoint port free");
            switches.push(sw);
            endpoints.push(ep);
        }
    }

    let at = |x: usize, y: usize| switches[y * width + x];
    // East links: (x,y).east <-> (x+1,y).west
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                topo.connect(at(x, y), PORT_EAST, at(x + 1, y), PORT_WEST)
                    .expect("mesh port free");
            } else if wrap && width > 2 {
                topo.connect(at(x, y), PORT_EAST, at(0, y), PORT_WEST)
                    .expect("torus wrap port free");
            }
        }
    }
    // South links: (x,y).south <-> (x,y+1).north
    for y in 0..height {
        for x in 0..width {
            if y + 1 < height {
                topo.connect(at(x, y), PORT_SOUTH, at(x, y + 1), PORT_NORTH)
                    .expect("mesh port free");
            } else if wrap && height > 2 {
                topo.connect(at(x, y), PORT_SOUTH, at(x, 0), PORT_NORTH)
                    .expect("torus wrap port free");
            }
        }
    }

    topo.validate().expect("generated grid is well-formed");
    Grid {
        topology: topo,
        switches,
        endpoints,
        width,
        height,
    }
}

/// Builds a W×H mesh (no wraparound).
pub fn mesh(width: usize, height: usize) -> Grid {
    build_grid(width, height, false, format!("{width}x{height} mesh"))
}

/// Builds a W×H torus (wraparound in both dimensions).
///
/// For a dimension of size 2 the wrap link would duplicate the existing
/// mesh link on the same port pair, so it is omitted — matching common
/// practice (a 2-ring *is* a single link).
pub fn torus(width: usize, height: usize) -> Grid {
    build_grid(width, height, true, format!("{width}x{height} torus"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let g = mesh(3, 3);
        assert_eq!(g.topology.switch_count(), 9);
        assert_eq!(g.topology.endpoint_count(), 9);
        assert_eq!(g.topology.node_count(), 18);
        // Links: 2 * 3 * 2 (mesh rows/cols) + 9 endpoint links = 12 + 9.
        assert_eq!(g.topology.links().len(), 21);
    }

    #[test]
    fn torus_counts() {
        let g = torus(4, 4);
        assert_eq!(g.topology.switch_count(), 16);
        // Torus links: 2 * 16 = 32, plus 16 endpoint links.
        assert_eq!(g.topology.links().len(), 48);
    }

    #[test]
    fn mesh_is_connected() {
        for (w, h) in [(2, 2), (3, 3), (4, 4), (6, 6), (8, 8), (3, 5)] {
            let g = mesh(w, h);
            assert!(g.topology.is_connected(), "{w}x{h} mesh disconnected");
        }
    }

    #[test]
    fn large_grids_build_and_validate() {
        // The scale subsystem drives grids up to 64x64 (8192 devices).
        let g = mesh(64, 64);
        assert_eq!(g.topology.switch_count(), 4096);
        assert_eq!(g.topology.node_count(), 8192);
        assert_eq!(g.topology.validate(), Ok(()));
        let t = torus(64, 64);
        assert_eq!(t.topology.links().len(), 2 * 4096 + 4096);
        assert_eq!(t.topology.validate(), Ok(()));
    }

    #[test]
    fn torus_is_connected() {
        for (w, h) in [(3, 3), (4, 4), (8, 8), (16, 16)] {
            let g = torus(w, h);
            assert!(g.topology.is_connected(), "{w}x{h} torus disconnected");
        }
    }

    #[test]
    fn mesh_corner_degrees() {
        let g = mesh(3, 3);
        // Corner: 2 mesh neighbours + endpoint.
        assert_eq!(g.topology.degree(g.switch_at(0, 0)), 3);
        // Edge: 3 + endpoint.
        assert_eq!(g.topology.degree(g.switch_at(1, 0)), 4);
        // Center: 4 + endpoint.
        assert_eq!(g.topology.degree(g.switch_at(1, 1)), 5);
        // Every endpoint has exactly one link.
        for y in 0..3 {
            for x in 0..3 {
                assert_eq!(g.topology.degree(g.endpoint_at(x, y)), 1);
            }
        }
    }

    #[test]
    fn torus_degrees_uniform() {
        let g = torus(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(g.topology.degree(g.switch_at(x, y)), 5, "({x},{y})");
            }
        }
    }

    #[test]
    fn mesh_wiring_directions() {
        let g = mesh(3, 3);
        let topo = &g.topology;
        // (0,0).east is (1,0); (1,0).west is (0,0).
        let east = topo.peer(g.switch_at(0, 0), PORT_EAST).unwrap();
        assert_eq!(east.node, g.switch_at(1, 0));
        assert_eq!(east.port, PORT_WEST);
        let south = topo.peer(g.switch_at(1, 1), PORT_SOUTH).unwrap();
        assert_eq!(south.node, g.switch_at(1, 2));
        assert_eq!(south.port, PORT_NORTH);
        // Mesh borders are unconnected.
        assert!(topo.peer(g.switch_at(2, 0), PORT_EAST).is_none());
        assert!(topo.peer(g.switch_at(0, 0), PORT_NORTH).is_none());
    }

    #[test]
    fn torus_wraps_borders() {
        let g = torus(4, 4);
        let topo = &g.topology;
        let wrap = topo.peer(g.switch_at(3, 2), PORT_EAST).unwrap();
        assert_eq!(wrap.node, g.switch_at(0, 2));
        let wrap = topo.peer(g.switch_at(1, 3), PORT_SOUTH).unwrap();
        assert_eq!(wrap.node, g.switch_at(1, 0));
    }

    #[test]
    fn degenerate_torus_dimension_skips_double_link() {
        // 2-wide torus: wrap would duplicate the mesh link; must not panic.
        let g = torus(2, 3);
        assert!(g.topology.is_connected());
        assert_eq!(g.topology.degree(g.switch_at(0, 0)), 1 + 1 + 2);
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_tiny_grids() {
        let _ = mesh(1, 5);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(mesh(6, 6).topology.name, "6x6 mesh");
        assert_eq!(torus(8, 8).topology.name, "8x8 torus");
    }
}
