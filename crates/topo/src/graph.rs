//! The fabric topology graph: devices, ports and links.
//!
//! This is the *ground truth* a generator produces and the simulator
//! instantiates. The fabric manager never reads it directly — it must
//! rediscover the same structure through PI-4 packets, and the test suite
//! checks the discovered database against this graph.

use asi_proto::DeviceType;
use std::collections::VecDeque;
use std::fmt;

/// Index of a device within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A device in the topology.
#[derive(Clone, Debug)]
pub struct Node {
    /// Switch or endpoint.
    pub device_type: DeviceType,
    /// Number of ports.
    pub ports: u8,
    /// Human-readable label ("sw(2,3)", "ep7", …) for traces and plots.
    pub label: String,
}

/// One end of a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Attachment {
    /// The device.
    pub node: NodeId,
    /// The port on that device.
    pub port: u8,
}

/// A bidirectional link between two ports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Link {
    /// One end.
    pub a: Attachment,
    /// The other end.
    pub b: Attachment,
}

/// Errors building a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Port index outside the device's port count.
    PortOutOfRange {
        /// Offending attachment.
        at: Attachment,
        /// The device's port count.
        ports: u8,
    },
    /// The port already has a link.
    PortInUse(Attachment),
    /// Self-loops are not allowed.
    SelfLoop(NodeId),
    /// Unknown node id.
    UnknownNode(NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::PortOutOfRange { at, ports } => write!(
                f,
                "port {} out of range on {} ({} ports)",
                at.port, at.node, ports
            ),
            TopologyError::PortInUse(at) => {
                write!(f, "port {} on {} already linked", at.port, at.node)
            }
            TopologyError::SelfLoop(n) => write!(f, "self-loop on {n}"),
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Structural defects reported by [`Topology::validate`].
///
/// [`Topology::connect`] maintains these invariants incrementally; the
/// whole-graph check exists so generators (especially the large
/// parameterised ones) can certify their output in one O(nodes + links)
/// pass, and so tests can assert on corruption symptoms directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationError {
    /// A link references a node or port that does not exist.
    DanglingLink(Attachment),
    /// A port's link back-reference does not name a link that attaches
    /// to that port (the link table is asymmetric).
    AsymmetricLink(Attachment),
    /// More than one link claims the same `(node, port)`.
    PortDoubleUse(Attachment),
    /// Not every device can reach every other.
    Disconnected {
        /// Devices reachable from node 0.
        reachable: usize,
        /// Total devices.
        total: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DanglingLink(at) => {
                write!(f, "link references missing port {} on {}", at.port, at.node)
            }
            ValidationError::AsymmetricLink(at) => {
                write!(
                    f,
                    "asymmetric link table at port {} on {}",
                    at.port, at.node
                )
            }
            ValidationError::PortDoubleUse(at) => {
                write!(
                    f,
                    "port {} on {} used by more than one link",
                    at.port, at.node
                )
            }
            ValidationError::Disconnected { reachable, total } => {
                write!(
                    f,
                    "disconnected fabric: {reachable} of {total} devices reachable"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// An immutable-after-build fabric topology.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// `peer[node][port] -> Option<(link index)>`.
    port_links: Vec<Vec<Option<u32>>>,
    /// Short name of the topology family ("6x6 mesh", …).
    pub name: String,
}

impl Topology {
    /// Empty topology.
    pub fn new(name: impl Into<String>) -> Topology {
        Topology {
            name: name.into(),
            ..Topology::default()
        }
    }

    /// Adds a switch with `ports` ports; returns its id.
    pub fn add_switch(&mut self, ports: u8, label: impl Into<String>) -> NodeId {
        self.add_node(DeviceType::Switch, ports, label)
    }

    /// Adds an endpoint (1 port by default in the paper's model).
    pub fn add_endpoint(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(DeviceType::Endpoint, 1, label)
    }

    /// Adds an endpoint with a custom port count (≤ 4 per the spec).
    pub fn add_endpoint_with_ports(&mut self, ports: u8, label: impl Into<String>) -> NodeId {
        debug_assert!((1..=4).contains(&ports), "endpoints support up to 4 ports");
        self.add_node(DeviceType::Endpoint, ports, label)
    }

    fn add_node(&mut self, device_type: DeviceType, ports: u8, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            device_type,
            ports,
            label: label.into(),
        });
        self.port_links.push(vec![None; usize::from(ports)]);
        id
    }

    /// Connects `(a, port_a)` to `(b, port_b)`.
    pub fn connect(
        &mut self,
        a: NodeId,
        port_a: u8,
        b: NodeId,
        port_b: u8,
    ) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        for &(n, p) in &[(a, port_a), (b, port_b)] {
            let node = self
                .nodes
                .get(n.idx())
                .ok_or(TopologyError::UnknownNode(n))?;
            if p >= node.ports {
                return Err(TopologyError::PortOutOfRange {
                    at: Attachment { node: n, port: p },
                    ports: node.ports,
                });
            }
            if self.port_links[n.idx()][usize::from(p)].is_some() {
                return Err(TopologyError::PortInUse(Attachment { node: n, port: p }));
            }
        }
        let link_idx = self.links.len() as u32;
        self.links.push(Link {
            a: Attachment {
                node: a,
                port: port_a,
            },
            b: Attachment {
                node: b,
                port: port_b,
            },
        });
        self.port_links[a.idx()][usize::from(port_a)] = Some(link_idx);
        self.port_links[b.idx()][usize::from(port_b)] = Some(link_idx);
        Ok(())
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.idx())
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The peer attached at `(node, port)`, if any.
    pub fn peer(&self, node: NodeId, port: u8) -> Option<Attachment> {
        let link_idx = (*self.port_links.get(node.idx())?.get(usize::from(port))?)?;
        let link = self.links[link_idx as usize];
        if link.a.node == node && link.a.port == port {
            Some(link.b)
        } else {
            Some(link.a)
        }
    }

    /// Iterates `(local_port, peer)` over the connected ports of `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (u8, Attachment)> + '_ {
        let ports = self
            .nodes
            .get(node.idx())
            .map(|n| n.ports)
            .unwrap_or_default();
        (0..ports).filter_map(move |p| self.peer(node, p).map(|at| (p, at)))
    }

    /// Total device count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Switch count.
    pub fn switch_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.device_type == DeviceType::Switch)
            .count()
    }

    /// Endpoint count.
    pub fn endpoint_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.device_type == DeviceType::Endpoint)
            .count()
    }

    /// Ids of all endpoints.
    pub fn endpoints(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.device_type == DeviceType::Endpoint)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of all switches.
    pub fn switches(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.device_type == DeviceType::Switch)
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of connected (linked) ports on `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).count()
    }

    /// Set of nodes reachable from `start`, optionally treating `removed`
    /// nodes as absent (used to predict post-change reachability).
    pub fn reachable_from(&self, start: NodeId, removed: &[NodeId]) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        for r in removed {
            if let Some(s) = seen.get_mut(r.idx()) {
                *s = true;
            }
        }
        if seen.get(start.idx()).copied().unwrap_or(true) {
            return Vec::new();
        }
        let mut queue = VecDeque::new();
        let mut out = Vec::new();
        seen[start.idx()] = true;
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for (_, peer) in self.neighbors(n) {
                if !seen[peer.node.idx()] {
                    seen[peer.node.idx()] = true;
                    queue.push_back(peer.node);
                }
            }
        }
        out
    }

    /// Renders the topology as Graphviz DOT (the paper's Fig. 5 shows
    /// exactly such drawings): switches as boxes, endpoints as circles,
    /// links labelled with their port pairs.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "graph \"{}\" {{{{", self.name);
        let _ = writeln!(out, "  layout=neato; overlap=false; splines=true;");
        for (id, node) in self.nodes() {
            let (shape, color) = match node.device_type {
                DeviceType::Switch => ("box", "lightblue"),
                DeviceType::Endpoint => ("circle", "lightgrey"),
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\" shape={shape} style=filled fillcolor={color}];",
                id.0, node.label
            );
        }
        for link in &self.links {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}:{}\"];",
                link.a.node.0, link.b.node.0, link.a.port, link.b.port
            );
        }
        out.push_str(
            "}
",
        );
        out
    }

    /// Certifies the whole graph in one pass: every link attaches to
    /// existing in-range ports, every port's link back-reference is
    /// symmetric (so [`Topology::peer`] of a peer round-trips), no port
    /// carries two links, and the fabric is connected.
    ///
    /// Generators call this on their finished output; it is
    /// O(nodes + links), so even the 64×64 grids validate in
    /// microseconds.
    pub fn validate(&self) -> Result<(), ValidationError> {
        for (idx, link) in self.links.iter().enumerate() {
            for at in [link.a, link.b] {
                let in_range = self
                    .nodes
                    .get(at.node.idx())
                    .is_some_and(|n| at.port < n.ports);
                if !in_range {
                    return Err(ValidationError::DanglingLink(at));
                }
                match self.port_links[at.node.idx()][usize::from(at.port)] {
                    Some(back) if back as usize == idx => {}
                    // The port's back-reference names a different link:
                    // two links claim this port.
                    Some(_) => return Err(ValidationError::PortDoubleUse(at)),
                    None => return Err(ValidationError::AsymmetricLink(at)),
                }
            }
            if link.a.node == link.b.node {
                return Err(ValidationError::DanglingLink(link.a));
            }
        }
        for (n, ports) in self.port_links.iter().enumerate() {
            for (p, entry) in ports.iter().enumerate() {
                let at = Attachment {
                    node: NodeId(n as u32),
                    port: p as u8,
                };
                let Some(li) = *entry else { continue };
                let attaches = self
                    .links
                    .get(li as usize)
                    .is_some_and(|l| l.a == at || l.b == at);
                if !attaches {
                    return Err(ValidationError::AsymmetricLink(at));
                }
            }
        }
        let reachable = if self.nodes.is_empty() {
            0
        } else {
            self.reachable_from(NodeId(0), &[]).len()
        };
        if reachable != self.nodes.len() {
            return Err(ValidationError::Disconnected {
                reachable,
                total: self.nodes.len(),
            });
        }
        Ok(())
    }

    /// True if every device can reach every other.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        self.reachable_from(NodeId(0), &[]).len() == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Topology, NodeId, NodeId, NodeId) {
        // ep0 -- sw -- ep1
        let mut t = Topology::new("tiny");
        let sw = t.add_switch(4, "sw");
        let e0 = t.add_endpoint("ep0");
        let e1 = t.add_endpoint("ep1");
        t.connect(e0, 0, sw, 0).unwrap();
        t.connect(sw, 1, e1, 0).unwrap();
        (t, sw, e0, e1)
    }

    #[test]
    fn counts_and_kinds() {
        let (t, sw, e0, _) = tiny();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.endpoint_count(), 2);
        assert_eq!(t.node(sw).unwrap().device_type, DeviceType::Switch);
        assert_eq!(t.node(e0).unwrap().device_type, DeviceType::Endpoint);
        assert_eq!(t.switches(), vec![sw]);
        assert_eq!(t.endpoints().len(), 2);
    }

    #[test]
    fn peers_are_symmetric() {
        let (t, sw, e0, e1) = tiny();
        assert_eq!(t.peer(e0, 0), Some(Attachment { node: sw, port: 0 }));
        assert_eq!(t.peer(sw, 0), Some(Attachment { node: e0, port: 0 }));
        assert_eq!(t.peer(sw, 1), Some(Attachment { node: e1, port: 0 }));
        assert_eq!(t.peer(sw, 2), None);
        assert_eq!(t.peer(sw, 99), None);
    }

    #[test]
    fn neighbors_and_degree() {
        let (t, sw, e0, _) = tiny();
        assert_eq!(t.degree(sw), 2);
        assert_eq!(t.degree(e0), 1);
        let n: Vec<_> = t.neighbors(sw).collect();
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].0, 0);
    }

    #[test]
    fn connect_rejects_port_reuse() {
        let (mut t, sw, e0, _) = tiny();
        let e2 = t.add_endpoint("ep2");
        assert_eq!(
            t.connect(e2, 0, sw, 0),
            Err(TopologyError::PortInUse(Attachment { node: sw, port: 0 }))
        );
        assert_eq!(
            t.connect(e0, 0, sw, 2),
            Err(TopologyError::PortInUse(Attachment { node: e0, port: 0 }))
        );
    }

    #[test]
    fn connect_rejects_bad_ports_and_nodes() {
        let mut t = Topology::new("t");
        let sw = t.add_switch(4, "sw");
        let ep = t.add_endpoint("ep");
        assert!(matches!(
            t.connect(ep, 1, sw, 0),
            Err(TopologyError::PortOutOfRange { .. })
        ));
        assert!(matches!(
            t.connect(ep, 0, sw, 4),
            Err(TopologyError::PortOutOfRange { .. })
        ));
        assert_eq!(t.connect(sw, 0, sw, 1), Err(TopologyError::SelfLoop(sw)));
        assert_eq!(
            t.connect(NodeId(99), 0, sw, 0),
            Err(TopologyError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    fn connectivity_detection() {
        let (t, ..) = tiny();
        assert!(t.is_connected());

        let mut t2 = Topology::new("disconnected");
        t2.add_endpoint("a");
        t2.add_endpoint("b");
        assert!(!t2.is_connected());

        let empty = Topology::new("empty");
        assert!(empty.is_connected());
    }

    #[test]
    fn reachability_with_removals() {
        let (t, sw, e0, e1) = tiny();
        let all = t.reachable_from(e0, &[]);
        assert_eq!(all.len(), 3);
        // Removing the switch isolates e0.
        let alone = t.reachable_from(e0, &[sw]);
        assert_eq!(alone, vec![e0]);
        // Removing the start yields nothing.
        assert!(t.reachable_from(e1, &[e1]).is_empty());
    }

    #[test]
    fn links_recorded_once() {
        let (t, ..) = tiny();
        assert_eq!(t.links().len(), 2);
    }

    #[test]
    fn validate_passes_on_well_formed_graphs() {
        let (t, ..) = tiny();
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(Topology::new("empty").validate(), Ok(()));
    }

    #[test]
    fn validate_reports_disconnection() {
        let mut t = Topology::new("split");
        t.add_endpoint("a");
        t.add_endpoint("b");
        assert_eq!(
            t.validate(),
            Err(ValidationError::Disconnected {
                reachable: 1,
                total: 2
            })
        );
    }

    #[test]
    fn validate_catches_corrupted_link_tables() {
        // These states are unreachable through the public API; corrupt the
        // internals directly to prove the checks bite.
        let (mut t, sw, ..) = tiny();
        t.port_links[sw.idx()][0] = None; // drop one back-reference
        assert_eq!(
            t.validate(),
            Err(ValidationError::AsymmetricLink(Attachment {
                node: sw,
                port: 0
            }))
        );

        let (mut t, sw, ..) = tiny();
        t.port_links[sw.idx()][0] = Some(1); // point at the wrong link
        assert_eq!(
            t.validate(),
            Err(ValidationError::PortDoubleUse(Attachment {
                node: sw,
                port: 0
            }))
        );

        let (mut t, ..) = tiny();
        t.links[0].a.port = 99; // out-of-range attachment
        assert!(matches!(
            t.validate(),
            Err(ValidationError::DanglingLink(_))
        ));

        let (mut t, _, e0, _) = tiny();
        // Dangling back-reference on an unlinked port.
        t.port_links[e0.idx()].push(Some(7));
        t.nodes[e0.idx()].ports = 2;
        assert!(matches!(
            t.validate(),
            Err(ValidationError::AsymmetricLink(_))
        ));
    }

    #[test]
    fn dot_rendering_covers_all_nodes_and_links() {
        let (t, ..) = tiny();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph \"tiny\""));
        assert_eq!(dot.matches("shape=box").count(), 1);
        assert_eq!(dot.matches("shape=circle").count(), 2);
        assert_eq!(dot.matches(" -- ").count(), 2);
        assert!(dot.trim_end().ends_with('}'));
    }
}
