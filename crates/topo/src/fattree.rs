//! *m*-port *n*-tree generator, following the construction methodology of
//! Lin, Chung and Huang ("A multiple LID routing scheme for fat-tree-based
//! InfiniBand networks", the paper's reference \[5\]).
//!
//! An *m*-port *n*-tree contains:
//!
//! - `2 · (m/2)^n` processing nodes (endpoints), and
//! - `(2n − 1) · (m/2)^(n−1)` switches of `m` ports each.
//!
//! We realize it as two (m/2)-ary butterflies ("half A" and "half B"),
//! each with `n − 1` switch levels of `(m/2)^(n−1)` switches, sharing a
//! single root level of `(m/2)^(n−1)` switches whose `m` ports all face
//! down — `m/2` into each half. Port conventions:
//!
//! - non-root switch: ports `0..k-1` down, ports `k..2k-1` up (`k = m/2`);
//! - root switch: ports `0..k-1` down into half A, `k..2k-1` down into
//!   half B.
//!
//! Between level `ℓ` and `ℓ+1` within a half, up-port `j` of switch word
//! `w` connects to the level-`ℓ+1` switch whose word has digit `ℓ`
//! replaced by `j`, arriving on down-port `digit_ℓ(w)` — the standard
//! k-ary n-tree butterfly.

use crate::graph::{NodeId, Topology};

/// Output of the fat-tree generator.
#[derive(Clone, Debug)]
pub struct FatTree {
    /// The generated topology.
    pub topology: Topology,
    /// Endpoints, in `(half, leaf-switch word, down-port)` order.
    pub endpoints: Vec<NodeId>,
    /// `levels[ℓ][half][word]` for ℓ in `0..n-1`; the root level is
    /// [`FatTree::roots`].
    pub levels: Vec<[Vec<NodeId>; 2]>,
    /// Root switches.
    pub roots: Vec<NodeId>,
    /// Ports per switch (`m`).
    pub ports: u8,
    /// Tree depth (`n`).
    pub depth: u32,
}

/// Expected switch count for an m-port n-tree.
pub fn expected_switches(m: u32, n: u32) -> usize {
    ((2 * n - 1) * (m / 2).pow(n - 1)) as usize
}

/// Expected endpoint count for an m-port n-tree.
pub fn expected_endpoints(m: u32, n: u32) -> usize {
    (2 * (m / 2).pow(n)) as usize
}

/// Builds an `m`-port `n`-tree. `m` must be even and ≥ 2; `n ≥ 1`.
// Indexing by (half, level, word) mirrors the construction's notation;
// iterator chains would obscure the butterfly arithmetic.
#[allow(clippy::needless_range_loop)]
pub fn fat_tree(m: u32, n: u32) -> FatTree {
    assert!(m >= 2 && m.is_multiple_of(2), "m must be even and >= 2");
    assert!(n >= 1, "n must be >= 1");
    assert!(m <= 256, "ASI switches support at most 256 ports");
    let k = m / 2; // arity
    let words = k.pow(n - 1) as usize; // switches per level per half
    let mut topo = Topology::new(format!("{m}-port {n}-tree"));

    // Root level: shared, m ports all down.
    let roots: Vec<NodeId> = (0..words)
        .map(|w| topo.add_switch(m as u8, format!("root[{w}]")))
        .collect();

    // Halves: levels 0 (leaf) .. n-2, each `words` switches.
    let mut levels: Vec<[Vec<NodeId>; 2]> = Vec::new();
    for level in 0..n.saturating_sub(1) {
        let mut pair: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
        for (half, ids) in pair.iter_mut().enumerate() {
            let tag = if half == 0 { 'A' } else { 'B' };
            for w in 0..words {
                ids.push(topo.add_switch(m as u8, format!("sw{tag}[{level},{w}]")));
            }
        }
        levels.push(pair);
    }

    // Endpoints: k per leaf switch per half. With n == 1 the "leaf
    // switches" are the roots themselves (a single-stage crossbar with m
    // endpoints, half of them notionally in each half).
    let mut endpoints = Vec::new();
    if n == 1 {
        let root = roots[0];
        for p in 0..m as u8 {
            let ep = topo.add_endpoint(format!("ep[{p}]"));
            topo.connect(root, p, ep, 0).expect("root port free");
            endpoints.push(ep);
        }
    } else {
        for half in 0..2usize {
            for w in 0..words {
                let leaf = levels[0][half][w];
                for j in 0..k as u8 {
                    let tag = if half == 0 { 'A' } else { 'B' };
                    let ep = topo.add_endpoint(format!("ep{tag}[{w},{j}]"));
                    topo.connect(leaf, j, ep, 0).expect("leaf down port free");
                    endpoints.push(ep);
                }
            }
        }

        // Butterfly wiring inside each half, and half-to-root wiring.
        let digit = |w: usize, pos: u32| -> usize { (w / k.pow(pos) as usize) % k as usize };
        let replace_digit = |w: usize, pos: u32, val: usize| -> usize {
            w - digit(w, pos) * k.pow(pos) as usize + val * k.pow(pos) as usize
        };

        for half in 0..2usize {
            for level in 0..(n - 1) {
                for w in 0..words {
                    let lower = levels[level as usize][half][w];
                    for j in 0..k as usize {
                        let upper_word = replace_digit(w, level, j);
                        let down_port = digit(w, level) as u8;
                        let up_port = k as u8 + j as u8;
                        if level + 1 < n - 1 {
                            let upper = levels[(level + 1) as usize][half][upper_word];
                            topo.connect(lower, up_port, upper, down_port)
                                .expect("butterfly port free");
                        } else {
                            // Top of the half: connect to the shared roots.
                            let root = roots[upper_word];
                            let root_port = (half as u8) * k as u8 + down_port;
                            topo.connect(lower, up_port, root, root_port)
                                .expect("root port free");
                        }
                    }
                }
            }
        }
    }

    topo.validate().expect("generated fat-tree is well-formed");
    FatTree {
        topology: topo,
        endpoints,
        levels,
        roots,
        ports: m as u8,
        depth: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_lin_formulas() {
        for (m, n) in [
            (4u32, 2u32),
            (4, 3),
            (4, 4),
            (8, 2),
            (8, 3),
            (2, 2),
            (16, 2),
        ] {
            let ft = fat_tree(m, n);
            assert_eq!(
                ft.topology.switch_count(),
                expected_switches(m, n),
                "{m}-port {n}-tree switches"
            );
            assert_eq!(
                ft.topology.endpoint_count(),
                expected_endpoints(m, n),
                "{m}-port {n}-tree endpoints"
            );
        }
    }

    #[test]
    fn paper_table1_fat_tree_sizes() {
        // 4-port 2-tree: 6 switches, 8 endpoints.
        let ft = fat_tree(4, 2);
        assert_eq!(ft.topology.switch_count(), 6);
        assert_eq!(ft.topology.endpoint_count(), 8);
        // 4-port 3-tree: 20 switches, 16 endpoints.
        let ft = fat_tree(4, 3);
        assert_eq!(ft.topology.switch_count(), 20);
        assert_eq!(ft.topology.endpoint_count(), 16);
        // 4-port 4-tree: 56 switches, 32 endpoints.
        let ft = fat_tree(4, 4);
        assert_eq!(ft.topology.switch_count(), 56);
        assert_eq!(ft.topology.endpoint_count(), 32);
        // 8-port 2-tree: 12 switches, 32 endpoints.
        let ft = fat_tree(8, 2);
        assert_eq!(ft.topology.switch_count(), 12);
        assert_eq!(ft.topology.endpoint_count(), 32);
    }

    #[test]
    fn all_fat_trees_connected() {
        for (m, n) in [(4u32, 2u32), (4, 3), (4, 4), (8, 2), (8, 3)] {
            let ft = fat_tree(m, n);
            assert!(ft.topology.is_connected(), "{m}-port {n}-tree disconnected");
        }
    }

    #[test]
    fn arity_16_three_level_tree() {
        // The scale subsystem's largest fat-tree: 16-port 3-tree.
        let ft = fat_tree(16, 3);
        assert_eq!(ft.topology.switch_count(), expected_switches(16, 3));
        assert_eq!(ft.topology.switch_count(), 320);
        assert_eq!(ft.topology.endpoint_count(), 1024);
        assert_eq!(ft.topology.validate(), Ok(()));
        for sw in ft.topology.switches() {
            assert_eq!(ft.topology.degree(sw), 16);
        }
    }

    #[test]
    fn switch_port_usage_is_full() {
        // In an m-port n-tree every switch uses all m ports.
        let ft = fat_tree(4, 3);
        for sw in ft.topology.switches() {
            assert_eq!(
                ft.topology.degree(sw),
                4,
                "{}",
                ft.topology.node(sw).unwrap().label
            );
        }
    }

    #[test]
    fn endpoints_have_one_link() {
        let ft = fat_tree(8, 2);
        for ep in ft.topology.endpoints() {
            assert_eq!(ft.topology.degree(ep), 1);
        }
    }

    #[test]
    fn roots_bridge_the_halves() {
        let ft = fat_tree(4, 2);
        // Every root must reach leaf switches in both halves directly.
        for &root in &ft.roots {
            let mut halves_seen = [false, false];
            for (_, peer) in ft.topology.neighbors(root) {
                for (half, ids) in ft.levels[0].iter().enumerate() {
                    if ids.contains(&peer.node) {
                        halves_seen[half] = true;
                    }
                }
            }
            assert_eq!(halves_seen, [true, true]);
        }
    }

    #[test]
    fn single_stage_tree_is_a_crossbar() {
        let ft = fat_tree(8, 1);
        assert_eq!(ft.topology.switch_count(), 1);
        assert_eq!(ft.topology.endpoint_count(), 8);
        assert!(ft.topology.is_connected());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_port_count() {
        let _ = fat_tree(5, 2);
    }
}
