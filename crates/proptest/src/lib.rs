//! A minimal, dependency-free, deterministic re-implementation of the
//! subset of the `proptest` API used by this workspace's property tests.
//!
//! The build environment is fully offline, so the real `proptest` crate
//! (and its dependency tree) cannot be fetched from crates.io. This
//! vendored stand-in keeps every `proptest!` block in the test suites
//! compiling and running unchanged:
//!
//! - [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`;
//! - integer and `f64` range strategies, tuple strategies, [`Just`];
//! - [`any`] over an [`Arbitrary`] trait (`bool`, the primitive
//!   integers, [`sample::Index`]);
//! - [`collection::vec`] with `usize` / range size specifications;
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(..)]`), plus [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`].
//!
//! Differences from the real crate, deliberately accepted: no shrinking
//! (a failing case reports the generated values only through the
//! assertion message), no persisted failure seeds, and a fixed
//! per-test-name seed so runs are bit-reproducible.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// SplitMix64 generator driving all value generation. Deterministic per
/// test: the seed is derived from the test's name.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Internal marker: a strategy (or filter) could not produce a value;
/// the runner retries the whole case with fresh randomness.
#[derive(Debug)]
pub struct Rejected;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` false, filter exhausted).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A discarded (not failed) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-`proptest!` configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Draws one value. `Err(Rejected)` asks the runner to retry the
    /// whole case.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Discards values failing the predicate (bounded local retries).
    fn prop_filter<W, F>(self, _whence: W, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            pred: f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejected> {
        Ok((self.f)(self.base.generate(rng)?))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<T::Value, Rejected> {
        let inner = (self.f)(self.base.generate(rng)?);
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
        for _ in 0..64 {
            let v = self.base.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejected)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejected> {
        Ok(self.0.clone())
    }
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (self.start as i128, self.end as i128);
                if lo >= hi {
                    return Err(Rejected);
                }
                Ok((lo + rng.below((hi - lo) as u64) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                if lo > hi {
                    return Err(Rejected);
                }
                Ok((lo + rng.below((hi - lo + 1) as u64) as i128) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Result<f64, Rejected> {
        // NaN bounds fall through to the rejection path too.
        if matches!(
            self.start.partial_cmp(&self.end),
            None | Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ) {
            return Err(Rejected);
        }
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical unconstrained generator, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// An unconstrained strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
        Ok(T::arbitrary(rng))
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use super::{Rejected, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything accepted as the size of a generated collection.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in `bounds`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// A vector whose elements come from `elem` and whose length falls
    /// in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejected> {
            if self.min > self.max {
                return Err(Rejected);
            }
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling helpers (`Index`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a not-yet-known collection; resolved against a
    /// concrete slice with [`Index::get`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// The index this value selects in a collection of `len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }

        /// The element this value selects from `slice`.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Common imports for property tests, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub fn __run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: a stable per-test seed.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases).saturating_mul(64).max(256);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest '{name}': too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
            config.cases
        );
        let mut rng = TestRng::new(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (case {accepted}): {msg}")
            }
        }
    }
}

/// Defines deterministic property tests; see the real `proptest!` docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__run(&$config, stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, mut $name:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng, mut $name in $strat,);
    };
    ($rng:ident, mut $name:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = match $crate::Strategy::generate(&($strat), $rng) {
            ::core::result::Result::Ok(v) => v,
            ::core::result::Result::Err(_) => {
                return ::core::result::Result::Err($crate::TestCaseError::reject("generation"))
            }
        };
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng, $name in $strat,);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = match $crate::Strategy::generate(&($strat), $rng) {
            ::core::result::Result::Ok(v) => v,
            ::core::result::Result::Err(_) => {
                return ::core::result::Result::Err($crate::TestCaseError::reject("generation"))
            }
        };
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)*), l, r);
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = super::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng).unwrap();
            assert!((3..17).contains(&v));
            let w = (2u8..=16).generate(&mut rng).unwrap();
            assert!((2..=16).contains(&w));
            let f = (-1.0f64..1.0).generate(&mut rng).unwrap();
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = super::TestRng::new(9);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 1..5)
                .generate(&mut rng)
                .unwrap();
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn filter_and_flat_map_compose() {
        let strat = (2u8..=16).prop_flat_map(|ports| {
            (0..ports, 0..ports, Just(ports)).prop_filter("distinct", |(i, e, _)| i != e)
        });
        let mut rng = super::TestRng::new(11);
        for _ in 0..500 {
            let (i, e, p) = strat.generate(&mut rng).unwrap();
            assert!(i < p && e < p && i != e);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, mut bindings, assume, asserts.
        #[test]
        fn macro_smoke(a in 0u32..100, mut b in any::<bool>(), idx in any::<prop::sample::Index>()) {
            b = !b;
            let xs = [10, 20, 30];
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(*idx.get(&xs) % 10, 0);
            prop_assert_ne!(b, !b, "negation must differ {}", a);
        }
    }
}
