//! Property-based tests for the ASI wire formats.

use asi_proto::{
    apply_backward, apply_forward, turn_for, turn_width, CapabilityAddr, Direction, Packet,
    Payload, Pi4, Pi5, PortEvent, ProtocolInterface, RouteHeader, TurnCursor, TurnPool,
    MAX_POOL_BITS,
};
use proptest::prelude::*;

/// Strategy: a random path as (ingress, egress, ports) hops.
fn hops() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec(
        (2u8..=16).prop_flat_map(|ports| {
            (0..ports, 0..ports, Just(ports)).prop_filter("distinct", |(i, e, _)| i != e)
        }),
        0..30,
    )
}

proptest! {
    /// Encoding a path into the turn pool and walking it forward recovers
    /// exactly the intended egress ports; walking it backward retraces the
    /// ingress ports in reverse.
    #[test]
    fn turn_pool_forward_backward_inverse(path in hops()) {
        let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
        for &(ingress, egress, ports) in &path {
            let t = turn_for(ingress, egress, ports);
            pool.push_turn(t, turn_width(ports)).unwrap();
        }

        // Forward traversal.
        let mut c = TurnCursor::start(&pool, Direction::Forward);
        for &(ingress, egress, ports) in &path {
            let (t, next) = c.take_turn(&pool, turn_width(ports)).unwrap();
            prop_assert_eq!(apply_forward(ingress, t, ports), egress);
            c = next;
        }
        prop_assert!(c.exhausted(&pool));

        // Backward traversal: enter each switch at its forward egress and
        // leave at its forward ingress, in reverse path order.
        let mut c = TurnCursor::start(&pool, Direction::Backward);
        for &(ingress, egress, ports) in path.iter().rev() {
            let (t, next) = c.take_turn(&pool, turn_width(ports)).unwrap();
            prop_assert_eq!(apply_backward(egress, t, ports), ingress);
            c = next;
        }
        prop_assert!(c.exhausted(&pool));
    }

    /// turn_for / apply_forward are mutually inverse for all port pairs.
    #[test]
    fn turn_arithmetic_inverse(ports in 2u8..=32, ingress in 0u8..32, egress in 0u8..32) {
        prop_assume!(ingress < ports && egress < ports && ingress != egress);
        let t = turn_for(ingress, egress, ports);
        prop_assert!(u16::from(t) < u16::from(ports));
        prop_assert_eq!(apply_forward(ingress, t, ports), egress);
        prop_assert_eq!(apply_backward(egress, t, ports), ingress);
    }

    /// Route headers round-trip for arbitrary field combinations.
    #[test]
    fn header_round_trip(
        tc in 0u8..8,
        oo in any::<bool>(),
        ts in any::<bool>(),
        credits in 0u8..32,
        backward in any::<bool>(),
        path in hops(),
    ) {
        let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
        for &(ingress, egress, ports) in &path {
            pool.push_turn(turn_for(ingress, egress, ports), turn_width(ports)).unwrap();
        }
        let mut hdr = RouteHeader::forward(ProtocolInterface::DeviceManagement, tc, pool);
        hdr.oo = oo;
        hdr.ts = ts;
        hdr.credits_required = credits;
        if backward {
            hdr = hdr.reply(ProtocolInterface::DeviceManagement);
        }
        prop_assume!(hdr.turn_pointer <= 0xFF); // 8-bit pointer field
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        let (decoded, used) = RouteHeader::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, hdr);
    }

    /// Single-bit corruption of the first header DWORDs never decodes
    /// silently into a different valid header.
    #[test]
    fn header_corruption_detected(bit in 0usize..59, path in hops()) {
        let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
        for &(i, e, p) in &path {
            pool.push_turn(turn_for(i, e, p), turn_width(p)).unwrap();
        }
        let hdr = RouteHeader::forward(ProtocolInterface::EventReporting, 7, pool);
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        buf[bit / 8] ^= 1 << (7 - (bit % 8));
        match RouteHeader::decode(&buf) {
            Err(_) => {}
            Ok((decoded, _)) => prop_assert_ne!(decoded, hdr, "corruption undetected"),
        }
    }

    /// PI-4 PDUs round-trip for arbitrary contents.
    #[test]
    fn pi4_round_trip(
        req_id in any::<u32>(),
        capability in 0u16..4,
        offset in any::<u16>(),
        n in 1usize..=8,
        write in any::<bool>(),
    ) {
        let addr = CapabilityAddr { capability, offset };
        let pdu = if write {
            Pi4::WriteRequest {
                req_id,
                addr,
                data: (0..n as u32).collect(),
            }
        } else {
            Pi4::ReadRequest { req_id, addr, dwords: n as u8 }
        };
        let mut buf = Vec::new();
        pdu.encode(&mut buf);
        let (decoded, used) = Pi4::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(decoded, pdu);
    }

    /// Complete packets round-trip, and wire size always matches the
    /// encoded length.
    #[test]
    fn packet_round_trip(
        req_id in any::<u32>(),
        n in 1usize..=8,
        kind in 0u8..3,
        path in hops(),
    ) {
        let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
        for &(i, e, p) in &path {
            pool.push_turn(turn_for(i, e, p), turn_width(p)).unwrap();
        }
        let hdr = RouteHeader::forward(ProtocolInterface::DeviceManagement, 7, pool);
        let payload = match kind {
            0 => Payload::Pi4(Pi4::ReadCompletion {
                req_id,
                data: (0..n as u32).collect(),
            }),
            1 => Payload::Pi5(Pi5 {
                reporter_dsn: u64::from(req_id),
                port: (n - 1) as u8,
                event: PortEvent::PortUp,
                sequence: req_id,
            }),
            _ => Payload::Data { len: (n * 37) as u16 },
        };
        let pkt = Packet::new(hdr, payload);
        let bytes = pkt.encode();
        prop_assert_eq!(bytes.len(), pkt.wire_size());
        prop_assert_eq!(Packet::decode(&bytes).unwrap(), pkt);
    }
}
