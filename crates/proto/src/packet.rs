//! Complete ASI packets: route header + protocol payload + ECRC.

use crate::header::{HeaderError, ProtocolInterface, RouteHeader};
use crate::pi4::{Pi4, Pi4Error};
use crate::pi5::{Pi5, Pi5Error};
use crate::pi_fm::{FmMessage, FmMessageError};

/// The payload carried behind the routing header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Payload {
    /// PI-4 configuration access.
    Pi4(Pi4),
    /// PI-5 event report.
    Pi5(Pi5),
    /// FM-to-FM exchange (distributed discovery).
    Fm(FmMessage),
    /// Multicast application data: forwarded by the switches' multicast
    /// tables rather than the turn pool. `hops` is a replication-loop
    /// guard (decremented per switch, dropped at zero).
    Mcast {
        /// Multicast group id.
        group: u16,
        /// Payload length in bytes.
        len: u16,
        /// Remaining hop budget.
        hops: u8,
    },
    /// Opaque application data of the given length (background traffic);
    /// contents are irrelevant to the management plane, only the size
    /// matters for link occupancy.
    Data {
        /// Payload length in bytes.
        len: u16,
    },
}

impl Payload {
    /// The PI value matching this payload.
    pub fn pi(&self) -> ProtocolInterface {
        match self {
            Payload::Pi4(_) => ProtocolInterface::DeviceManagement,
            Payload::Pi5(_) => ProtocolInterface::EventReporting,
            Payload::Fm(_) => ProtocolInterface::FmExchange,
            Payload::Mcast { .. } => ProtocolInterface::Multicast,
            Payload::Data { .. } => ProtocolInterface::Data,
        }
    }

    /// On-wire payload size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            Payload::Pi4(p) => p.wire_size(),
            Payload::Pi5(_) => Pi5::WIRE_SIZE,
            Payload::Fm(m) => m.wire_size(),
            Payload::Mcast { len, .. } => 5 + usize::from(*len),
            Payload::Data { len } => usize::from(*len),
        }
    }
}

/// A full packet as it travels the fabric.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Routing header (mutated hop by hop: the turn pointer advances).
    pub header: RouteHeader,
    /// Protocol payload.
    pub payload: Payload,
}

/// Size of the end-to-end CRC trailer.
pub const ECRC_BYTES: usize = 4;

/// Packet decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Route header failed to parse.
    Header(HeaderError),
    /// PI-4 payload failed to parse.
    Pi4(Pi4Error),
    /// PI-5 payload failed to parse.
    Pi5(Pi5Error),
    /// FM exchange payload failed to parse.
    Fm(FmMessageError),
    /// Header PI does not name a payload this model carries.
    UnsupportedPi(u8),
    /// Payload shorter than its declared length.
    Truncated,
}

impl core::fmt::Display for PacketError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PacketError::Header(e) => write!(f, "route header: {e}"),
            PacketError::Pi4(e) => write!(f, "PI-4 payload: {e}"),
            PacketError::Pi5(e) => write!(f, "PI-5 payload: {e}"),
            PacketError::Fm(e) => write!(f, "FM exchange payload: {e}"),
            PacketError::UnsupportedPi(pi) => write!(f, "unsupported PI {pi}"),
            PacketError::Truncated => write!(f, "truncated packet"),
        }
    }
}

impl std::error::Error for PacketError {}

impl Packet {
    /// Builds a packet, stamping the header's PI from the payload.
    pub fn new(mut header: RouteHeader, payload: Payload) -> Packet {
        header.pi = payload.pi();
        Packet { header, payload }
    }

    /// Total on-wire size: header (+ pool extension and the 4-byte
    /// length/pointer framing) + payload + ECRC.
    pub fn wire_size(&self) -> usize {
        self.header.wire_size() + 4 + self.payload.wire_size() + ECRC_BYTES
    }

    /// True for management-plane packets (PI-4/PI-5), which the paper says
    /// travel at the highest priority.
    pub fn is_management(&self) -> bool {
        matches!(
            self.payload,
            Payload::Pi4(_) | Payload::Pi5(_) | Payload::Fm(_)
        )
    }

    /// Serializes header + payload (+ placeholder ECRC) into bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_size());
        self.header.encode(&mut out);
        match &self.payload {
            Payload::Pi4(p) => p.encode(&mut out),
            Payload::Pi5(p) => p.encode(&mut out),
            Payload::Fm(m) => m.encode(&mut out),
            Payload::Mcast { group, len, hops } => {
                out.extend_from_slice(&group.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
                out.push(*hops);
                out.extend(std::iter::repeat_n(0u8, usize::from(*len)));
            }
            Payload::Data { len } => out.extend(std::iter::repeat_n(0u8, usize::from(*len))),
        }
        // ECRC over everything so far (simple sum-based 32-bit check; the
        // link layer's LCRC does the heavy lifting in real hardware).
        let ecrc = ecrc32(&out);
        out.extend_from_slice(&ecrc.to_be_bytes());
        out
    }

    /// Parses a packet produced by [`Packet::encode`].
    pub fn decode(input: &[u8]) -> Result<Packet, PacketError> {
        if input.len() < ECRC_BYTES {
            return Err(PacketError::Truncated);
        }
        let (body, trailer) = input.split_at(input.len() - ECRC_BYTES);
        let found = u32::from_be_bytes(trailer.try_into().unwrap());
        if ecrc32(body) != found {
            return Err(PacketError::Truncated);
        }
        let (header, used) = RouteHeader::decode(body).map_err(PacketError::Header)?;
        let rest = &body[used..];
        let payload = match header.pi {
            ProtocolInterface::DeviceManagement => {
                let (p, _) = Pi4::decode(rest).map_err(PacketError::Pi4)?;
                Payload::Pi4(p)
            }
            ProtocolInterface::EventReporting => {
                let (p, _) = Pi5::decode(rest).map_err(PacketError::Pi5)?;
                Payload::Pi5(p)
            }
            ProtocolInterface::FmExchange => {
                let (m, _) = FmMessage::decode(rest).map_err(PacketError::Fm)?;
                Payload::Fm(m)
            }
            ProtocolInterface::Multicast => {
                if rest.len() < 5 {
                    return Err(PacketError::Truncated);
                }
                let group = u16::from_be_bytes(rest[0..2].try_into().unwrap());
                let len = u16::from_be_bytes(rest[2..4].try_into().unwrap());
                let hops = rest[4];
                if rest.len() < 5 + usize::from(len) {
                    return Err(PacketError::Truncated);
                }
                Payload::Mcast { group, len, hops }
            }
            ProtocolInterface::Data => Payload::Data {
                len: rest.len() as u16,
            },
            other => return Err(PacketError::UnsupportedPi(other.to_wire())),
        };
        Ok(Packet { header, payload })
    }
}

/// Fletcher-style 32-bit end-to-end check.
fn ecrc32(bytes: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for &x in bytes {
        a = (a + u32::from(x)) % 65_521;
        b = (b + a) % 65_521;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pi4::CapabilityAddr;
    use crate::pi5::PortEvent;
    use crate::turn::TurnPool;

    fn header() -> RouteHeader {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(3, 4).unwrap();
        RouteHeader::forward(ProtocolInterface::DeviceManagement, 7, pool)
    }

    #[test]
    fn pi4_packet_round_trips() {
        let pkt = Packet::new(
            header(),
            Payload::Pi4(Pi4::ReadRequest {
                req_id: 77,
                addr: CapabilityAddr::baseline(0),
                dwords: 6,
            }),
        );
        let bytes = pkt.encode();
        assert_eq!(bytes.len(), pkt.wire_size());
        assert_eq!(Packet::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn pi5_packet_round_trips() {
        let pkt = Packet::new(
            header(),
            Payload::Pi5(Pi5 {
                reporter_dsn: 5,
                port: 2,
                event: PortEvent::PortDown,
                sequence: 9,
            }),
        );
        let bytes = pkt.encode();
        let decoded = Packet::decode(&bytes).unwrap();
        assert_eq!(decoded, pkt);
        assert!(decoded.is_management());
    }

    #[test]
    fn data_packet_round_trips_and_is_not_management() {
        let pkt = Packet::new(header(), Payload::Data { len: 256 });
        let bytes = pkt.encode();
        let decoded = Packet::decode(&bytes).unwrap();
        assert_eq!(decoded.payload, Payload::Data { len: 256 });
        assert!(!decoded.is_management());
    }

    #[test]
    fn pi_is_stamped_from_payload() {
        let pkt = Packet::new(header(), Payload::Data { len: 1 });
        assert_eq!(pkt.header.pi, ProtocolInterface::Data);
    }

    #[test]
    fn corrupted_packet_is_rejected() {
        let pkt = Packet::new(header(), Payload::Pi4(Pi4::WriteCompletion { req_id: 1 }));
        let mut bytes = pkt.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(Packet::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_packet_is_rejected() {
        let pkt = Packet::new(header(), Payload::Pi4(Pi4::WriteCompletion { req_id: 1 }));
        let bytes = pkt.encode();
        for cut in 0..bytes.len() {
            assert!(Packet::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn wire_sizes_are_plausible() {
        // A PI-4 read request over a short path: ~26 bytes on the wire.
        let pkt = Packet::new(
            header(),
            Payload::Pi4(Pi4::ReadRequest {
                req_id: 1,
                addr: CapabilityAddr::baseline(0),
                dwords: 6,
            }),
        );
        assert_eq!(pkt.wire_size(), 8 + 4 + 10 + 4);

        // A full 8-word completion is 8+4+(1+4+1+32)+4 = 54 bytes.
        let completion = Packet::new(
            header(),
            Payload::Pi4(Pi4::ReadCompletion {
                req_id: 1,
                data: vec![0; 8],
            }),
        );
        assert_eq!(completion.wire_size(), 54);
    }
}
