//! PI-5: the ASI event-reporting protocol.
//!
//! When a device observes a change in the state of one of its local ports
//! (a neighbour appeared or disappeared), it notifies the fabric manager
//! with a PI-5 event packet. The FM uses these events to trigger the change
//! assimilation process (re-discovery, path recomputation).

/// The kind of port-state transition being reported.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortEvent {
    /// The port trained and is now active (device hot-addition).
    PortUp,
    /// The port lost its link partner (device hot-removal or failure).
    PortDown,
}

/// A PI-5 event report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pi5 {
    /// Serial number of the reporting device.
    pub reporter_dsn: u64,
    /// The local port whose state changed.
    pub port: u8,
    /// What happened.
    pub event: PortEvent,
    /// Monotonic per-reporter sequence number, so the FM can discard
    /// duplicates and stale reports.
    pub sequence: u32,
}

/// PI-5 decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pi5Error {
    /// Not enough bytes.
    Truncated,
    /// Unknown event code.
    BadEvent(u8),
}

impl core::fmt::Display for Pi5Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Pi5Error::Truncated => write!(f, "truncated PI-5 packet"),
            Pi5Error::BadEvent(e) => write!(f, "unknown PI-5 event code {e:#x}"),
        }
    }
}

impl std::error::Error for Pi5Error {}

impl Pi5 {
    /// On-wire payload size in bytes.
    pub const WIRE_SIZE: usize = 8 + 1 + 1 + 4;

    /// Serializes the event into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.reporter_dsn.to_be_bytes());
        out.push(self.port);
        out.push(match self.event {
            PortEvent::PortUp => 1,
            PortEvent::PortDown => 2,
        });
        out.extend_from_slice(&self.sequence.to_be_bytes());
    }

    /// Parses an event, returning it and the bytes consumed.
    pub fn decode(input: &[u8]) -> Result<(Pi5, usize), Pi5Error> {
        if input.len() < Self::WIRE_SIZE {
            return Err(Pi5Error::Truncated);
        }
        let reporter_dsn = u64::from_be_bytes(input[..8].try_into().unwrap());
        let port = input[8];
        let event = match input[9] {
            1 => PortEvent::PortUp,
            2 => PortEvent::PortDown,
            other => return Err(Pi5Error::BadEvent(other)),
        };
        let sequence = u32::from_be_bytes(input[10..14].try_into().unwrap());
        Ok((
            Pi5 {
                reporter_dsn,
                port,
                event,
                sequence,
            },
            Self::WIRE_SIZE,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_both_events() {
        for event in [PortEvent::PortUp, PortEvent::PortDown] {
            let pdu = Pi5 {
                reporter_dsn: 0x1122_3344_5566_7788,
                port: 13,
                event,
                sequence: 42,
            };
            let mut buf = Vec::new();
            pdu.encode(&mut buf);
            assert_eq!(buf.len(), Pi5::WIRE_SIZE);
            let (decoded, n) = Pi5::decode(&buf).unwrap();
            assert_eq!(n, Pi5::WIRE_SIZE);
            assert_eq!(decoded, pdu);
        }
    }

    #[test]
    fn rejects_truncation() {
        let pdu = Pi5 {
            reporter_dsn: 1,
            port: 0,
            event: PortEvent::PortUp,
            sequence: 0,
        };
        let mut buf = Vec::new();
        pdu.encode(&mut buf);
        for cut in 0..buf.len() {
            assert_eq!(Pi5::decode(&buf[..cut]), Err(Pi5Error::Truncated));
        }
    }

    #[test]
    fn rejects_unknown_event_code() {
        let pdu = Pi5 {
            reporter_dsn: 1,
            port: 0,
            event: PortEvent::PortUp,
            sequence: 0,
        };
        let mut buf = Vec::new();
        pdu.encode(&mut buf);
        buf[9] = 0x7F;
        assert_eq!(Pi5::decode(&buf), Err(Pi5Error::BadEvent(0x7F)));
    }
}
