//! Device configuration space: the storage area the FM reads with PI-4.
//!
//! The ASI specification organizes per-device control/status data into
//! *capability structures*. The **baseline capability** starts with six
//! 32-bit blocks of general device information (type, serial number, number
//! of ports, maximum packet size, …) followed by per-port blocks describing
//! each port (state, link width, link speed).
//!
//! We fix the per-port block at **4 words**, so a PI-4 completion (≤ 8
//! words) carries the attributes of **two ports per read**: a 16-port
//! switch needs 1 general read + 8 port reads, which reproduces the paper's
//! packet-count regime (DESIGN.md §2). A second, writable capability (id 1)
//! stores endpoint route tables for the path-distribution extension.

use crate::pi4::{CapabilityAddr, Pi4Status, MAX_COMPLETION_DWORDS};

/// Words of general information at the head of the baseline capability.
pub const GENERAL_INFO_WORDS: u16 = 6;
/// Words per port block in the baseline capability.
pub const PORT_BLOCK_WORDS: u16 = 4;
/// Ports whose attributes fit in a single PI-4 completion.
pub const PORTS_PER_READ: u8 = (MAX_COMPLETION_DWORDS as u16 / PORT_BLOCK_WORDS) as u8;
/// Capability id of the baseline capability.
pub const CAP_BASELINE: u16 = 0;
/// Capability id of the (writable) endpoint route-table capability.
pub const CAP_ROUTE_TABLE: u16 = 1;
/// Words in the route-table capability.
pub const ROUTE_TABLE_WORDS: u16 = 512;
/// Capability id of the (writable) fabric-ownership claim register used by
/// FM election and by the distributed-discovery extension. Two words: the
/// claiming manager's DSN (hi, lo). Present on every device.
pub const CAP_OWNERSHIP: u16 = 2;
/// Words in the ownership capability.
pub const OWNERSHIP_WORDS: u16 = 2;
/// Capability id of the (writable) multicast forwarding table: one word
/// per multicast group holding the output-port bitmask (switches) or the
/// membership flag (endpoints). Configured by the FM's multicast group
/// management (paper §2).
pub const CAP_MCAST_TABLE: u16 = 3;
/// Number of multicast groups the table supports.
pub const MCAST_GROUPS: u16 = 64;

/// What kind of fabric device this is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceType {
    /// A multi-port switch element.
    Switch,
    /// A fabric endpoint (hosts protocol interfaces, may host the FM).
    Endpoint,
}

impl DeviceType {
    fn to_wire(self) -> u32 {
        match self {
            DeviceType::Switch => 1,
            DeviceType::Endpoint => 2,
        }
    }

    fn from_wire(v: u32) -> Option<DeviceType> {
        match v {
            1 => Some(DeviceType::Switch),
            2 => Some(DeviceType::Endpoint),
            _ => None,
        }
    }
}

/// Operational state of a port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PortState {
    /// No link partner (or partner powered off).
    #[default]
    Down,
    /// Link training in progress.
    Training,
    /// Link up: a live device is attached at the other end.
    Active,
}

impl PortState {
    fn to_wire(self) -> u32 {
        match self {
            PortState::Down => 0,
            PortState::Training => 1,
            PortState::Active => 2,
        }
    }

    fn from_wire(v: u32) -> PortState {
        match v {
            1 => PortState::Training,
            2 => PortState::Active,
            _ => PortState::Down,
        }
    }

    /// True when a live device is attached.
    pub fn is_active(self) -> bool {
        matches!(self, PortState::Active)
    }
}

/// The general-information block (first six words of the baseline
/// capability).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeviceInfo {
    /// Switch or endpoint.
    pub device_type: DeviceType,
    /// Device serial number: globally unique, the FM's dedup key.
    pub dsn: u64,
    /// Number of ports the device supports (≤ 4 for endpoints, ≤ 256 for
    /// switches; our model's switches default to 16).
    pub port_count: u16,
    /// Maximum packet payload in bytes.
    pub max_packet_size: u16,
    /// True if this endpoint can host a fabric manager.
    pub fm_capable: bool,
    /// FM election priority (higher wins; DSN breaks ties).
    pub fm_priority: u8,
}

impl DeviceInfo {
    /// Encodes the six general-information words.
    pub fn to_words(&self) -> [u32; GENERAL_INFO_WORDS as usize] {
        let mut w = [0u32; GENERAL_INFO_WORDS as usize];
        w[0] = (self.device_type.to_wire() << 24)
            | ((self.port_count as u32 & 0x1FF) << 15)
            | (u32::from(self.fm_capable) << 14)
            | (u32::from(self.fm_priority) << 6);
        w[1] = (self.dsn >> 32) as u32;
        w[2] = self.dsn as u32;
        w[3] = u32::from(self.max_packet_size) << 16;
        // w[4], w[5]: status / reserved.
        w
    }

    /// Decodes the general-information words (the FM side of a read).
    pub fn from_words(w: &[u32]) -> Option<DeviceInfo> {
        if w.len() < GENERAL_INFO_WORDS as usize {
            return None;
        }
        Some(DeviceInfo {
            device_type: DeviceType::from_wire(w[0] >> 24)?,
            port_count: ((w[0] >> 15) & 0x1FF) as u16,
            fm_capable: (w[0] >> 14) & 1 == 1,
            fm_priority: ((w[0] >> 6) & 0xFF) as u8,
            dsn: (u64::from(w[1]) << 32) | u64::from(w[2]),
            max_packet_size: (w[3] >> 16) as u16,
        })
    }
}

/// A per-port attribute block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PortInfo {
    /// Current state.
    pub state: PortState,
    /// Negotiated lane count (x1 in the paper's model).
    pub link_width: u8,
    /// Signalling rate in units of 250 Mb/s (10 = 2.5 Gb/s).
    pub link_speed: u8,
    /// The link partner's port number, exchanged during link training
    /// (as PCI Express training sequences exchange link/lane identity).
    /// Only meaningful while the port is [`PortState::Active`]. The FM
    /// uses it to extend turn-pool routes through newly found devices.
    pub peer_port: u8,
}

impl PortInfo {
    /// Encodes the four-word port block.
    pub fn to_words(&self) -> [u32; PORT_BLOCK_WORDS as usize] {
        let mut w = [0u32; PORT_BLOCK_WORDS as usize];
        w[0] = self.state.to_wire()
            | (u32::from(self.link_width) << 8)
            | (u32::from(self.link_speed) << 16)
            | (u32::from(self.peer_port) << 24);
        w
    }

    /// Decodes a four-word port block.
    pub fn from_words(w: &[u32]) -> Option<PortInfo> {
        if w.len() < PORT_BLOCK_WORDS as usize {
            return None;
        }
        Some(PortInfo {
            state: PortState::from_wire(w[0] & 0xFF),
            link_width: ((w[0] >> 8) & 0xFF) as u8,
            link_speed: ((w[0] >> 16) & 0xFF) as u8,
            peer_port: ((w[0] >> 24) & 0xFF) as u8,
        })
    }
}

/// Offset of port `p`'s block within the baseline capability.
pub fn port_block_offset(port: u16) -> u16 {
    GENERAL_INFO_WORDS + PORT_BLOCK_WORDS * port
}

/// The PI-4 read that fetches general device information.
pub fn general_info_read() -> (CapabilityAddr, u8) {
    (CapabilityAddr::baseline(0), GENERAL_INFO_WORDS as u8)
}

/// The sequence of PI-4 reads that fetch all port blocks of a device with
/// `port_count` ports, two ports per read.
pub fn port_info_reads(port_count: u16) -> Vec<(CapabilityAddr, u8)> {
    let mut reads = Vec::new();
    let mut port = 0u16;
    while port < port_count {
        let n = (port_count - port).min(u16::from(PORTS_PER_READ));
        reads.push((
            CapabilityAddr::baseline(port_block_offset(port)),
            (n * PORT_BLOCK_WORDS) as u8,
        ));
        port += n;
    }
    reads
}

/// A device's live configuration space: typed state materialized into
/// words on each PI-4 access.
#[derive(Clone, Debug)]
pub struct ConfigSpace {
    info: DeviceInfo,
    ports: Vec<PortInfo>,
    route_table: Vec<u32>,
    ownership: [u32; OWNERSHIP_WORDS as usize],
    mcast_table: Vec<u32>,
}

impl ConfigSpace {
    /// Creates a configuration space with all ports down.
    pub fn new(info: DeviceInfo) -> ConfigSpace {
        let ports = vec![PortInfo::default(); usize::from(info.port_count)];
        ConfigSpace {
            info,
            ports,
            route_table: vec![0; usize::from(ROUTE_TABLE_WORDS)],
            ownership: [0; OWNERSHIP_WORDS as usize],
            mcast_table: vec![0; usize::from(MCAST_GROUPS)],
        }
    }

    /// Output-port bitmask (switch) or membership flag (endpoint) for a
    /// multicast group.
    pub fn mcast_entry(&self, group: u16) -> u32 {
        self.mcast_table
            .get(usize::from(group))
            .copied()
            .unwrap_or(0)
    }

    /// DSN of the manager currently claiming this device (0 = unclaimed).
    pub fn owner_dsn(&self) -> u64 {
        (u64::from(self.ownership[0]) << 32) | u64::from(self.ownership[1])
    }

    /// The general-information block.
    pub fn info(&self) -> &DeviceInfo {
        &self.info
    }

    /// Current attributes of port `p`.
    pub fn port(&self, p: u16) -> Option<&PortInfo> {
        self.ports.get(usize::from(p))
    }

    /// Mutates port `p`'s attributes (the fabric model calls this as links
    /// train and fail). Returns the previous state.
    pub fn set_port(&mut self, p: u16, info: PortInfo) -> Option<PortInfo> {
        let slot = self.ports.get_mut(usize::from(p))?;
        Some(std::mem::replace(slot, info))
    }

    /// Number of ports currently active.
    pub fn active_ports(&self) -> usize {
        self.ports.iter().filter(|p| p.state.is_active()).count()
    }

    /// Services a PI-4 read.
    pub fn read(&self, addr: CapabilityAddr, dwords: u8) -> Result<Vec<u32>, Pi4Status> {
        if dwords == 0 || usize::from(dwords) > MAX_COMPLETION_DWORDS {
            return Err(Pi4Status::UnsupportedRequest);
        }
        match addr.capability {
            CAP_BASELINE => {
                let total = port_block_offset(self.info.port_count);
                let end = addr.offset.checked_add(u16::from(dwords));
                match end {
                    Some(end) if end <= total => {}
                    _ => return Err(Pi4Status::UnsupportedRequest),
                }
                let mut words = Vec::with_capacity(usize::from(dwords));
                for off in addr.offset..addr.offset + u16::from(dwords) {
                    words.push(self.baseline_word(off));
                }
                Ok(words)
            }
            CAP_ROUTE_TABLE => {
                if self.info.device_type != DeviceType::Endpoint {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                let end = usize::from(addr.offset) + usize::from(dwords);
                if end > self.route_table.len() {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                Ok(self.route_table[usize::from(addr.offset)..end].to_vec())
            }
            CAP_OWNERSHIP => {
                let end = usize::from(addr.offset) + usize::from(dwords);
                if end > self.ownership.len() {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                Ok(self.ownership[usize::from(addr.offset)..end].to_vec())
            }
            CAP_MCAST_TABLE => {
                let end = usize::from(addr.offset) + usize::from(dwords);
                if end > self.mcast_table.len() {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                Ok(self.mcast_table[usize::from(addr.offset)..end].to_vec())
            }
            _ => Err(Pi4Status::UnsupportedRequest),
        }
    }

    /// Services a PI-4 write. Only the route-table capability is writable.
    pub fn write(&mut self, addr: CapabilityAddr, data: &[u32]) -> Result<(), Pi4Status> {
        if data.is_empty() || data.len() > MAX_COMPLETION_DWORDS {
            return Err(Pi4Status::UnsupportedRequest);
        }
        match addr.capability {
            CAP_ROUTE_TABLE => {
                if self.info.device_type != DeviceType::Endpoint {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                let start = usize::from(addr.offset);
                let end = start + data.len();
                if end > self.route_table.len() {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                self.route_table[start..end].copy_from_slice(data);
                Ok(())
            }
            CAP_OWNERSHIP => {
                let start = usize::from(addr.offset);
                let end = start + data.len();
                if end > self.ownership.len() {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                // Claim-and-hold semantics: a non-zero owner can only be
                // overwritten by zeros (release). This gives racing
                // managers a deterministic winner: the first write sticks,
                // rivals observe it on read-back and cede the region.
                let releasing = data.iter().all(|&w| w == 0);
                if self.owner_dsn() != 0 && !releasing {
                    return Ok(()); // write ignored, completion still OK
                }
                self.ownership[start..end].copy_from_slice(data);
                Ok(())
            }
            CAP_MCAST_TABLE => {
                let start = usize::from(addr.offset);
                let end = start + data.len();
                if end > self.mcast_table.len() {
                    return Err(Pi4Status::UnsupportedRequest);
                }
                self.mcast_table[start..end].copy_from_slice(data);
                Ok(())
            }
            _ => Err(Pi4Status::UnsupportedRequest),
        }
    }

    fn baseline_word(&self, off: u16) -> u32 {
        if off < GENERAL_INFO_WORDS {
            self.info.to_words()[usize::from(off)]
        } else {
            let rel = off - GENERAL_INFO_WORDS;
            let port = rel / PORT_BLOCK_WORDS;
            let word = rel % PORT_BLOCK_WORDS;
            self.ports[usize::from(port)].to_words()[usize::from(word)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch_info() -> DeviceInfo {
        DeviceInfo {
            device_type: DeviceType::Switch,
            dsn: 0xABCD_EF01_2345_6789,
            port_count: 16,
            max_packet_size: 2048,
            fm_capable: false,
            fm_priority: 0,
        }
    }

    fn endpoint_info() -> DeviceInfo {
        DeviceInfo {
            device_type: DeviceType::Endpoint,
            dsn: 42,
            port_count: 1,
            max_packet_size: 2048,
            fm_capable: true,
            fm_priority: 200,
        }
    }

    #[test]
    fn device_info_words_round_trip() {
        for info in [switch_info(), endpoint_info()] {
            let words = info.to_words();
            assert_eq!(DeviceInfo::from_words(&words), Some(info));
        }
    }

    #[test]
    fn device_info_from_short_slice_fails() {
        assert_eq!(DeviceInfo::from_words(&[0; 5]), None);
    }

    #[test]
    fn device_info_bad_type_fails() {
        let mut words = switch_info().to_words();
        words[0] &= 0x00FF_FFFF; // type = 0
        assert_eq!(DeviceInfo::from_words(&words), None);
    }

    #[test]
    fn port_info_words_round_trip() {
        let p = PortInfo {
            state: PortState::Active,
            link_width: 1,
            link_speed: 10,
            peer_port: 13,
        };
        assert_eq!(PortInfo::from_words(&p.to_words()), Some(p));
        assert_eq!(PortInfo::from_words(&[0]), None);
    }

    #[test]
    fn ownership_register_is_writable_everywhere() {
        for info in [switch_info(), endpoint_info()] {
            let mut cs = ConfigSpace::new(info);
            assert_eq!(cs.owner_dsn(), 0);
            let addr = CapabilityAddr {
                capability: CAP_OWNERSHIP,
                offset: 0,
            };
            let dsn: u64 = 0x0123_4567_89AB_CDEF;
            cs.write(addr, &[(dsn >> 32) as u32, dsn as u32]).unwrap();
            assert_eq!(cs.owner_dsn(), dsn);
            assert_eq!(
                cs.read(addr, 2).unwrap(),
                vec![(dsn >> 32) as u32, dsn as u32]
            );
            // Out-of-range access fails.
            assert_eq!(cs.read(addr, 3), Err(Pi4Status::UnsupportedRequest));
            assert_eq!(
                cs.write(
                    CapabilityAddr {
                        capability: CAP_OWNERSHIP,
                        offset: 2
                    },
                    &[1]
                ),
                Err(Pi4Status::UnsupportedRequest)
            );
        }
    }

    #[test]
    fn ports_per_read_is_two() {
        assert_eq!(PORTS_PER_READ, 2);
    }

    #[test]
    fn port_reads_cover_sixteen_port_switch_in_eight() {
        let reads = port_info_reads(16);
        assert_eq!(reads.len(), 8);
        assert_eq!(reads[0], (CapabilityAddr::baseline(6), 8));
        assert_eq!(reads[7], (CapabilityAddr::baseline(6 + 14 * 4), 8));
    }

    #[test]
    fn port_reads_for_one_port_endpoint() {
        let reads = port_info_reads(1);
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0], (CapabilityAddr::baseline(6), 4));
    }

    #[test]
    fn port_reads_for_odd_port_count() {
        let reads = port_info_reads(5);
        assert_eq!(reads.len(), 3);
        // Last read covers a single port.
        assert_eq!(reads[2].1, 4);
    }

    #[test]
    fn read_general_info_through_pi4() {
        let cs = ConfigSpace::new(switch_info());
        let (addr, n) = general_info_read();
        let words = cs.read(addr, n).unwrap();
        assert_eq!(DeviceInfo::from_words(&words), Some(switch_info()));
    }

    #[test]
    fn read_port_blocks_through_pi4() {
        let mut cs = ConfigSpace::new(switch_info());
        cs.set_port(
            3,
            PortInfo {
                state: PortState::Active,
                link_width: 1,
                link_speed: 10,
                peer_port: 2,
            },
        );
        // Port 3 lives in the second two-port read (ports 2..4).
        let reads = port_info_reads(16);
        let words = cs.read(reads[1].0, reads[1].1).unwrap();
        let p2 = PortInfo::from_words(&words[..4]).unwrap();
        let p3 = PortInfo::from_words(&words[4..]).unwrap();
        assert_eq!(p2.state, PortState::Down);
        assert_eq!(p3.state, PortState::Active);
    }

    #[test]
    fn out_of_range_reads_fail() {
        let cs = ConfigSpace::new(endpoint_info());
        // Endpoint baseline = 6 + 4 = 10 words.
        assert!(cs.read(CapabilityAddr::baseline(9), 1).is_ok());
        assert_eq!(
            cs.read(CapabilityAddr::baseline(9), 2),
            Err(Pi4Status::UnsupportedRequest)
        );
        assert_eq!(
            cs.read(CapabilityAddr::baseline(u16::MAX), 8),
            Err(Pi4Status::UnsupportedRequest)
        );
        assert_eq!(
            cs.read(CapabilityAddr::baseline(0), 0),
            Err(Pi4Status::UnsupportedRequest)
        );
    }

    #[test]
    fn unknown_capability_fails() {
        let cs = ConfigSpace::new(switch_info());
        assert_eq!(
            cs.read(
                CapabilityAddr {
                    capability: 99,
                    offset: 0
                },
                1
            ),
            Err(Pi4Status::UnsupportedRequest)
        );
    }

    #[test]
    fn route_table_write_read_round_trip() {
        let mut cs = ConfigSpace::new(endpoint_info());
        let addr = CapabilityAddr {
            capability: CAP_ROUTE_TABLE,
            offset: 8,
        };
        cs.write(addr, &[0xAA, 0xBB, 0xCC]).unwrap();
        assert_eq!(cs.read(addr, 3).unwrap(), vec![0xAA, 0xBB, 0xCC]);
    }

    #[test]
    fn route_table_rejected_on_switches() {
        let mut cs = ConfigSpace::new(switch_info());
        let addr = CapabilityAddr {
            capability: CAP_ROUTE_TABLE,
            offset: 0,
        };
        assert_eq!(cs.write(addr, &[1]), Err(Pi4Status::UnsupportedRequest));
        assert_eq!(cs.read(addr, 1), Err(Pi4Status::UnsupportedRequest));
    }

    #[test]
    fn baseline_is_read_only() {
        let mut cs = ConfigSpace::new(endpoint_info());
        assert_eq!(
            cs.write(CapabilityAddr::baseline(0), &[0]),
            Err(Pi4Status::UnsupportedRequest)
        );
    }

    #[test]
    fn set_port_returns_previous_and_counts_active() {
        let mut cs = ConfigSpace::new(switch_info());
        assert_eq!(cs.active_ports(), 0);
        let prev = cs
            .set_port(
                0,
                PortInfo {
                    state: PortState::Active,
                    link_width: 1,
                    link_speed: 10,
                    peer_port: 0,
                },
            )
            .unwrap();
        assert_eq!(prev.state, PortState::Down);
        assert_eq!(cs.active_ports(), 1);
        assert!(cs.set_port(99, PortInfo::default()).is_none());
    }
}
