//! The ASI packet routing header (paper Fig. 1).
//!
//! The specification's route header is two 32-bit words carrying the fields
//! shown in Fig. 1: `F`, `P`, Header CRC, Turn Pointer, `E`, Credits
//! Required, `TS`, `OO`, Traffic Class, `S`/`R`/`P`, `PI`, `NC`, `D`, and
//! the 31-bit Turn Pool. The figure gives the field inventory but not exact
//! bit offsets, so this module fixes a concrete layout (documented below)
//! and implements byte-accurate pack/unpack with a CRC-5 integrity check:
//!
//! ```text
//! DW0: [31]    D (direction)
//!      [30:0]  Turn Pool (31 bits, strict mode)
//! DW1: [31:24] Turn Pointer (8 bits; spec needs 5, extended pools need 8+)
//!      [23:17] PI — Protocol Interface (7 bits)
//!      [16:14] Traffic Class (3 bits)
//!      [13]    OO (out-of-order / bypassable)
//!      [12]    TS (turn-pool switching hint)
//!      [11:7]  Credits Required (5 bits)
//!      [6]     E (ECRC present)
//!      [5]     F (frame boundary)
//!      [4:0]   Header CRC (CRC-5, x^5 + x^2 + 1, over DW0 and DW1[31:5])
//! ```
//!
//! Extended-pool packets (beyond the 31-bit spec field) append extra
//! turn-pool DWORDs after DW1; `ext_pool_dwords` records how many. The
//! extension exists because the paper's 8×8 meshes need up to 56 turn bits
//! (DESIGN.md §2) and large-fabric stress topologies (64×64 meshes) need up
//! to 508; strict mode rejects such paths instead. Because extended pools
//! can exceed 255 bits, the 8-bit DW1 turn-pointer field is too narrow for
//! them: the explicit framing pair after DW1 therefore carries both the
//! pool bit-length and the full 16-bit turn pointer
//! (`[len u16][pointer u16]`), and DW1 keeps the low 8 pointer bits for
//! spec-mode fidelity.

use crate::turn::{Direction, TurnPool, POOL_WORDS, SPEC_POOL_BITS};

/// Protocol Interface numbers used by the management plane.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ProtocolInterface {
    /// PI-0: spanning-tree / fabric multicast management (unused here).
    Multicast,
    /// PI-4: device configuration-space access.
    DeviceManagement,
    /// PI-5: event reporting.
    EventReporting,
    /// PI-8: encapsulated application data (our background traffic).
    Data,
    /// PI-9 (vendor): FM-to-FM exchange for distributed discovery.
    FmExchange,
    /// Any other PI value, preserved verbatim.
    Other(u8),
}

impl ProtocolInterface {
    /// Wire encoding (7 bits).
    pub fn to_wire(self) -> u8 {
        match self {
            ProtocolInterface::Multicast => 0,
            ProtocolInterface::DeviceManagement => 4,
            ProtocolInterface::EventReporting => 5,
            ProtocolInterface::Data => 8,
            ProtocolInterface::FmExchange => 9,
            ProtocolInterface::Other(v) => v & 0x7F,
        }
    }

    /// Decodes a 7-bit wire value.
    pub fn from_wire(v: u8) -> Self {
        match v & 0x7F {
            0 => ProtocolInterface::Multicast,
            4 => ProtocolInterface::DeviceManagement,
            5 => ProtocolInterface::EventReporting,
            8 => ProtocolInterface::Data,
            9 => ProtocolInterface::FmExchange,
            other => ProtocolInterface::Other(other),
        }
    }
}

/// Header decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// CRC-5 mismatch: the header was corrupted in flight.
    BadCrc {
        /// CRC carried by the packet.
        found: u8,
        /// CRC recomputed over the received bits.
        expected: u8,
    },
    /// Fewer bytes than a route header.
    Truncated,
    /// The turn-pointer value exceeds the pool length.
    BadPointer,
}

impl core::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HeaderError::BadCrc { found, expected } => {
                write!(
                    f,
                    "header CRC mismatch: found {found:#x}, expected {expected:#x}"
                )
            }
            HeaderError::Truncated => write!(f, "truncated route header"),
            HeaderError::BadPointer => write!(f, "turn pointer exceeds pool length"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// The unicast routing header carried by every packet in the model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteHeader {
    /// Protocol interface of the payload.
    pub pi: ProtocolInterface,
    /// Traffic class (0–7). Management traffic uses TC 7, the highest.
    pub tc: u8,
    /// Bypassable-ordering flag (`OO`): the packet may use a BVC bypass
    /// queue.
    pub oo: bool,
    /// Turn-pool switching hint (`TS`).
    pub ts: bool,
    /// Credits the packet consumes at each hop (in 64-byte units).
    pub credits_required: u8,
    /// ECRC-present flag (`E`).
    pub ecrc: bool,
    /// Frame-boundary flag (`F`).
    pub frame: bool,
    /// Direction bit (`D`).
    pub direction: Direction,
    /// Current turn-pointer value (bits).
    pub turn_pointer: u16,
    /// The turn pool.
    pub pool: TurnPool,
}

/// CRC-5 with polynomial x^5 + x^2 + 1 (0b00101), MSB-first, init 0x1F.
pub fn crc5(bits: &[u8], nbits: usize) -> u8 {
    let mut crc: u8 = 0x1F;
    for i in 0..nbits {
        let byte = bits[i / 8];
        let bit = (byte >> (7 - (i % 8))) & 1;
        let top = (crc >> 4) & 1;
        crc = (crc << 1) & 0x1F;
        if top ^ bit == 1 {
            crc ^= 0x05;
        }
    }
    crc
}

impl RouteHeader {
    /// Builds a forward-direction management header over `pool`.
    pub fn forward(pi: ProtocolInterface, tc: u8, pool: TurnPool) -> RouteHeader {
        let ptr = pool.len_bits();
        RouteHeader {
            pi,
            tc,
            oo: false,
            ts: false,
            credits_required: 1,
            ecrc: true,
            frame: false,
            direction: Direction::Forward,
            turn_pointer: ptr,
            pool,
        }
    }

    /// Derives the completion header for a received request: same pool,
    /// same TC (the spec requires responses to retrace the request path and
    /// class), reversed direction, pointer reset for backward traversal.
    pub fn reply(&self, pi: ProtocolInterface) -> RouteHeader {
        let direction = self.direction.reversed();
        let turn_pointer = match direction {
            Direction::Forward => self.pool.len_bits(),
            Direction::Backward => 0,
        };
        RouteHeader {
            pi,
            tc: self.tc,
            oo: self.oo,
            ts: self.ts,
            credits_required: self.credits_required,
            ecrc: self.ecrc,
            frame: self.frame,
            direction,
            turn_pointer,
            pool: self.pool.clone(),
        }
    }

    /// Number of extra turn-pool DWORDs beyond the 31-bit spec field.
    pub fn ext_pool_dwords(&self) -> usize {
        let bits = self.pool.len_bits();
        if bits <= SPEC_POOL_BITS {
            0
        } else {
            ((bits - SPEC_POOL_BITS) as usize).div_ceil(32)
        }
    }

    /// On-wire size of the header in bytes (8 + extension DWORDs).
    pub fn wire_size(&self) -> usize {
        8 + 4 * self.ext_pool_dwords()
    }

    /// Serializes the header (DW0, DW1, extension DWORDs) into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let words = self.pool.words();
        let pool_low31 = (words[0] & 0x7FFF_FFFF) as u32;
        let d_bit = match self.direction {
            Direction::Forward => 0u32,
            Direction::Backward => 1u32,
        };
        let dw0: u32 = (d_bit << 31) | pool_low31;

        let mut dw1: u32 = 0;
        dw1 |= (self.turn_pointer as u32 & 0xFF) << 24;
        dw1 |= u32::from(self.pi.to_wire()) << 17;
        dw1 |= u32::from(self.tc & 0x7) << 14;
        dw1 |= u32::from(self.oo) << 13;
        dw1 |= u32::from(self.ts) << 12;
        dw1 |= u32::from(self.credits_required & 0x1F) << 7;
        dw1 |= u32::from(self.ecrc) << 6;
        dw1 |= u32::from(self.frame) << 5;

        let mut bytes = [0u8; 8];
        bytes[..4].copy_from_slice(&dw0.to_be_bytes());
        bytes[4..].copy_from_slice(&dw1.to_be_bytes());
        // CRC over DW0 plus DW1 above its CRC field: 64 - 5 = 59 bits.
        let crc = crc5(&bytes, 59);
        let dw1 = dw1 | u32::from(crc);
        bytes[4..].copy_from_slice(&dw1.to_be_bytes());
        out.extend_from_slice(&bytes);

        // Framing: pool bit-length then the full 16-bit turn pointer,
        // directly after DW1, so the receiver knows how many extension
        // DWORDs follow and can route pools longer than the 8-bit DW1
        // pointer field can address. (Real ASI infers the extension count
        // from the turn pointer; explicit fields keep our extended mode
        // unambiguous.)
        out.extend_from_slice(&self.pool.len_bits().to_be_bytes());
        out.extend_from_slice(&self.turn_pointer.to_be_bytes());

        // Extension DWORDs carry pool bits 31.. in 32-bit chunks.
        for i in 0..self.ext_pool_dwords() {
            let base = 31 + 32 * i;
            let mut dw: u32 = 0;
            for b in 0..32 {
                let bit = base + b;
                let w = bit / 64;
                let off = bit % 64;
                if w < POOL_WORDS && (words[w] >> off) & 1 == 1 {
                    dw |= 1 << b;
                }
            }
            out.extend_from_slice(&dw.to_be_bytes());
        }
    }

    /// Parses a header from `input`, returning it plus the bytes consumed.
    pub fn decode(input: &[u8]) -> Result<(RouteHeader, usize), HeaderError> {
        if input.len() < 12 {
            return Err(HeaderError::Truncated);
        }
        let dw0 = u32::from_be_bytes(input[..4].try_into().unwrap());
        let dw1 = u32::from_be_bytes(input[4..8].try_into().unwrap());
        let found_crc = (dw1 & 0x1F) as u8;
        let mut check = [0u8; 8];
        check[..4].copy_from_slice(&input[..4]);
        check[4..].copy_from_slice(&(dw1 & !0x1F).to_be_bytes());
        let expected = crc5(&check, 59);
        if expected != found_crc {
            return Err(HeaderError::BadCrc {
                found: found_crc,
                expected,
            });
        }

        let direction = if dw0 >> 31 == 1 {
            Direction::Backward
        } else {
            Direction::Forward
        };
        let pi = ProtocolInterface::from_wire(((dw1 >> 17) & 0x7F) as u8);
        let tc = ((dw1 >> 14) & 0x7) as u8;
        let oo = (dw1 >> 13) & 1 == 1;
        let ts = (dw1 >> 12) & 1 == 1;
        let credits_required = ((dw1 >> 7) & 0x1F) as u8;
        let ecrc = (dw1 >> 6) & 1 == 1;
        let frame = (dw1 >> 5) & 1 == 1;

        // Reconstruct the pool words from the spec field + extensions.
        // Layout: [DW0][DW1][len u16][pointer u16][ext DWORDs...].
        let mut words = [0u64; POOL_WORDS];
        words[0] = u64::from(dw0 & 0x7FFF_FFFF);
        let len_bits = u16::from_be_bytes(input[8..10].try_into().unwrap());
        let turn_pointer = u16::from_be_bytes(input[10..12].try_into().unwrap());
        // DW1 keeps the low 8 pointer bits; the framing field is canonical
        // and the two must agree.
        if (turn_pointer & 0xFF) as u32 != (dw1 >> 24) & 0xFF {
            return Err(HeaderError::BadPointer);
        }
        let mut consumed = 12;
        if len_bits > SPEC_POOL_BITS {
            let ext = ((len_bits - SPEC_POOL_BITS) as usize).div_ceil(32);
            let need = 12 + 4 * ext;
            if input.len() < need {
                return Err(HeaderError::Truncated);
            }
            for i in 0..ext {
                let off = 12 + 4 * i;
                let dw = u32::from_be_bytes(input[off..off + 4].try_into().unwrap());
                for b in 0..32usize {
                    if (dw >> b) & 1 == 1 {
                        let bit = 31 + 32 * i + b;
                        if bit / 64 < POOL_WORDS {
                            words[bit / 64] |= 1u64 << (bit % 64);
                        }
                    }
                }
            }
            consumed = need;
        }

        let capacity = len_bits.max(SPEC_POOL_BITS);
        let pool =
            TurnPool::from_words(words, len_bits, capacity).map_err(|_| HeaderError::BadPointer)?;
        if turn_pointer > pool.len_bits() {
            return Err(HeaderError::BadPointer);
        }

        Ok((
            RouteHeader {
                pi,
                tc,
                oo,
                ts,
                credits_required,
                ecrc,
                frame,
                direction,
                turn_pointer,
                pool,
            },
            consumed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turn::MAX_POOL_BITS;

    fn sample_pool() -> TurnPool {
        let mut p = TurnPool::new_spec();
        p.push_turn(5, 4).unwrap();
        p.push_turn(2, 2).unwrap();
        p
    }

    #[test]
    fn crc5_known_properties() {
        // CRC of the empty message is the init value.
        assert_eq!(crc5(&[], 0), 0x1F);
        // Flipping any single bit changes the CRC.
        let base = [0xA5u8, 0x5A, 0x00, 0xFF];
        let c0 = crc5(&base, 32);
        for i in 0..32 {
            let mut flipped = base;
            flipped[i / 8] ^= 1 << (7 - (i % 8));
            assert_ne!(crc5(&flipped, 32), c0, "bit {i} undetected");
        }
    }

    #[test]
    fn header_round_trips() {
        let hdr = RouteHeader::forward(ProtocolInterface::DeviceManagement, 7, sample_pool());
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        assert_eq!(buf.len(), hdr.wire_size() + 4);
        let (decoded, consumed) = RouteHeader::decode(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded, hdr);
    }

    #[test]
    fn extended_header_round_trips() {
        let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
        for i in 0..20 {
            pool.push_turn((i * 3 % 16) as u8, 4).unwrap(); // 80 bits
        }
        let hdr = RouteHeader::forward(ProtocolInterface::DeviceManagement, 7, pool);
        assert_eq!(hdr.ext_pool_dwords(), 2);
        assert_eq!(hdr.wire_size(), 16);
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        let (decoded, consumed) = RouteHeader::decode(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded.pool, hdr.pool);
        assert_eq!(decoded.turn_pointer, hdr.turn_pointer);
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let hdr = RouteHeader::forward(ProtocolInterface::EventReporting, 7, sample_pool());
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        for i in 0..8 {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            match RouteHeader::decode(&bad) {
                Err(HeaderError::BadCrc { .. }) => {}
                other => panic!("byte {i}: corruption not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_header_is_rejected() {
        let hdr = RouteHeader::forward(ProtocolInterface::Data, 0, sample_pool());
        let mut buf = Vec::new();
        hdr.encode(&mut buf);
        for cut in 0..buf.len() {
            let r = RouteHeader::decode(&buf[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn reply_retraces_path() {
        let hdr = RouteHeader::forward(ProtocolInterface::DeviceManagement, 7, sample_pool());
        let rep = hdr.reply(ProtocolInterface::DeviceManagement);
        assert_eq!(rep.direction, Direction::Backward);
        assert_eq!(rep.turn_pointer, 0);
        assert_eq!(rep.pool, hdr.pool);
        assert_eq!(rep.tc, hdr.tc);
        // Replying to a reply flips back.
        let back = rep.reply(ProtocolInterface::DeviceManagement);
        assert_eq!(back.direction, Direction::Forward);
        assert_eq!(back.turn_pointer, back.pool.len_bits());
    }

    #[test]
    fn pi_wire_round_trip() {
        for pi in [
            ProtocolInterface::Multicast,
            ProtocolInterface::DeviceManagement,
            ProtocolInterface::EventReporting,
            ProtocolInterface::Data,
            ProtocolInterface::Other(33),
        ] {
            assert_eq!(ProtocolInterface::from_wire(pi.to_wire()), pi);
        }
    }

    #[test]
    fn spec_header_is_8_bytes_plus_framing() {
        let hdr = RouteHeader::forward(ProtocolInterface::Data, 3, sample_pool());
        assert_eq!(hdr.ext_pool_dwords(), 0);
        assert_eq!(hdr.wire_size(), 8);
    }

    #[test]
    fn forward_header_pointer_is_pool_length() {
        let pool = sample_pool();
        let bits = pool.len_bits();
        let hdr = RouteHeader::forward(ProtocolInterface::Data, 1, pool);
        assert_eq!(hdr.turn_pointer, bits);
    }
}
