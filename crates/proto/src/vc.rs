//! Virtual channels and traffic-class mapping.
//!
//! ASI defines three VC families: unicast **bypassable** (BVC, an ordered
//! queue plus a bypass queue), unicast **ordered** (OVC), and **multicast**
//! (MVC). A packet's traffic class (TC, set by the source) is looked up in
//! a per-port TC/VC mapping table to select the VC it occupies at each hop.
//! Management packets ride the highest TC, which the paper relies on for
//! its "application traffic scarcely influences discovery" observation.

/// The three VC families.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VcKind {
    /// Unicast bypassable: ordered queue + bypass queue.
    Bypassable,
    /// Unicast ordered.
    Ordered,
    /// Multicast.
    Multicast,
}

/// A virtual channel: family plus index within the family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VcId {
    /// Which family.
    pub kind: VcKind,
    /// Index within the family.
    pub index: u8,
}

impl VcId {
    /// Ordered VC `i`.
    pub const fn ovc(index: u8) -> VcId {
        VcId {
            kind: VcKind::Ordered,
            index,
        }
    }

    /// Bypassable VC `i`.
    pub const fn bvc(index: u8) -> VcId {
        VcId {
            kind: VcKind::Bypassable,
            index,
        }
    }

    /// Multicast VC `i`.
    pub const fn mvc(index: u8) -> VcId {
        VcId {
            kind: VcKind::Multicast,
            index,
        }
    }

    /// A dense index for table lookups given a [`VcConfig`].
    pub fn flat_index(self, cfg: &VcConfig) -> usize {
        match self.kind {
            VcKind::Bypassable => usize::from(self.index),
            VcKind::Ordered => usize::from(cfg.bvcs) + usize::from(self.index),
            VcKind::Multicast => {
                usize::from(cfg.bvcs) + usize::from(cfg.ovcs) + usize::from(self.index)
            }
        }
    }
}

/// How many VCs of each family a port implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VcConfig {
    /// Bypassable unicast VCs.
    pub bvcs: u8,
    /// Ordered unicast VCs.
    pub ovcs: u8,
    /// Multicast VCs.
    pub mvcs: u8,
}

impl VcConfig {
    /// The model's default: one BVC for bulk data, one OVC reserved for
    /// management, one MVC.
    pub const DEFAULT: VcConfig = VcConfig {
        bvcs: 1,
        ovcs: 1,
        mvcs: 1,
    };

    /// Total VC count.
    pub fn total(&self) -> usize {
        usize::from(self.bvcs) + usize::from(self.ovcs) + usize::from(self.mvcs)
    }

    /// Enumerates every VC this configuration implements.
    pub fn all(&self) -> Vec<VcId> {
        let mut v = Vec::with_capacity(self.total());
        for i in 0..self.bvcs {
            v.push(VcId::bvc(i));
        }
        for i in 0..self.ovcs {
            v.push(VcId::ovc(i));
        }
        for i in 0..self.mvcs {
            v.push(VcId::mvc(i));
        }
        v
    }
}

/// The management traffic class (highest priority).
pub const MANAGEMENT_TC: u8 = 7;

/// Fixed TC → VC mapping table (8 traffic classes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcVcMap {
    map: [VcId; 8],
}

impl TcVcMap {
    /// The model's default map: TC 7 (management) → OVC 0; everything else
    /// → BVC 0.
    pub fn default_map() -> TcVcMap {
        let mut map = [VcId::bvc(0); 8];
        map[usize::from(MANAGEMENT_TC)] = VcId::ovc(0);
        TcVcMap { map }
    }

    /// Builds a custom map, validating every target against `cfg`.
    pub fn new(map: [VcId; 8], cfg: &VcConfig) -> Result<TcVcMap, TcMapError> {
        for (tc, vc) in map.iter().enumerate() {
            let in_range = match vc.kind {
                VcKind::Bypassable => vc.index < cfg.bvcs,
                VcKind::Ordered => vc.index < cfg.ovcs,
                VcKind::Multicast => vc.index < cfg.mvcs,
            };
            if !in_range {
                return Err(TcMapError {
                    tc: tc as u8,
                    vc: *vc,
                });
            }
        }
        Ok(TcVcMap { map })
    }

    /// The VC packets of class `tc` occupy.
    pub fn vc_for(&self, tc: u8) -> VcId {
        self.map[usize::from(tc & 0x7)]
    }
}

/// A TC points at a VC the port does not implement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcMapError {
    /// Offending traffic class.
    pub tc: u8,
    /// The out-of-range VC.
    pub vc: VcId,
}

impl core::fmt::Display for TcMapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TC {} maps to unimplemented VC {:?}", self.tc, self.vc)
    }
}

impl std::error::Error for TcMapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_map_sends_management_to_ovc() {
        let map = TcVcMap::default_map();
        assert_eq!(map.vc_for(MANAGEMENT_TC), VcId::ovc(0));
        for tc in 0..7 {
            assert_eq!(map.vc_for(tc), VcId::bvc(0));
        }
    }

    #[test]
    fn tc_lookup_masks_to_three_bits() {
        let map = TcVcMap::default_map();
        assert_eq!(map.vc_for(15), map.vc_for(7));
        assert_eq!(map.vc_for(8), map.vc_for(0));
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let cfg = VcConfig {
            bvcs: 2,
            ovcs: 2,
            mvcs: 1,
        };
        let mut seen = std::collections::HashSet::new();
        for vc in cfg.all() {
            let idx = vc.flat_index(&cfg);
            assert!(idx < cfg.total());
            assert!(seen.insert(idx), "duplicate flat index {idx}");
        }
        assert_eq!(seen.len(), cfg.total());
    }

    #[test]
    fn default_config_totals() {
        assert_eq!(VcConfig::DEFAULT.total(), 3);
        assert_eq!(VcConfig::DEFAULT.all().len(), 3);
    }

    #[test]
    fn custom_map_validates_against_config() {
        let cfg = VcConfig {
            bvcs: 1,
            ovcs: 1,
            mvcs: 0,
        };
        let bad = [VcId::mvc(0); 8];
        let err = TcVcMap::new(bad, &cfg).unwrap_err();
        assert_eq!(err.tc, 0);
        assert_eq!(err.vc, VcId::mvc(0));

        let good = TcVcMap::new([VcId::bvc(0); 8], &cfg);
        assert!(good.is_ok());
    }

    #[test]
    fn default_map_is_valid_for_default_config() {
        let map = TcVcMap::default_map();
        let rebuilt = TcVcMap::new(map.map, &VcConfig::DEFAULT).unwrap();
        assert_eq!(rebuilt, map);
    }
}
