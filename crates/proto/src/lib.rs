//! `asi-proto` — Advanced Switching wire formats and protocol types.
//!
//! Everything the fabric and the fabric manager exchange is defined here:
//!
//! - [`turn`] — the turn pool / turn pointer / direction source-routing
//!   machinery (paper Fig. 1 fields `Turn Pool`, `Turn Pointer`, `D`);
//! - [`header`] — the two-DWORD route header with CRC-5 protection;
//! - [`pi4`] — the PI-4 device configuration protocol (read request, read
//!   completion with data, read completion with error, plus writes for the
//!   path-distribution extension);
//! - [`pi5`] — the PI-5 event-reporting protocol used to detect topology
//!   changes;
//! - [`config`] — device configuration space: the baseline capability's
//!   general-information block and per-port blocks;
//! - [`packet`] — complete packets (header + payload + ECRC) with
//!   byte-accurate sizes, which the fabric model uses for serialization
//!   timing;
//! - [`vc`] — virtual channels (BVC/OVC/MVC) and TC→VC mapping.
//!
//! All formats round-trip through `encode`/`decode` and are covered by
//! unit and property tests; the fabric simulation itself passes typed
//! [`packet::Packet`] values around and uses `wire_size()` for timing, so
//! serialization fidelity is testable without paying encode costs on the
//! hot path.

#![deny(missing_docs)]

pub mod config;
pub mod header;
pub mod packet;
pub mod pi4;
pub mod pi5;
pub mod pi_fm;
pub mod turn;
pub mod vc;

pub use config::{
    ConfigSpace, DeviceInfo, DeviceType, PortInfo, PortState, CAP_BASELINE, CAP_MCAST_TABLE,
    CAP_OWNERSHIP, CAP_ROUTE_TABLE, GENERAL_INFO_WORDS, MCAST_GROUPS, PORTS_PER_READ,
    PORT_BLOCK_WORDS,
};
pub use header::{HeaderError, ProtocolInterface, RouteHeader};
pub use packet::{Packet, PacketError, Payload, ECRC_BYTES};
pub use pi4::{CapabilityAddr, Pi4, Pi4Error, Pi4Status, MAX_COMPLETION_DWORDS};
pub use pi5::{Pi5, Pi5Error, PortEvent};
pub use pi_fm::{FmMessage, FmMessageError};
pub use turn::{
    apply_backward, apply_forward, turn_for, turn_width, Direction, TurnCursor, TurnError,
    TurnPool, MAX_POOL_BITS, POOL_WORDS, SPEC_POOL_BITS,
};
pub use vc::{TcMapError, TcVcMap, VcConfig, VcId, VcKind, MANAGEMENT_TC};
