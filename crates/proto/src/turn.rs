//! The ASI turn pool: source-routing state carried in every unicast packet.
//!
//! ASI switches do not hold unicast forwarding tables. The source endpoint
//! writes a sequence of *turns* into the packet header; each switch on the
//! path consumes one turn to pick its output port:
//!
//! - forward (`D = 0`): the turn pointer starts at the total number of turn
//!   bits and moves *down*; a switch with turn width `w` reads the `w` bits
//!   below the pointer and exits at `(ingress + 1 + turn) mod ports`;
//! - backward (`D = 1`): the pointer starts at 0 and moves *up*; the switch
//!   exits at `(ingress - 1 - turn) mod ports`.
//!
//! This arithmetic makes any forward path exactly reversible: a device that
//! answers a request copies the turn pool, flips `D`, and resets the
//! pointer — the completion retraces the request's path (as the PI-4
//! protocol requires).
//!
//! The specification allots **31 bits** to the pool (and our strict mode
//! enforces that), but several of the paper's topologies need longer paths
//! (an 8×8 mesh corner-to-corner crosses 14 switches × 4 bits = 56 bits),
//! so the pool also supports an extended capacity. The extended ceiling is
//! sized for the scale subsystem's largest fabric: a 64×64 mesh route from
//! the corner-attached FM crosses up to 127 switches × 4 bits = 508 bits.
//! See DESIGN.md §2.

use core::fmt;

/// Maximum pool size in strict (specification) mode.
pub const SPEC_POOL_BITS: u16 = 31;

/// Maximum pool size in extended mode ([`POOL_WORDS`] × 64-bit words).
pub const MAX_POOL_BITS: u16 = 512;

/// Number of 64-bit words backing a [`TurnPool`] (and serialized by the
/// snapshot codecs).
pub const POOL_WORDS: usize = (MAX_POOL_BITS / 64) as usize;

/// Errors raised while building or consuming a turn pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TurnError {
    /// The encoded path needs more turn bits than the pool's capacity.
    PoolOverflow {
        /// Bits the path requires.
        needed: u16,
        /// Bits available.
        capacity: u16,
    },
    /// A read walked past the end of the recorded turns (path longer than
    /// the pool contents, i.e. a routing loop or corrupted pointer).
    PointerOutOfRange,
    /// A turn value does not fit the stated width.
    TurnTooWide {
        /// The turn value.
        turn: u8,
        /// Bit width it must fit in.
        width: u8,
    },
    /// Zero-width turns are meaningless (switches have ≥ 2 ports).
    ZeroWidth,
}

impl fmt::Display for TurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurnError::PoolOverflow { needed, capacity } => write!(
                f,
                "turn pool overflow: path needs {needed} bits, pool holds {capacity}"
            ),
            TurnError::PointerOutOfRange => write!(f, "turn pointer out of range"),
            TurnError::TurnTooWide { turn, width } => {
                write!(f, "turn value {turn} does not fit in {width} bits")
            }
            TurnError::ZeroWidth => write!(f, "zero-width turn"),
        }
    }
}

impl std::error::Error for TurnError {}

/// A packed sequence of turns plus its total bit length.
///
/// Bit layout: the turn for the *first* switch on the path occupies the most
/// significant recorded bits; the last switch's turn sits at bit offset 0.
/// This matches the pointer conventions above.
///
/// ```
/// use asi_proto::{turn_for, turn_width, TurnPool, TurnCursor, Direction};
///
/// // Route through two 16-port switches: enter 3 leave 7, enter 0 leave 5.
/// let mut pool = TurnPool::new_spec();
/// pool.push_turn(turn_for(3, 7, 16), turn_width(16)).unwrap();
/// pool.push_turn(turn_for(0, 5, 16), turn_width(16)).unwrap();
///
/// // A switch consumes its turn from the cursor:
/// let cursor = TurnCursor::start(&pool, Direction::Forward);
/// let (turn, cursor) = cursor.take_turn(&pool, 4).unwrap();
/// assert_eq!(asi_proto::apply_forward(3, turn, 16), 7);
/// let (turn, cursor) = cursor.take_turn(&pool, 4).unwrap();
/// assert_eq!(asi_proto::apply_forward(0, turn, 16), 5);
/// assert!(cursor.exhausted(&pool));
/// ```
#[derive(Clone)]
pub struct TurnPool {
    words: [u64; POOL_WORDS],
    len: u16,
    capacity: u16,
}

// Equality is over the recorded turns only: two pools with the same bits
// route identically regardless of their remaining capacity.
impl PartialEq for TurnPool {
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words && self.len == other.len
    }
}
impl Eq for TurnPool {}

impl std::hash::Hash for TurnPool {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.words.hash(state);
        self.len.hash(state);
    }
}

impl TurnPool {
    /// Empty pool with the specification's 31-bit capacity.
    pub fn new_spec() -> Self {
        Self::with_capacity(SPEC_POOL_BITS)
    }

    /// Empty pool with a caller-chosen capacity (≤ [`MAX_POOL_BITS`]).
    pub fn with_capacity(capacity: u16) -> Self {
        assert!(
            capacity <= MAX_POOL_BITS,
            "turn pool capacity {capacity} exceeds {MAX_POOL_BITS}"
        );
        TurnPool {
            words: [0; POOL_WORDS],
            len: 0,
            capacity,
        }
    }

    /// Total recorded turn bits (initial forward pointer value).
    pub fn len_bits(&self) -> u16 {
        self.len
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// True if no turns are recorded (the destination is directly attached).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the pool fits the 31-bit specification field.
    pub fn is_spec_compliant(&self) -> bool {
        self.len <= SPEC_POOL_BITS
    }

    /// Raw little-endian words backing the pool (for serialization).
    pub fn words(&self) -> &[u64; POOL_WORDS] {
        &self.words
    }

    /// Rebuilds a pool from raw words and a bit length (deserialization).
    pub fn from_words(
        words: [u64; POOL_WORDS],
        len: u16,
        capacity: u16,
    ) -> Result<Self, TurnError> {
        if len > capacity || capacity > MAX_POOL_BITS {
            return Err(TurnError::PoolOverflow {
                needed: len,
                capacity,
            });
        }
        let mut pool = TurnPool {
            words,
            len,
            capacity,
        };
        pool.mask_tail();
        Ok(pool)
    }

    /// Appends the next switch's turn. Turns are appended in path order
    /// (first switch first); earlier turns shift toward the MSB side.
    pub fn push_turn(&mut self, turn: u8, width: u8) -> Result<(), TurnError> {
        if width == 0 {
            return Err(TurnError::ZeroWidth);
        }
        if u16::from(turn) >= (1u16 << width.min(15)) {
            return Err(TurnError::TurnTooWide { turn, width });
        }
        let new_len = self.len + u16::from(width);
        if new_len > self.capacity {
            return Err(TurnError::PoolOverflow {
                needed: new_len,
                capacity: self.capacity,
            });
        }
        // Shift everything up by `width` bits, then drop the new turn into
        // the freed least-significant bits.
        self.shift_left(width);
        self.words[0] |= u64::from(turn);
        self.len = new_len;
        Ok(())
    }

    /// Reads `width` bits at absolute bit offset `offset` (0 = LSB).
    fn read_bits(&self, offset: u16, width: u8) -> u8 {
        let mut v: u64 = 0;
        for b in (0..width).rev() {
            let bit = offset + u16::from(b);
            let w = (bit / 64) as usize;
            let i = bit % 64;
            v = (v << 1) | ((self.words[w] >> i) & 1);
        }
        v as u8
    }

    fn shift_left(&mut self, by: u8) {
        let by = u32::from(by);
        let mut carry: u64 = 0;
        for w in self.words.iter_mut() {
            let new_carry = if by == 0 { 0 } else { *w >> (64 - by) };
            *w = (*w << by) | carry;
            carry = new_carry;
        }
    }

    fn mask_tail(&mut self) {
        let len = usize::from(self.len);
        for (w, word) in self.words.iter_mut().enumerate() {
            let start = w * 64;
            if len <= start {
                *word = 0;
            } else if len < start + 64 {
                *word &= (1u64 << (len - start)) - 1;
            }
        }
    }
}

impl fmt::Debug for TurnPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TurnPool[{} bits: ", self.len)?;
        for bit in (0..self.len).rev() {
            let v = self.read_bits(bit, 1);
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Routing direction flag (the `D` bit in the routing header).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Direction {
    /// Source → destination: the pointer descends from `len_bits`.
    #[default]
    Forward,
    /// Destination → source (completions): the pointer ascends from 0.
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// A cursor over a [`TurnPool`]: the turn pointer plus direction, i.e. the
/// mutable routing state a switch updates as the packet traverses it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TurnCursor {
    /// Current turn-pointer value, in bits.
    pub pointer: u16,
    /// Traversal direction.
    pub direction: Direction,
}

impl TurnCursor {
    /// Initial cursor for a freshly injected packet over `pool`.
    pub fn start(pool: &TurnPool, direction: Direction) -> TurnCursor {
        match direction {
            Direction::Forward => TurnCursor {
                pointer: pool.len_bits(),
                direction,
            },
            Direction::Backward => TurnCursor {
                pointer: 0,
                direction,
            },
        }
    }

    /// Consumes one turn of `width` bits, returning the turn value and the
    /// advanced cursor.
    pub fn take_turn(self, pool: &TurnPool, width: u8) -> Result<(u8, TurnCursor), TurnError> {
        if width == 0 {
            return Err(TurnError::ZeroWidth);
        }
        match self.direction {
            Direction::Forward => {
                if self.pointer < u16::from(width) {
                    return Err(TurnError::PointerOutOfRange);
                }
                let ptr = self.pointer - u16::from(width);
                Ok((
                    pool.read_bits(ptr, width),
                    TurnCursor {
                        pointer: ptr,
                        direction: self.direction,
                    },
                ))
            }
            Direction::Backward => {
                let end = self.pointer + u16::from(width);
                if end > pool.len_bits() {
                    return Err(TurnError::PointerOutOfRange);
                }
                let turn = pool.read_bits(self.pointer, width);
                Ok((
                    turn,
                    TurnCursor {
                        pointer: end,
                        direction: self.direction,
                    },
                ))
            }
        }
    }

    /// True once every recorded turn has been consumed.
    pub fn exhausted(self, pool: &TurnPool) -> bool {
        match self.direction {
            Direction::Forward => self.pointer == 0,
            Direction::Backward => self.pointer == pool.len_bits(),
        }
    }
}

/// Computes the turn value a switch must read so that a packet entering at
/// `ingress` leaves at `egress` (forward direction), given `ports` ports.
pub fn turn_for(ingress: u8, egress: u8, ports: u8) -> u8 {
    debug_assert!(ingress < ports && egress < ports && ingress != egress);
    (egress + ports - ingress - 1) % ports
}

/// Applies a turn in the forward direction: the egress port.
pub fn apply_forward(ingress: u8, turn: u8, ports: u8) -> u8 {
    ((u16::from(ingress) + 1 + u16::from(turn)) % u16::from(ports)) as u8
}

/// Applies a turn in the backward direction: the egress port.
pub fn apply_backward(ingress: u8, turn: u8, ports: u8) -> u8 {
    ((u16::from(ingress) + u16::from(ports) * 2 - 1 - u16::from(turn)) % u16::from(ports)) as u8
}

/// Bit width of the turn field for a switch with `ports` ports
/// (`ceil(log2(ports))`, minimum 1).
pub fn turn_width(ports: u8) -> u8 {
    debug_assert!(ports >= 2, "a switch has at least 2 ports");
    let w = 8 - (ports - 1).leading_zeros() as u8;
    w.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turn_width_matches_port_counts() {
        assert_eq!(turn_width(2), 1);
        assert_eq!(turn_width(3), 2);
        assert_eq!(turn_width(4), 2);
        assert_eq!(turn_width(5), 3);
        assert_eq!(turn_width(8), 3);
        assert_eq!(turn_width(9), 4);
        assert_eq!(turn_width(16), 4);
        assert_eq!(turn_width(17), 5);
    }

    #[test]
    fn forward_turn_arithmetic() {
        // 16-port switch, enter at 3, leave at 7: turn = 3.
        assert_eq!(turn_for(3, 7, 16), 3);
        assert_eq!(apply_forward(3, 3, 16), 7);
        // Wrap-around.
        assert_eq!(turn_for(15, 0, 16), 0);
        assert_eq!(apply_forward(15, 0, 16), 0);
    }

    #[test]
    fn backward_inverts_forward() {
        for ports in [2u8, 3, 4, 8, 16] {
            for ingress in 0..ports {
                for egress in 0..ports {
                    if ingress == egress {
                        continue;
                    }
                    let t = turn_for(ingress, egress, ports);
                    assert_eq!(apply_forward(ingress, t, ports), egress);
                    // Response enters where the request left.
                    assert_eq!(apply_backward(egress, t, ports), ingress);
                }
            }
        }
    }

    #[test]
    fn push_and_walk_forward() {
        let mut pool = TurnPool::new_spec();
        // Path through 3 switches: 16-port (w=4), 16-port, 4-port (w=2).
        pool.push_turn(5, 4).unwrap();
        pool.push_turn(11, 4).unwrap();
        pool.push_turn(2, 2).unwrap();
        assert_eq!(pool.len_bits(), 10);

        let c = TurnCursor::start(&pool, Direction::Forward);
        let (t1, c) = c.take_turn(&pool, 4).unwrap();
        assert_eq!(t1, 5);
        let (t2, c) = c.take_turn(&pool, 4).unwrap();
        assert_eq!(t2, 11);
        let (t3, c) = c.take_turn(&pool, 2).unwrap();
        assert_eq!(t3, 2);
        assert!(c.exhausted(&pool));
    }

    #[test]
    fn walk_backward_reverses_order() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(5, 4).unwrap();
        pool.push_turn(11, 4).unwrap();
        pool.push_turn(2, 2).unwrap();

        let c = TurnCursor::start(&pool, Direction::Backward);
        // Backward visits the last switch first.
        let (t, c) = c.take_turn(&pool, 2).unwrap();
        assert_eq!(t, 2);
        let (t, c) = c.take_turn(&pool, 4).unwrap();
        assert_eq!(t, 11);
        let (t, c) = c.take_turn(&pool, 4).unwrap();
        assert_eq!(t, 5);
        assert!(c.exhausted(&pool));
    }

    #[test]
    fn spec_pool_overflows_at_31_bits() {
        let mut pool = TurnPool::new_spec();
        for _ in 0..7 {
            pool.push_turn(0xF, 4).unwrap(); // 28 bits
        }
        assert_eq!(
            pool.push_turn(1, 4),
            Err(TurnError::PoolOverflow {
                needed: 32,
                capacity: 31
            })
        );
        // But a 3-bit turn still fits.
        pool.push_turn(7, 3).unwrap();
        assert_eq!(pool.len_bits(), 31);
    }

    #[test]
    fn extended_pool_takes_long_paths() {
        let mut pool = TurnPool::with_capacity(MAX_POOL_BITS);
        for i in 0..60 {
            pool.push_turn((i % 16) as u8, 4).unwrap();
        }
        assert_eq!(pool.len_bits(), 240);
        assert!(!pool.is_spec_compliant());
        let mut c = TurnCursor::start(&pool, Direction::Forward);
        for i in 0..60 {
            let (t, next) = c.take_turn(&pool, 4).unwrap();
            assert_eq!(t, (i % 16) as u8);
            c = next;
        }
        assert!(c.exhausted(&pool));
    }

    #[test]
    fn empty_pool_cursor_is_exhausted() {
        let pool = TurnPool::new_spec();
        assert!(pool.is_empty());
        let c = TurnCursor::start(&pool, Direction::Forward);
        assert!(c.exhausted(&pool));
        assert_eq!(c.take_turn(&pool, 4), Err(TurnError::PointerOutOfRange));
    }

    #[test]
    fn reading_past_pool_is_error_backward_too() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(1, 2).unwrap();
        let c = TurnCursor::start(&pool, Direction::Backward);
        let (_, c) = c.take_turn(&pool, 2).unwrap();
        assert_eq!(c.take_turn(&pool, 2), Err(TurnError::PointerOutOfRange));
    }

    #[test]
    fn turn_too_wide_rejected() {
        let mut pool = TurnPool::new_spec();
        assert_eq!(
            pool.push_turn(4, 2),
            Err(TurnError::TurnTooWide { turn: 4, width: 2 })
        );
        assert_eq!(pool.push_turn(1, 0), Err(TurnError::ZeroWidth));
    }

    #[test]
    fn words_round_trip() {
        let mut pool = TurnPool::with_capacity(64);
        pool.push_turn(9, 4).unwrap();
        pool.push_turn(3, 2).unwrap();
        let rebuilt =
            TurnPool::from_words(*pool.words(), pool.len_bits(), pool.capacity()).unwrap();
        assert_eq!(rebuilt, pool);
    }

    #[test]
    fn from_words_rejects_oversized_len() {
        assert!(TurnPool::from_words([0; POOL_WORDS], 32, 31).is_err());
        assert!(TurnPool::from_words([0; POOL_WORDS], 600, 600).is_err());
    }

    #[test]
    fn from_words_masks_garbage_tail() {
        // Garbage above `len` must not affect equality or reads.
        let rebuilt = TurnPool::from_words([u64::MAX; POOL_WORDS], 4, 31).unwrap();
        let mut clean = TurnPool::new_spec();
        clean.push_turn(0xF, 4).unwrap();
        assert_eq!(rebuilt, clean);
    }

    #[test]
    fn direction_reversal() {
        assert_eq!(Direction::Forward.reversed(), Direction::Backward);
        assert_eq!(Direction::Backward.reversed(), Direction::Forward);
    }

    #[test]
    fn debug_rendering_shows_bits() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(0b101, 3).unwrap();
        assert_eq!(format!("{pool:?}"), "TurnPool[3 bits: 101]");
    }
}
