//! PI-4: the ASI device configuration and control protocol.
//!
//! The fabric manager reads a device's configuration space with *PI-4 read
//! request* packets; the device answers with a *read completion with data*
//! carrying **up to eight 32-bit blocks**, or a *read completion with
//! error*. The completion retraces the request's path and traffic class
//! (handled by [`crate::header::RouteHeader::reply`]). Writes (used by the
//! path-distribution extension) mirror the same shapes.

/// Largest number of 32-bit blocks one completion may carry (per the spec).
pub const MAX_COMPLETION_DWORDS: usize = 8;

/// Identifies a region of a device's configuration space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CapabilityAddr {
    /// Capability identifier (0 = baseline capability).
    pub capability: u16,
    /// 32-bit-block offset within the capability.
    pub offset: u16,
}

impl CapabilityAddr {
    /// Address within the baseline capability.
    pub fn baseline(offset: u16) -> CapabilityAddr {
        CapabilityAddr {
            capability: 0,
            offset,
        }
    }
}

/// Completion status for failed accesses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Pi4Status {
    /// The addressed capability or offset does not exist.
    UnsupportedRequest,
    /// The device is not ready to answer (e.g. mid-reset).
    ConfigurationRetry,
    /// The device aborted the access.
    Abort,
}

/// A PI-4 protocol data unit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pi4 {
    /// Read `dwords` 32-bit blocks starting at `addr`.
    ReadRequest {
        /// Request identifier, echoed by the completion so the FM can match
        /// responses to its pending-packet table.
        req_id: u32,
        /// Target region.
        addr: CapabilityAddr,
        /// Number of blocks to read (1..=8).
        dwords: u8,
    },
    /// Successful read completion.
    ReadCompletion {
        /// Echo of the request identifier.
        req_id: u32,
        /// The data blocks (1..=8).
        data: Vec<u32>,
    },
    /// Failed read completion.
    ReadError {
        /// Echo of the request identifier.
        req_id: u32,
        /// Failure reason.
        status: Pi4Status,
    },
    /// Write `data` starting at `addr` (path-distribution extension).
    WriteRequest {
        /// Request identifier.
        req_id: u32,
        /// Target region.
        addr: CapabilityAddr,
        /// Blocks to write (1..=8).
        data: Vec<u32>,
    },
    /// Write acknowledgement.
    WriteCompletion {
        /// Echo of the request identifier.
        req_id: u32,
    },
}

/// PI-4 wire-format decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pi4Error {
    /// Not enough bytes for the declared shape.
    Truncated,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Block count outside 1..=8.
    BadLength(u8),
}

impl core::fmt::Display for Pi4Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Pi4Error::Truncated => write!(f, "truncated PI-4 packet"),
            Pi4Error::BadOpcode(op) => write!(f, "unknown PI-4 opcode {op:#x}"),
            Pi4Error::BadLength(n) => write!(f, "PI-4 block count {n} outside 1..=8"),
        }
    }
}

impl std::error::Error for Pi4Error {}

const OP_READ_REQ: u8 = 0x01;
const OP_READ_DATA: u8 = 0x02;
const OP_READ_ERR: u8 = 0x03;
const OP_WRITE_REQ: u8 = 0x04;
const OP_WRITE_ACK: u8 = 0x05;

impl Pi4 {
    /// The request identifier carried by any PI-4 PDU.
    pub fn req_id(&self) -> u32 {
        match *self {
            Pi4::ReadRequest { req_id, .. }
            | Pi4::ReadCompletion { req_id, .. }
            | Pi4::ReadError { req_id, .. }
            | Pi4::WriteRequest { req_id, .. }
            | Pi4::WriteCompletion { req_id } => req_id,
        }
    }

    /// True for the two request shapes (they expect a completion).
    pub fn is_request(&self) -> bool {
        matches!(self, Pi4::ReadRequest { .. } | Pi4::WriteRequest { .. })
    }

    /// On-wire payload size in bytes (excluding route header and ECRC).
    pub fn wire_size(&self) -> usize {
        match self {
            // opcode + req_id + capability + offset + dwords
            Pi4::ReadRequest { .. } => 1 + 4 + 2 + 2 + 1,
            Pi4::ReadCompletion { data, .. } => 1 + 4 + 1 + 4 * data.len(),
            Pi4::ReadError { .. } => 1 + 4 + 1,
            Pi4::WriteRequest { data, .. } => 1 + 4 + 2 + 2 + 1 + 4 * data.len(),
            Pi4::WriteCompletion { .. } => 1 + 4,
        }
    }

    /// Serializes the PDU into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Pi4::ReadRequest {
                req_id,
                addr,
                dwords,
            } => {
                out.push(OP_READ_REQ);
                out.extend_from_slice(&req_id.to_be_bytes());
                out.extend_from_slice(&addr.capability.to_be_bytes());
                out.extend_from_slice(&addr.offset.to_be_bytes());
                out.push(*dwords);
            }
            Pi4::ReadCompletion { req_id, data } => {
                debug_assert!((1..=MAX_COMPLETION_DWORDS).contains(&data.len()));
                out.push(OP_READ_DATA);
                out.extend_from_slice(&req_id.to_be_bytes());
                out.push(data.len() as u8);
                for d in data {
                    out.extend_from_slice(&d.to_be_bytes());
                }
            }
            Pi4::ReadError { req_id, status } => {
                out.push(OP_READ_ERR);
                out.extend_from_slice(&req_id.to_be_bytes());
                out.push(match status {
                    Pi4Status::UnsupportedRequest => 0,
                    Pi4Status::ConfigurationRetry => 1,
                    Pi4Status::Abort => 2,
                });
            }
            Pi4::WriteRequest { req_id, addr, data } => {
                debug_assert!((1..=MAX_COMPLETION_DWORDS).contains(&data.len()));
                out.push(OP_WRITE_REQ);
                out.extend_from_slice(&req_id.to_be_bytes());
                out.extend_from_slice(&addr.capability.to_be_bytes());
                out.extend_from_slice(&addr.offset.to_be_bytes());
                out.push(data.len() as u8);
                for d in data {
                    out.extend_from_slice(&d.to_be_bytes());
                }
            }
            Pi4::WriteCompletion { req_id } => {
                out.push(OP_WRITE_ACK);
                out.extend_from_slice(&req_id.to_be_bytes());
            }
        }
    }

    /// Parses a PDU, returning it and the bytes consumed.
    pub fn decode(input: &[u8]) -> Result<(Pi4, usize), Pi4Error> {
        let op = *input.first().ok_or(Pi4Error::Truncated)?;
        let take = |from: usize, n: usize| input.get(from..from + n).ok_or(Pi4Error::Truncated);
        let be32 = |from: usize| -> Result<u32, Pi4Error> {
            Ok(u32::from_be_bytes(take(from, 4)?.try_into().unwrap()))
        };
        let be16 = |from: usize| -> Result<u16, Pi4Error> {
            Ok(u16::from_be_bytes(take(from, 2)?.try_into().unwrap()))
        };
        match op {
            OP_READ_REQ => {
                let req_id = be32(1)?;
                let capability = be16(5)?;
                let offset = be16(7)?;
                let dwords = *take(9, 1)?.first().unwrap();
                if !(1..=MAX_COMPLETION_DWORDS as u8).contains(&dwords) {
                    return Err(Pi4Error::BadLength(dwords));
                }
                Ok((
                    Pi4::ReadRequest {
                        req_id,
                        addr: CapabilityAddr { capability, offset },
                        dwords,
                    },
                    10,
                ))
            }
            OP_READ_DATA => {
                let req_id = be32(1)?;
                let n = *take(5, 1)?.first().unwrap();
                if !(1..=MAX_COMPLETION_DWORDS as u8).contains(&n) {
                    return Err(Pi4Error::BadLength(n));
                }
                let mut data = Vec::with_capacity(n as usize);
                for i in 0..n as usize {
                    data.push(be32(6 + 4 * i)?);
                }
                Ok((Pi4::ReadCompletion { req_id, data }, 6 + 4 * n as usize))
            }
            OP_READ_ERR => {
                let req_id = be32(1)?;
                let status = match *take(5, 1)?.first().unwrap() {
                    0 => Pi4Status::UnsupportedRequest,
                    1 => Pi4Status::ConfigurationRetry,
                    _ => Pi4Status::Abort,
                };
                Ok((Pi4::ReadError { req_id, status }, 6))
            }
            OP_WRITE_REQ => {
                let req_id = be32(1)?;
                let capability = be16(5)?;
                let offset = be16(7)?;
                let n = *take(9, 1)?.first().unwrap();
                if !(1..=MAX_COMPLETION_DWORDS as u8).contains(&n) {
                    return Err(Pi4Error::BadLength(n));
                }
                let mut data = Vec::with_capacity(n as usize);
                for i in 0..n as usize {
                    data.push(be32(10 + 4 * i)?);
                }
                Ok((
                    Pi4::WriteRequest {
                        req_id,
                        addr: CapabilityAddr { capability, offset },
                        data,
                    },
                    10 + 4 * n as usize,
                ))
            }
            OP_WRITE_ACK => {
                let req_id = be32(1)?;
                Ok((Pi4::WriteCompletion { req_id }, 5))
            }
            other => Err(Pi4Error::BadOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(pdu: Pi4) {
        let mut buf = Vec::new();
        pdu.encode(&mut buf);
        assert_eq!(buf.len(), pdu.wire_size(), "wire_size mismatch for {pdu:?}");
        let (decoded, consumed) = Pi4::decode(&buf).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(decoded, pdu);
    }

    #[test]
    fn read_request_round_trips() {
        round_trip(Pi4::ReadRequest {
            req_id: 0xDEAD_BEEF,
            addr: CapabilityAddr {
                capability: 0,
                offset: 6,
            },
            dwords: 8,
        });
    }

    #[test]
    fn read_completion_round_trips() {
        for n in 1..=MAX_COMPLETION_DWORDS {
            round_trip(Pi4::ReadCompletion {
                req_id: n as u32,
                data: (0..n as u32).map(|i| i * 0x0101_0101).collect(),
            });
        }
    }

    #[test]
    fn read_error_round_trips() {
        for status in [
            Pi4Status::UnsupportedRequest,
            Pi4Status::ConfigurationRetry,
            Pi4Status::Abort,
        ] {
            round_trip(Pi4::ReadError { req_id: 7, status });
        }
    }

    #[test]
    fn write_round_trips() {
        round_trip(Pi4::WriteRequest {
            req_id: 9,
            addr: CapabilityAddr::baseline(100),
            data: vec![1, 2, 3],
        });
        round_trip(Pi4::WriteCompletion { req_id: 9 });
    }

    #[test]
    fn rejects_zero_and_oversized_lengths() {
        let mut buf = Vec::new();
        Pi4::ReadRequest {
            req_id: 1,
            addr: CapabilityAddr::baseline(0),
            dwords: 1,
        }
        .encode(&mut buf);
        buf[9] = 0;
        assert_eq!(Pi4::decode(&buf), Err(Pi4Error::BadLength(0)));
        buf[9] = 9;
        assert_eq!(Pi4::decode(&buf), Err(Pi4Error::BadLength(9)));
    }

    #[test]
    fn rejects_unknown_opcode() {
        assert_eq!(
            Pi4::decode(&[0xFF, 0, 0, 0, 0]),
            Err(Pi4Error::BadOpcode(0xFF))
        );
    }

    #[test]
    fn rejects_truncation_at_every_cut() {
        let pdu = Pi4::ReadCompletion {
            req_id: 3,
            data: vec![10, 20, 30],
        };
        let mut buf = Vec::new();
        pdu.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(Pi4::decode(&buf[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn req_id_accessor_covers_all_shapes() {
        let shapes = [
            Pi4::ReadRequest {
                req_id: 1,
                addr: CapabilityAddr::baseline(0),
                dwords: 1,
            },
            Pi4::ReadCompletion {
                req_id: 2,
                data: vec![0],
            },
            Pi4::ReadError {
                req_id: 3,
                status: Pi4Status::Abort,
            },
            Pi4::WriteRequest {
                req_id: 4,
                addr: CapabilityAddr::baseline(0),
                data: vec![0],
            },
            Pi4::WriteCompletion { req_id: 5 },
        ];
        let ids: Vec<u32> = shapes.iter().map(Pi4::req_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert!(shapes[0].is_request());
        assert!(!shapes[1].is_request());
        assert!(!shapes[2].is_request());
        assert!(shapes[3].is_request());
        assert!(!shapes[4].is_request());
    }

    #[test]
    fn completion_is_larger_with_more_data() {
        let small = Pi4::ReadCompletion {
            req_id: 1,
            data: vec![0],
        };
        let big = Pi4::ReadCompletion {
            req_id: 1,
            data: vec![0; 8],
        };
        assert_eq!(big.wire_size() - small.wire_size(), 28);
    }
}
