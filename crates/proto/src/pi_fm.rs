//! FM-to-FM exchange protocol (vendor PI) — the substrate for the
//! paper's *distributed discovery* future-work item (§5): several
//! collaborative fabric managers each explore a region of the fabric and
//! stream their partial topology databases to the primary, which merges
//! them.
//!
//! Wire shapes:
//!
//! - [`FmMessage::Hello`] — a collaborator announcing itself;
//! - [`FmMessage::Claim`] — an election claim: "I want to be primary
//!   with this priority";
//! - [`FmMessage::Elected`] — an election outcome announcement;
//! - [`FmMessage::Yield`] — a boundary-ownership yield notification;
//! - [`FmMessage::Device`] — one discovered device: general info plus
//!   the port attribute blocks the sender actually read (indexed, so a
//!   partially explored boundary device merges without inventing data);
//! - [`FmMessage::Link`] — one discovered link;
//! - [`FmMessage::Complete`] — end of a collaborator's report, with the
//!   counts the primary uses to detect loss.

use crate::config::{DeviceInfo, PortInfo, GENERAL_INFO_WORDS};

/// A message between fabric managers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FmMessage {
    /// "I am a manager": sender DSN and election priority.
    Hello {
        /// Sender's DSN.
        sender: u64,
        /// Sender's election priority.
        priority: u8,
    },
    /// An election claim: the sender wants to be (or remain) primary.
    Claim {
        /// Claiming manager's DSN (the election tie-breaker).
        dsn: u64,
        /// Claimed election priority (higher wins).
        priority: u8,
    },
    /// The sender resolved the election and announces the outcome.
    Elected {
        /// DSN of the elected primary.
        primary: u64,
        /// Managers whose claims took part in the election.
        fms: u32,
    },
    /// The sender ceded a boundary device's region to a rival manager
    /// whose ownership claim landed first.
    Yield {
        /// The contested device's DSN.
        dsn: u64,
        /// DSN of the manager that holds the ownership claim.
        to: u64,
    },
    /// One device from the sender's topology database.
    Device {
        /// General information block.
        info: DeviceInfo,
        /// Port attribute blocks the sender has actually read, as
        /// `(port index, block)` pairs in ascending port order. Ports
        /// the sender never explored (e.g. on a ceded boundary device)
        /// are simply absent, so the merge never fabricates port state.
        ports: Vec<(u16, PortInfo)>,
    },
    /// One link from the sender's topology database.
    Link {
        /// One end: `(dsn, port)`.
        a: (u64, u8),
        /// Other end: `(dsn, port)`.
        b: (u64, u8),
    },
    /// End of report.
    Complete {
        /// Sender's DSN.
        sender: u64,
        /// Devices the sender reported.
        devices: u32,
        /// Links the sender reported.
        links: u32,
    },
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmMessageError {
    /// Not enough bytes.
    Truncated,
    /// Unknown opcode.
    BadOpcode(u8),
    /// A carried structure failed to decode.
    BadPayload,
}

impl core::fmt::Display for FmMessageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FmMessageError::Truncated => write!(f, "truncated FM message"),
            FmMessageError::BadOpcode(op) => write!(f, "unknown FM message opcode {op:#x}"),
            FmMessageError::BadPayload => write!(f, "malformed FM message payload"),
        }
    }
}

impl std::error::Error for FmMessageError {}

const OP_HELLO: u8 = 0x10;
const OP_DEVICE: u8 = 0x11;
const OP_LINK: u8 = 0x12;
const OP_COMPLETE: u8 = 0x13;
const OP_CLAIM: u8 = 0x14;
const OP_ELECTED: u8 = 0x15;
const OP_YIELD: u8 = 0x16;

impl FmMessage {
    /// On-wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            FmMessage::Hello { .. } => 1 + 8 + 1,
            FmMessage::Claim { .. } => 1 + 8 + 1,
            FmMessage::Elected { .. } => 1 + 8 + 4,
            FmMessage::Yield { .. } => 1 + 8 + 8,
            FmMessage::Device { ports, .. } => {
                1 + 4 * GENERAL_INFO_WORDS as usize + 2 + 6 * ports.len()
            }
            FmMessage::Link { .. } => 1 + 9 + 9,
            FmMessage::Complete { .. } => 1 + 8 + 4 + 4,
        }
    }

    /// Serializes into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FmMessage::Hello { sender, priority } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&sender.to_be_bytes());
                out.push(*priority);
            }
            FmMessage::Claim { dsn, priority } => {
                out.push(OP_CLAIM);
                out.extend_from_slice(&dsn.to_be_bytes());
                out.push(*priority);
            }
            FmMessage::Elected { primary, fms } => {
                out.push(OP_ELECTED);
                out.extend_from_slice(&primary.to_be_bytes());
                out.extend_from_slice(&fms.to_be_bytes());
            }
            FmMessage::Yield { dsn, to } => {
                out.push(OP_YIELD);
                out.extend_from_slice(&dsn.to_be_bytes());
                out.extend_from_slice(&to.to_be_bytes());
            }
            FmMessage::Device { info, ports } => {
                out.push(OP_DEVICE);
                for w in info.to_words() {
                    out.extend_from_slice(&w.to_be_bytes());
                }
                out.extend_from_slice(&(ports.len() as u16).to_be_bytes());
                for (idx, p) in ports {
                    out.extend_from_slice(&idx.to_be_bytes());
                    out.extend_from_slice(&p.to_words()[0].to_be_bytes());
                }
            }
            FmMessage::Link { a, b } => {
                out.push(OP_LINK);
                out.extend_from_slice(&a.0.to_be_bytes());
                out.push(a.1);
                out.extend_from_slice(&b.0.to_be_bytes());
                out.push(b.1);
            }
            FmMessage::Complete {
                sender,
                devices,
                links,
            } => {
                out.push(OP_COMPLETE);
                out.extend_from_slice(&sender.to_be_bytes());
                out.extend_from_slice(&devices.to_be_bytes());
                out.extend_from_slice(&links.to_be_bytes());
            }
        }
    }

    /// Parses one message, returning it and the bytes consumed.
    pub fn decode(input: &[u8]) -> Result<(FmMessage, usize), FmMessageError> {
        let op = *input.first().ok_or(FmMessageError::Truncated)?;
        let take =
            |from: usize, n: usize| input.get(from..from + n).ok_or(FmMessageError::Truncated);
        let be64 = |from: usize| -> Result<u64, FmMessageError> {
            Ok(u64::from_be_bytes(take(from, 8)?.try_into().unwrap()))
        };
        let be32 = |from: usize| -> Result<u32, FmMessageError> {
            Ok(u32::from_be_bytes(take(from, 4)?.try_into().unwrap()))
        };
        match op {
            OP_HELLO => {
                let sender = be64(1)?;
                let priority = *take(9, 1)?.first().unwrap();
                Ok((FmMessage::Hello { sender, priority }, 10))
            }
            OP_CLAIM => {
                let dsn = be64(1)?;
                let priority = *take(9, 1)?.first().unwrap();
                Ok((FmMessage::Claim { dsn, priority }, 10))
            }
            OP_ELECTED => {
                let primary = be64(1)?;
                let fms = be32(9)?;
                Ok((FmMessage::Elected { primary, fms }, 13))
            }
            OP_YIELD => {
                let dsn = be64(1)?;
                let to = be64(9)?;
                Ok((FmMessage::Yield { dsn, to }, 17))
            }
            OP_DEVICE => {
                let mut words = [0u32; GENERAL_INFO_WORDS as usize];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = be32(1 + 4 * i)?;
                }
                let info = DeviceInfo::from_words(&words).ok_or(FmMessageError::BadPayload)?;
                let off = 1 + 4 * GENERAL_INFO_WORDS as usize;
                let nports = u16::from_be_bytes(take(off, 2)?.try_into().unwrap()) as usize;
                if nports > 512 {
                    return Err(FmMessageError::BadPayload);
                }
                let mut ports = Vec::with_capacity(nports);
                let mut last: Option<u16> = None;
                for i in 0..nports {
                    let idx = u16::from_be_bytes(take(off + 2 + 6 * i, 2)?.try_into().unwrap());
                    // Indices must ascend strictly: one block per port,
                    // in canonical order.
                    if last.is_some_and(|l| idx <= l) {
                        return Err(FmMessageError::BadPayload);
                    }
                    last = Some(idx);
                    let w = be32(off + 2 + 6 * i + 2)?;
                    // Port blocks carry 4 words on the wire in PI-4, but
                    // only word 0 holds data; FM exchange sends word 0.
                    let block = [w, 0, 0, 0];
                    ports.push((
                        idx,
                        PortInfo::from_words(&block).ok_or(FmMessageError::BadPayload)?,
                    ));
                }
                Ok((FmMessage::Device { info, ports }, off + 2 + 6 * nports))
            }
            OP_LINK => {
                let a = (be64(1)?, *take(9, 1)?.first().unwrap());
                let b = (be64(10)?, *take(18, 1)?.first().unwrap());
                Ok((FmMessage::Link { a, b }, 19))
            }
            OP_COMPLETE => {
                let sender = be64(1)?;
                let devices = be32(9)?;
                let links = be32(13)?;
                Ok((
                    FmMessage::Complete {
                        sender,
                        devices,
                        links,
                    },
                    17,
                ))
            }
            other => Err(FmMessageError::BadOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceType, PortState};

    fn round_trip(msg: FmMessage) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), msg.wire_size(), "wire size for {msg:?}");
        let (decoded, used) = FmMessage::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn hello_round_trips() {
        round_trip(FmMessage::Hello {
            sender: 0xDEAD_BEEF_0123,
            priority: 200,
        });
    }

    #[test]
    fn device_round_trips() {
        round_trip(FmMessage::Device {
            info: DeviceInfo {
                device_type: DeviceType::Switch,
                dsn: 42,
                port_count: 16,
                max_packet_size: 2048,
                fm_capable: false,
                fm_priority: 0,
            },
            ports: (0..16)
                .map(|i| {
                    (
                        u16::from(i),
                        PortInfo {
                            state: if i < 5 {
                                PortState::Active
                            } else {
                                PortState::Down
                            },
                            link_width: 1,
                            link_speed: 10,
                            peer_port: i,
                        },
                    )
                })
                .collect(),
        });
    }

    #[test]
    fn sparse_device_round_trips() {
        round_trip(FmMessage::Device {
            info: DeviceInfo {
                device_type: DeviceType::Switch,
                dsn: 9,
                port_count: 32,
                max_packet_size: 2048,
                fm_capable: false,
                fm_priority: 0,
            },
            ports: vec![
                (
                    3,
                    PortInfo {
                        state: PortState::Active,
                        link_width: 4,
                        link_speed: 1,
                        peer_port: 0,
                    },
                ),
                (
                    17,
                    PortInfo {
                        state: PortState::Active,
                        link_width: 1,
                        link_speed: 10,
                        peer_port: 5,
                    },
                ),
            ],
        });
    }

    #[test]
    fn election_messages_round_trip() {
        round_trip(FmMessage::Claim {
            dsn: 0xA000_0000_0007,
            priority: 3,
        });
        round_trip(FmMessage::Elected {
            primary: 0xA000_0000_0001,
            fms: 4,
        });
        round_trip(FmMessage::Yield {
            dsn: 0xA000_0000_0042,
            to: 0xA000_0000_0002,
        });
    }

    #[test]
    fn rejects_non_ascending_port_indices() {
        let msg = FmMessage::Device {
            info: DeviceInfo {
                device_type: DeviceType::Switch,
                dsn: 2,
                port_count: 8,
                max_packet_size: 512,
                fm_capable: false,
                fm_priority: 0,
            },
            ports: vec![(4, PortInfo::default()), (4, PortInfo::default())],
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(FmMessage::decode(&buf), Err(FmMessageError::BadPayload));
    }

    #[test]
    fn link_and_complete_round_trip() {
        round_trip(FmMessage::Link {
            a: (7, 3),
            b: (9, 12),
        });
        round_trip(FmMessage::Complete {
            sender: 5,
            devices: 100,
            links: 212,
        });
    }

    #[test]
    fn rejects_bad_opcode_and_truncation() {
        assert_eq!(
            FmMessage::decode(&[0xFF]),
            Err(FmMessageError::BadOpcode(0xFF))
        );
        let mut buf = Vec::new();
        FmMessage::Link {
            a: (1, 1),
            b: (2, 2),
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(FmMessage::decode(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn rejects_garbled_device_info() {
        let msg = FmMessage::Device {
            info: DeviceInfo {
                device_type: DeviceType::Endpoint,
                dsn: 1,
                port_count: 1,
                max_packet_size: 512,
                fm_capable: true,
                fm_priority: 1,
            },
            ports: vec![(0, PortInfo::default())],
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf[1] = 0; // clobber device type
        assert_eq!(FmMessage::decode(&buf), Err(FmMessageError::BadPayload));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_port() -> impl Strategy<Value = PortInfo> {
            (0u8..3, any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
                |(state, link_width, link_speed, peer_port)| PortInfo {
                    state: match state {
                        0 => PortState::Down,
                        1 => PortState::Training,
                        _ => PortState::Active,
                    },
                    link_width,
                    link_speed,
                    peer_port,
                },
            )
        }

        fn arb_message() -> impl Strategy<Value = FmMessage> {
            (
                0u8..7,
                any::<u64>(),
                any::<u64>(),
                proptest::collection::vec(arb_port(), 0..20),
            )
                .prop_map(|(tag, a, b, ports)| match tag {
                    0 => FmMessage::Hello {
                        sender: a,
                        priority: b as u8,
                    },
                    1 => FmMessage::Claim {
                        dsn: a,
                        priority: b as u8,
                    },
                    2 => FmMessage::Elected {
                        primary: a,
                        fms: b as u32,
                    },
                    3 => FmMessage::Yield { dsn: a, to: b },
                    4 => FmMessage::Link {
                        a: (a, (a >> 56) as u8),
                        b: (b, (b >> 56) as u8),
                    },
                    5 => FmMessage::Complete {
                        sender: a,
                        devices: b as u32,
                        links: (b >> 32) as u32,
                    },
                    _ => FmMessage::Device {
                        info: DeviceInfo {
                            device_type: if a % 2 == 0 {
                                DeviceType::Switch
                            } else {
                                DeviceType::Endpoint
                            },
                            dsn: a,
                            port_count: 500,
                            max_packet_size: 2048,
                            fm_capable: b % 2 == 0,
                            fm_priority: (b >> 8) as u8,
                        },
                        ports: ports
                            .into_iter()
                            .enumerate()
                            .map(|(i, p)| (i as u16 * 3, p))
                            .collect(),
                    },
                })
        }

        proptest! {
            #[test]
            fn every_message_round_trips(msg in arb_message()) {
                let mut buf = Vec::new();
                msg.encode(&mut buf);
                prop_assert_eq!(buf.len(), msg.wire_size());
                let (decoded, used) = FmMessage::decode(&buf).unwrap();
                prop_assert_eq!(used, buf.len());
                prop_assert_eq!(decoded, msg);
            }

            #[test]
            fn every_truncation_is_rejected(msg in arb_message()) {
                let mut buf = Vec::new();
                msg.encode(&mut buf);
                for cut in 0..buf.len() {
                    prop_assert!(FmMessage::decode(&buf[..cut]).is_err());
                }
            }
        }
    }
}
