//! FM-to-FM exchange protocol (vendor PI) — the substrate for the
//! paper's *distributed discovery* future-work item (§5): several
//! collaborative fabric managers each explore a region of the fabric and
//! stream their partial topology databases to the primary, which merges
//! them.
//!
//! Wire shapes:
//!
//! - [`FmMessage::Hello`] — a collaborator announcing itself (election
//!   claims ride here too);
//! - [`FmMessage::Device`] — one discovered device: general info plus its
//!   port attribute blocks;
//! - [`FmMessage::Link`] — one discovered link;
//! - [`FmMessage::Complete`] — end of a collaborator's report, with the
//!   counts the primary uses to detect loss.

use crate::config::{DeviceInfo, PortInfo, GENERAL_INFO_WORDS};

/// A message between fabric managers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FmMessage {
    /// "I am a manager": sender DSN and election priority.
    Hello {
        /// Sender's DSN.
        sender: u64,
        /// Sender's election priority.
        priority: u8,
    },
    /// One device from the sender's topology database.
    Device {
        /// General information block.
        info: DeviceInfo,
        /// Port attribute blocks, in port order.
        ports: Vec<PortInfo>,
    },
    /// One link from the sender's topology database.
    Link {
        /// One end: `(dsn, port)`.
        a: (u64, u8),
        /// Other end: `(dsn, port)`.
        b: (u64, u8),
    },
    /// End of report.
    Complete {
        /// Sender's DSN.
        sender: u64,
        /// Devices the sender reported.
        devices: u32,
        /// Links the sender reported.
        links: u32,
    },
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmMessageError {
    /// Not enough bytes.
    Truncated,
    /// Unknown opcode.
    BadOpcode(u8),
    /// A carried structure failed to decode.
    BadPayload,
}

impl core::fmt::Display for FmMessageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FmMessageError::Truncated => write!(f, "truncated FM message"),
            FmMessageError::BadOpcode(op) => write!(f, "unknown FM message opcode {op:#x}"),
            FmMessageError::BadPayload => write!(f, "malformed FM message payload"),
        }
    }
}

impl std::error::Error for FmMessageError {}

const OP_HELLO: u8 = 0x10;
const OP_DEVICE: u8 = 0x11;
const OP_LINK: u8 = 0x12;
const OP_COMPLETE: u8 = 0x13;

impl FmMessage {
    /// On-wire size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            FmMessage::Hello { .. } => 1 + 8 + 1,
            FmMessage::Device { ports, .. } => {
                1 + 4 * GENERAL_INFO_WORDS as usize + 2 + 4 * ports.len()
            }
            FmMessage::Link { .. } => 1 + 9 + 9,
            FmMessage::Complete { .. } => 1 + 8 + 4 + 4,
        }
    }

    /// Serializes into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FmMessage::Hello { sender, priority } => {
                out.push(OP_HELLO);
                out.extend_from_slice(&sender.to_be_bytes());
                out.push(*priority);
            }
            FmMessage::Device { info, ports } => {
                out.push(OP_DEVICE);
                for w in info.to_words() {
                    out.extend_from_slice(&w.to_be_bytes());
                }
                out.extend_from_slice(&(ports.len() as u16).to_be_bytes());
                for p in ports {
                    out.extend_from_slice(&p.to_words()[0].to_be_bytes());
                }
            }
            FmMessage::Link { a, b } => {
                out.push(OP_LINK);
                out.extend_from_slice(&a.0.to_be_bytes());
                out.push(a.1);
                out.extend_from_slice(&b.0.to_be_bytes());
                out.push(b.1);
            }
            FmMessage::Complete {
                sender,
                devices,
                links,
            } => {
                out.push(OP_COMPLETE);
                out.extend_from_slice(&sender.to_be_bytes());
                out.extend_from_slice(&devices.to_be_bytes());
                out.extend_from_slice(&links.to_be_bytes());
            }
        }
    }

    /// Parses one message, returning it and the bytes consumed.
    pub fn decode(input: &[u8]) -> Result<(FmMessage, usize), FmMessageError> {
        let op = *input.first().ok_or(FmMessageError::Truncated)?;
        let take =
            |from: usize, n: usize| input.get(from..from + n).ok_or(FmMessageError::Truncated);
        let be64 = |from: usize| -> Result<u64, FmMessageError> {
            Ok(u64::from_be_bytes(take(from, 8)?.try_into().unwrap()))
        };
        let be32 = |from: usize| -> Result<u32, FmMessageError> {
            Ok(u32::from_be_bytes(take(from, 4)?.try_into().unwrap()))
        };
        match op {
            OP_HELLO => {
                let sender = be64(1)?;
                let priority = *take(9, 1)?.first().unwrap();
                Ok((FmMessage::Hello { sender, priority }, 10))
            }
            OP_DEVICE => {
                let mut words = [0u32; GENERAL_INFO_WORDS as usize];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = be32(1 + 4 * i)?;
                }
                let info = DeviceInfo::from_words(&words).ok_or(FmMessageError::BadPayload)?;
                let off = 1 + 4 * GENERAL_INFO_WORDS as usize;
                let nports = u16::from_be_bytes(take(off, 2)?.try_into().unwrap()) as usize;
                if nports > 512 {
                    return Err(FmMessageError::BadPayload);
                }
                let mut ports = Vec::with_capacity(nports);
                for i in 0..nports {
                    let w = be32(off + 2 + 4 * i)?;
                    // Port blocks carry 4 words on the wire in PI-4, but
                    // only word 0 holds data; FM exchange sends word 0.
                    let block = [w, 0, 0, 0];
                    ports.push(PortInfo::from_words(&block).ok_or(FmMessageError::BadPayload)?);
                }
                Ok((FmMessage::Device { info, ports }, off + 2 + 4 * nports))
            }
            OP_LINK => {
                let a = (be64(1)?, *take(9, 1)?.first().unwrap());
                let b = (be64(10)?, *take(18, 1)?.first().unwrap());
                Ok((FmMessage::Link { a, b }, 19))
            }
            OP_COMPLETE => {
                let sender = be64(1)?;
                let devices = be32(9)?;
                let links = be32(13)?;
                Ok((
                    FmMessage::Complete {
                        sender,
                        devices,
                        links,
                    },
                    17,
                ))
            }
            other => Err(FmMessageError::BadOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceType, PortState};

    fn round_trip(msg: FmMessage) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        assert_eq!(buf.len(), msg.wire_size(), "wire size for {msg:?}");
        let (decoded, used) = FmMessage::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn hello_round_trips() {
        round_trip(FmMessage::Hello {
            sender: 0xDEAD_BEEF_0123,
            priority: 200,
        });
    }

    #[test]
    fn device_round_trips() {
        round_trip(FmMessage::Device {
            info: DeviceInfo {
                device_type: DeviceType::Switch,
                dsn: 42,
                port_count: 16,
                max_packet_size: 2048,
                fm_capable: false,
                fm_priority: 0,
            },
            ports: (0..16)
                .map(|i| PortInfo {
                    state: if i < 5 {
                        PortState::Active
                    } else {
                        PortState::Down
                    },
                    link_width: 1,
                    link_speed: 10,
                    peer_port: i,
                })
                .collect(),
        });
    }

    #[test]
    fn link_and_complete_round_trip() {
        round_trip(FmMessage::Link {
            a: (7, 3),
            b: (9, 12),
        });
        round_trip(FmMessage::Complete {
            sender: 5,
            devices: 100,
            links: 212,
        });
    }

    #[test]
    fn rejects_bad_opcode_and_truncation() {
        assert_eq!(
            FmMessage::decode(&[0xFF]),
            Err(FmMessageError::BadOpcode(0xFF))
        );
        let mut buf = Vec::new();
        FmMessage::Link {
            a: (1, 1),
            b: (2, 2),
        }
        .encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(FmMessage::decode(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn rejects_garbled_device_info() {
        let msg = FmMessage::Device {
            info: DeviceInfo {
                device_type: DeviceType::Endpoint,
                dsn: 1,
                port_count: 1,
                max_packet_size: 512,
                fm_capable: true,
                fm_priority: 1,
            },
            ports: vec![PortInfo::default()],
        };
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        buf[1] = 0; // clobber device type
        assert_eq!(FmMessage::decode(&buf), Err(FmMessageError::BadPayload));
    }
}
