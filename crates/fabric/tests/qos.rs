//! QoS feature tests: endpoint source injection rate limiting and BVC
//! bypass queues (two of the ASI congestion-management mechanisms the
//! paper lists in §2).

use asi_fabric::{AgentCtx, DevId, Fabric, FabricAgent, FabricConfig, TrafficAgent, TrafficRoute};
use asi_proto::{Packet, Payload, ProtocolInterface, RouteHeader};
use asi_sim::{SimDuration, SimRng, SimTime};
use asi_topo::{mesh, shortest_route};
use std::any::Any;

#[test]
fn injection_rate_limit_throttles_data() {
    // A saturating generator on a 2 Gb/s lane, with and without a
    // 50 MB/s injection cap.
    let measure = |limit: Option<f64>| -> u64 {
        let g = mesh(3, 3);
        let topo = &g.topology;
        let config = FabricConfig {
            injection_rate_limit: limit,
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(topo, config);
        fabric.set_event_limit(100_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let src = g.endpoint_at(0, 0);
        let dst = g.endpoint_at(2, 2);
        let route = shortest_route(topo, src, dst).unwrap();
        let pool = route.encode(topo, asi_proto::MAX_POOL_BITS).unwrap();
        fabric.set_agent(
            DevId(src.0),
            Box::new(TrafficAgent::new(
                vec![TrafficRoute {
                    egress: route.source_port,
                    pool,
                }],
                SimDuration::from_us(2), // far beyond the cap
                1024,
                SimRng::new(5),
            )),
        );
        fabric.set_agent(
            DevId(dst.0),
            Box::new(TrafficAgent::new(
                vec![],
                SimDuration::from_us(2),
                64,
                SimRng::new(6),
            )),
        );
        fabric.schedule_agent_timer(DevId(src.0), SimDuration::ZERO, TrafficAgent::start_token());
        fabric.run_until(SimTime::from_ms(10));
        fabric
            .agent_as::<TrafficAgent>(DevId(dst.0))
            .unwrap()
            .received
    };

    let unlimited = measure(None);
    let limited = measure(Some(50e6));
    // 50 MB/s over 10 ms ≈ 500 KB injected; each packet is ~1.07 KB on
    // the wire, so roughly 470 arrive at the sink.
    assert!(
        (350..600).contains(&limited),
        "limited delivery {limited} packets outside the cap band"
    );
    assert!(
        unlimited > limited * 3,
        "cap not binding: unlimited {unlimited} vs limited {limited}"
    );
}

#[test]
fn rate_limit_never_slows_management() {
    // The FM-style PI-4 ping-pong is management class: the injection cap
    // must not apply.
    use asi_proto::{CapabilityAddr, Pi4, MANAGEMENT_TC};

    struct Pinger {
        egress: u8,
        pool: asi_proto::TurnPool,
        remaining: u32,
        last_rtt: Option<SimDuration>,
        sent_at: SimTime,
    }
    impl FabricAgent for Pinger {
        fn processing_time(&mut self, _p: &Packet) -> SimDuration {
            SimDuration::from_ns(100)
        }
        fn on_packet(&mut self, ctx: &mut AgentCtx, _p: Packet) {
            self.last_rtt = Some(ctx.now.saturating_since(self.sent_at));
            if self.remaining > 0 {
                self.remaining -= 1;
                self.send(ctx);
            }
        }
        fn on_timer(&mut self, ctx: &mut AgentCtx, _t: u64) {
            self.send(ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    impl Pinger {
        fn send(&mut self, ctx: &mut AgentCtx) {
            let header = RouteHeader::forward(
                ProtocolInterface::DeviceManagement,
                MANAGEMENT_TC,
                self.pool.clone(),
            );
            self.sent_at = ctx.now;
            ctx.send(
                self.egress,
                Packet::new(
                    header,
                    Payload::Pi4(Pi4::ReadRequest {
                        req_id: self.remaining,
                        addr: CapabilityAddr::baseline(0),
                        dwords: 6,
                    }),
                ),
            );
        }
    }

    let rtt_with_limit = |limit: Option<f64>| -> SimDuration {
        let g = mesh(3, 3);
        let topo = &g.topology;
        let config = FabricConfig {
            injection_rate_limit: limit,
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(topo, config);
        fabric.set_event_limit(100_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();
        let src = g.endpoint_at(0, 0);
        let dst = g.endpoint_at(2, 2);
        let route = shortest_route(topo, src, dst).unwrap();
        let pinger = Pinger {
            egress: route.source_port,
            pool: route.encode(topo, asi_proto::MAX_POOL_BITS).unwrap(),
            remaining: 20,
            last_rtt: None,
            sent_at: SimTime::ZERO,
        };
        fabric.set_agent(DevId(src.0), Box::new(pinger));
        fabric.schedule_agent_timer(DevId(src.0), SimDuration::ZERO, 0);
        fabric.run_until_idle();
        fabric
            .agent_as::<Pinger>(DevId(src.0))
            .unwrap()
            .last_rtt
            .expect("pings completed")
    };

    // Even an absurdly low data cap leaves PI-4 RTT identical.
    assert_eq!(rtt_with_limit(None), rtt_with_limit(Some(1000.0)));
}

/// Injects one large ordered data packet followed by one small OO-marked
/// packet toward the same destination; the bypass packet must arrive
/// first.
struct BypassProbe {
    egress: u8,
    pool: asi_proto::TurnPool,
}

impl FabricAgent for BypassProbe {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx, _p: Packet) {}
    fn on_timer(&mut self, ctx: &mut AgentCtx, _t: u64) {
        // Big ordered packet…
        let hdr = RouteHeader::forward(ProtocolInterface::Data, 0, self.pool.clone());
        ctx.send(
            self.egress,
            Packet::new(hdr.clone(), Payload::Data { len: 1500 }),
        );
        // …then nine more to keep the port busy…
        for _ in 0..9 {
            ctx.send(
                self.egress,
                Packet::new(hdr.clone(), Payload::Data { len: 1500 }),
            );
        }
        // …then a small bypassable one.
        let mut oo_hdr = hdr;
        oo_hdr.oo = true;
        ctx.send(self.egress, Packet::new(oo_hdr, Payload::Data { len: 32 }));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records payload sizes in arrival order.
#[derive(Default)]
struct SizeRecorder {
    sizes: Vec<u16>,
}

impl FabricAgent for SizeRecorder {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, _ctx: &mut AgentCtx, p: Packet) {
        if let Payload::Data { len } = p.payload {
            self.sizes.push(len);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn oo_marked_packets_bypass_the_ordered_queue() {
    let g = mesh(3, 3);
    let topo = &g.topology;
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(100_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(2, 2);
    let route = shortest_route(topo, src, dst).unwrap();
    fabric.set_agent(
        DevId(src.0),
        Box::new(BypassProbe {
            egress: route.source_port,
            pool: route.encode(topo, asi_proto::MAX_POOL_BITS).unwrap(),
        }),
    );
    fabric.set_agent(DevId(dst.0), Box::new(SizeRecorder::default()));
    fabric.schedule_agent_timer(DevId(src.0), SimDuration::ZERO, 0);
    fabric.run_until_idle();

    let recorder = fabric.agent_as::<SizeRecorder>(DevId(dst.0)).unwrap();
    assert_eq!(recorder.sizes.len(), 11, "all packets must arrive");
    let bypass_pos = recorder
        .sizes
        .iter()
        .position(|&s| s == 32)
        .expect("bypass packet arrived");
    assert!(
        bypass_pos < 10,
        "OO packet did not overtake the ordered queue (position {bypass_pos})"
    );
}
