//! End-to-end fabric tests: packets crossing real multi-hop topologies,
//! device PI-4 responders, PI-5 change notification, drops and credits.

use asi_fabric::{
    AgentCtx, DevId, Fabric, FabricAgent, FabricConfig, FmRoute, TrafficAgent, TrafficRoute,
    DSN_BASE,
};
use asi_proto::{
    CapabilityAddr, DeviceInfo, Packet, Payload, Pi4, Pi4Status, PortEvent, PortState,
    ProtocolInterface, RouteHeader, MANAGEMENT_TC,
};
use asi_sim::{SimDuration, SimRng, SimTime};
use asi_topo::{mesh, routes_from, shortest_route, NodeId, Topology};
use std::any::Any;

/// Test agent: fires queued packets on its first timer, records everything
/// it receives with timestamps.
#[derive(Default)]
struct Prober {
    outbox: Vec<(u8, Packet)>,
    received: Vec<(SimTime, Packet)>,
    processing: SimDuration,
}

impl FabricAgent for Prober {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        self.processing
    }
    fn on_packet(&mut self, ctx: &mut AgentCtx, packet: Packet) {
        self.received.push((ctx.now, packet));
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx, _token: u64) {
        for (port, pkt) in self.outbox.drain(..) {
            ctx.send(port, pkt);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn dev(n: NodeId) -> DevId {
    DevId(n.0)
}

/// Builds the fabric and brings every device up.
fn up(topo: &Topology) -> Fabric {
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(5_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    fabric
}

/// A PI-4 read-request packet along a ground-truth route.
fn read_request(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    req_id: u32,
    addr: CapabilityAddr,
    dwords: u8,
) -> (u8, Packet) {
    let route = shortest_route(topo, src, dst).expect("route exists");
    let pool = route
        .encode(topo, asi_proto::MAX_POOL_BITS)
        .expect("pool fits");
    let header = RouteHeader::forward(ProtocolInterface::DeviceManagement, MANAGEMENT_TC, pool);
    (
        route.source_port,
        Packet::new(
            header,
            Payload::Pi4(Pi4::ReadRequest {
                req_id,
                addr,
                dwords,
            }),
        ),
    )
}

#[test]
fn bring_up_activates_all_links() {
    let g = mesh(3, 3);
    let fabric = up(&g.topology);
    for (id, node) in g.topology.nodes() {
        assert!(fabric.is_active(dev(id)));
        for (port, _) in g.topology.neighbors(id) {
            assert_eq!(
                fabric.port_state(dev(id), port),
                PortState::Active,
                "{} port {port}",
                node.label
            );
        }
    }
    // Unwired ports stay down.
    assert_eq!(
        fabric.port_state(dev(g.switch_at(0, 0)), 9),
        PortState::Down
    );
}

#[test]
fn pi4_read_round_trip_to_far_endpoint() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(2, 2);
    let (port, pkt) = read_request(
        &g.topology,
        src,
        dst,
        42,
        CapabilityAddr::baseline(0),
        asi_proto::GENERAL_INFO_WORDS as u8,
    );
    let mut prober = Prober::default();
    prober.outbox.push((port, pkt));
    fabric.set_agent(dev(src), Box::new(prober));
    fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
    fabric.run_until_idle();

    let prober = fabric.agent_as::<Prober>(dev(src)).unwrap();
    assert_eq!(prober.received.len(), 1, "exactly one completion");
    let (t, completion) = &prober.received[0];
    let Payload::Pi4(Pi4::ReadCompletion { req_id, data }) = &completion.payload else {
        panic!("expected completion, got {:?}", completion.payload);
    };
    assert_eq!(*req_id, 42);
    let info = DeviceInfo::from_words(data).expect("decodable general info");
    assert_eq!(info.dsn, DSN_BASE | u64::from(dst.0));
    assert_eq!(info.device_type, asi_proto::DeviceType::Endpoint);

    // Timing sanity: 5 switches each way, device time 4us; round trip must
    // exceed the device time but stay well under a millisecond.
    assert!(*t > SimTime::from_us(4), "implausibly fast: {t}");
    assert!(*t < SimTime::from_ms(1), "implausibly slow: {t}");
}

#[test]
fn pi4_read_terminates_at_switches_too() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let src = g.endpoint_at(0, 0);
    let target = g.switch_at(1, 1);
    let (port, pkt) = read_request(
        &g.topology,
        src,
        target,
        7,
        CapabilityAddr::baseline(0),
        asi_proto::GENERAL_INFO_WORDS as u8,
    );
    let mut prober = Prober::default();
    prober.outbox.push((port, pkt));
    fabric.set_agent(dev(src), Box::new(prober));
    fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
    fabric.run_until_idle();

    let prober = fabric.agent_as::<Prober>(dev(src)).unwrap();
    assert_eq!(prober.received.len(), 1);
    let Payload::Pi4(Pi4::ReadCompletion { data, .. }) = &prober.received[0].1.payload else {
        panic!("expected completion");
    };
    let info = DeviceInfo::from_words(data).unwrap();
    assert_eq!(info.device_type, asi_proto::DeviceType::Switch);
    assert_eq!(info.port_count, 16);
}

#[test]
fn out_of_range_read_yields_error_completion() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(1, 0);
    let (port, pkt) = read_request(&g.topology, src, dst, 9, CapabilityAddr::baseline(5000), 4);
    let mut prober = Prober::default();
    prober.outbox.push((port, pkt));
    fabric.set_agent(dev(src), Box::new(prober));
    fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
    fabric.run_until_idle();

    let prober = fabric.agent_as::<Prober>(dev(src)).unwrap();
    assert_eq!(prober.received.len(), 1);
    match &prober.received[0].1.payload {
        Payload::Pi4(Pi4::ReadError { req_id, status }) => {
            assert_eq!(*req_id, 9);
            assert_eq!(*status, Pi4Status::UnsupportedRequest);
        }
        other => panic!("expected error completion, got {other:?}"),
    }
}

#[test]
fn write_to_endpoint_route_table_acks() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(2, 0);
    let route = shortest_route(&g.topology, src, dst).unwrap();
    let pool = route.encode(&g.topology, asi_proto::MAX_POOL_BITS).unwrap();
    let header = RouteHeader::forward(ProtocolInterface::DeviceManagement, MANAGEMENT_TC, pool);
    let pkt = Packet::new(
        header,
        Payload::Pi4(Pi4::WriteRequest {
            req_id: 77,
            addr: CapabilityAddr {
                capability: asi_proto::CAP_ROUTE_TABLE,
                offset: 0,
            },
            data: vec![0xAB, 0xCD],
        }),
    );
    let mut prober = Prober::default();
    prober.outbox.push((route.source_port, pkt));
    fabric.set_agent(dev(src), Box::new(prober));
    fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
    fabric.run_until_idle();

    let prober = fabric.agent_as::<Prober>(dev(src)).unwrap();
    assert!(matches!(
        prober.received[0].1.payload,
        Payload::Pi4(Pi4::WriteCompletion { req_id: 77 })
    ));
    // The write landed in the destination's config space.
    let words = fabric
        .config_space(dev(dst))
        .read(
            CapabilityAddr {
                capability: asi_proto::CAP_ROUTE_TABLE,
                offset: 0,
            },
            2,
        )
        .unwrap();
    assert_eq!(words, vec![0xAB, 0xCD]);
}

#[test]
fn request_to_dead_device_gets_no_answer() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(2, 2);
    let (port, pkt) = read_request(&g.topology, src, dst, 1, CapabilityAddr::baseline(0), 1);
    // Kill the destination before probing.
    fabric.schedule_deactivate(dev(dst), SimDuration::ZERO);
    fabric.run_until_idle();

    let mut prober = Prober::default();
    prober.outbox.push((port, pkt));
    fabric.set_agent(dev(src), Box::new(prober));
    fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
    fabric.run_until_idle();

    let drops = fabric.counters().total_dropped();
    let prober = fabric.agent_as::<Prober>(dev(src)).unwrap();
    assert!(prober.received.is_empty(), "dead device answered");
    assert!(drops >= 1, "drop not accounted");
}

#[test]
fn removal_triggers_pi5_from_neighbors() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let fm = g.endpoint_at(0, 0);
    fabric.set_agent(dev(fm), Box::new(Prober::default()));

    // Configure every device's PI-5 route toward the FM endpoint.
    for (id, _) in g.topology.nodes() {
        if id == fm {
            continue;
        }
        let route = shortest_route(&g.topology, id, fm).unwrap();
        let pool = route.encode(&g.topology, asi_proto::MAX_POOL_BITS).unwrap();
        fabric.set_fm_route(
            dev(id),
            FmRoute {
                egress: route.source_port,
                pool,
            },
        );
    }

    // Remove the centre switch: its 5 neighbours (4 switches + 1 endpoint)
    // lose a port.
    let victim = g.switch_at(1, 1);
    fabric.schedule_deactivate(dev(victim), SimDuration::from_us(10));
    fabric.run_until_idle();

    // Some neighbours' FM routes ran through the victim itself (their
    // reports are suppressed/lost — exactly the failure mode the paper's
    // event mechanism tolerates), but several must get through.
    let emitted = fabric.counters().pi5_emitted;
    assert!(
        emitted >= 3,
        "expected PI-5 reports from neighbours, got {emitted}"
    );

    let prober = fabric.agent_as::<Prober>(dev(fm)).unwrap();
    let pi5s: Vec<_> = prober
        .received
        .iter()
        .filter_map(|(_, p)| match &p.payload {
            Payload::Pi5(e) => Some(*e),
            _ => None,
        })
        .collect();
    assert!(
        !pi5s.is_empty(),
        "FM received no PI-5 despite configured routes"
    );
    for e in &pi5s {
        assert_eq!(e.event, PortEvent::PortDown);
    }
    // Reporters are actual neighbours of the victim.
    let neighbor_dsns: Vec<u64> = g
        .topology
        .neighbors(victim)
        .map(|(_, at)| DSN_BASE | u64::from(at.node.0))
        .collect();
    for e in &pi5s {
        assert!(neighbor_dsns.contains(&e.reporter_dsn));
    }
}

#[test]
fn hot_addition_triggers_pi5_port_up() {
    let g = mesh(3, 3);
    let mut topo_fabric = Fabric::new(&g.topology, FabricConfig::default());
    let fm = g.endpoint_at(0, 0);
    let newcomer = g.switch_at(2, 2);

    // Bring everything up except the newcomer.
    for (id, _) in g.topology.nodes() {
        if id != newcomer {
            topo_fabric.schedule_activate(dev(id), SimDuration::ZERO);
        }
    }
    topo_fabric.run_until_idle();
    topo_fabric.set_agent(dev(fm), Box::new(Prober::default()));
    for (id, _) in g.topology.nodes() {
        if id == fm || id == newcomer {
            continue;
        }
        // Routes computed on the full ground truth still work because the
        // newcomer is on the fabric edge.
        if let Some(route) = shortest_route(&g.topology, id, fm) {
            let pool = route.encode(&g.topology, asi_proto::MAX_POOL_BITS).unwrap();
            topo_fabric.set_fm_route(
                dev(id),
                FmRoute {
                    egress: route.source_port,
                    pool,
                },
            );
        }
    }

    topo_fabric.schedule_activate(dev(newcomer), SimDuration::from_us(5));
    topo_fabric.run_until_idle();

    let prober = topo_fabric.agent_as::<Prober>(dev(fm)).unwrap();
    let ups: Vec<_> = prober
        .received
        .iter()
        .filter_map(|(_, p)| match &p.payload {
            Payload::Pi5(e) if e.event == PortEvent::PortUp => Some(e.reporter_dsn),
            _ => None,
        })
        .collect();
    assert!(!ups.is_empty(), "no PortUp events reached the FM");
}

#[test]
fn background_traffic_flows_between_endpoints() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let a = g.endpoint_at(0, 0);
    let b = g.endpoint_at(2, 2);

    let routes_a = routes_from(&g.topology, a);
    let route_ab = routes_a[b.idx()].as_ref().unwrap();
    let pool_ab = route_ab
        .encode(&g.topology, asi_proto::MAX_POOL_BITS)
        .unwrap();

    fabric.set_agent(
        dev(a),
        Box::new(TrafficAgent::new(
            vec![TrafficRoute {
                egress: route_ab.source_port,
                pool: pool_ab,
            }],
            SimDuration::from_us(20),
            256,
            SimRng::new(11),
        )),
    );
    fabric.set_agent(
        dev(b),
        Box::new(TrafficAgent::new(
            vec![],
            SimDuration::from_us(20),
            256,
            SimRng::new(12),
        )),
    );
    fabric.schedule_agent_timer(dev(a), SimDuration::ZERO, TrafficAgent::start_token());
    fabric.run_until(SimTime::from_ms(2));

    let sent = fabric.agent_as::<TrafficAgent>(dev(a)).unwrap().sent;
    let received = fabric.agent_as::<TrafficAgent>(dev(b)).unwrap().received;
    assert!(sent >= 50, "generator too slow: {sent}");
    assert!(received > 0, "sink got nothing");
    assert!(received <= sent);
    assert!(fabric.counters().data_bytes > 0);
}

#[test]
fn active_reachability_tracks_removals() {
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let fm = g.endpoint_at(0, 0);
    assert_eq!(fabric.active_reachable(dev(fm)).len(), 18);

    // Cutting the corner switch strands its endpoint.
    fabric.schedule_deactivate(dev(g.switch_at(2, 2)), SimDuration::ZERO);
    fabric.run_until_idle();
    // 18 - switch - its endpoint.
    assert_eq!(fabric.active_reachable(dev(fm)).len(), 16);
}

#[test]
fn completions_retrace_the_request_path_credits_balance() {
    // After a full exchange, every credit consumed must have been
    // returned: a second identical exchange must not stall.
    let g = mesh(3, 3);
    let mut fabric = up(&g.topology);
    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(2, 2);

    for round in 0..2 {
        let (port, pkt) =
            read_request(&g.topology, src, dst, round, CapabilityAddr::baseline(0), 1);
        if round == 0 {
            let mut prober = Prober::default();
            prober.outbox.push((port, pkt));
            fabric.set_agent(dev(src), Box::new(prober));
        } else {
            let prober = fabric.agent_as_mut::<Prober>(dev(src)).unwrap();
            prober.outbox.push((port, pkt));
        }
        fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
        fabric.run_until_idle();
    }
    let prober = fabric.agent_as::<Prober>(dev(src)).unwrap();
    assert_eq!(prober.received.len(), 2);
    assert_eq!(fabric.counters().total_dropped(), 0);
}
