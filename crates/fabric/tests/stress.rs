//! Fabric stress tests: churn, floods, and priority under load.

use asi_fabric::{AgentCtx, DevId, Fabric, FabricAgent, FabricConfig, TrafficAgent, TrafficRoute};
use asi_proto::{Packet, Payload, PortState, ProtocolInterface, RouteHeader, MANAGEMENT_TC};
use asi_sim::{SimDuration, SimRng, SimTime};
use asi_topo::{mesh, routes_from, shortest_route, torus, NodeId};
use std::any::Any;

fn dev(n: NodeId) -> DevId {
    DevId(n.0)
}

#[test]
fn repeated_activate_deactivate_cycles_are_stable() {
    let g = mesh(3, 3);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let victim = dev(g.switch_at(1, 1));
    for cycle in 0..20 {
        fabric.schedule_deactivate(victim, SimDuration::from_us(1));
        fabric.run_until_idle();
        assert!(!fabric.is_active(victim));
        // Its endpoint is stranded.
        assert_eq!(
            fabric.active_reachable(dev(g.endpoint_at(0, 0))).len(),
            16,
            "cycle {cycle}"
        );
        fabric.schedule_activate(victim, SimDuration::from_us(1));
        fabric.run_until_idle();
        assert!(fabric.is_active(victim));
        assert_eq!(
            fabric.active_reachable(dev(g.endpoint_at(0, 0))).len(),
            18,
            "cycle {cycle}"
        );
        // All links around the victim retrain to Active.
        for (port, _) in g.topology.neighbors(g.switch_at(1, 1)) {
            assert_eq!(fabric.port_state(victim, port), PortState::Active);
        }
    }
}

#[test]
fn simultaneous_multi_switch_removal() {
    let g = torus(4, 4);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    // Kill three switches at the same instant.
    for (x, y) in [(1, 1), (2, 2), (3, 1)] {
        fabric.schedule_deactivate(dev(g.switch_at(x, y)), SimDuration::from_us(5));
    }
    fabric.run_until_idle();
    let reachable = fabric.active_reachable(dev(g.endpoint_at(0, 0)));
    // 32 - 3 switches - their 3 endpoints = 26 (torus stays connected).
    assert_eq!(reachable.len(), 26);
}

/// An agent that floods a single destination and records per-packet
/// latency of its own management probes.
struct LatencyProbe {
    egress: u8,
    pool: asi_proto::TurnPool,
    sent_at: Vec<SimTime>,
    latencies: Vec<SimDuration>,
    remaining: u32,
}

impl FabricAgent for LatencyProbe {
    fn processing_time(&mut self, _p: &Packet) -> SimDuration {
        SimDuration::from_ns(100)
    }
    fn on_packet(&mut self, ctx: &mut AgentCtx, packet: Packet) {
        if matches!(packet.payload, Payload::Pi4(_)) {
            if let Some(t0) = self.sent_at.pop() {
                self.latencies.push(ctx.now.saturating_since(t0));
            }
            if self.remaining > 0 {
                self.remaining -= 1;
                self.send_probe(ctx);
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut AgentCtx, _token: u64) {
        self.send_probe(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl LatencyProbe {
    fn send_probe(&mut self, ctx: &mut AgentCtx) {
        let header = RouteHeader::forward(
            ProtocolInterface::DeviceManagement,
            MANAGEMENT_TC,
            self.pool.clone(),
        );
        let pkt = Packet::new(
            header,
            Payload::Pi4(asi_proto::Pi4::ReadRequest {
                req_id: self.remaining,
                addr: asi_proto::CapabilityAddr::baseline(0),
                dwords: 6,
            }),
        );
        self.sent_at.push(ctx.now);
        ctx.send(self.egress, pkt);
    }
}

#[test]
fn management_latency_survives_data_floods() {
    // Measure PI-4 round-trip latency with and without saturating data
    // traffic crossing the same switches: priority arbitration must keep
    // the management latency within a small bound.
    let measure = |flood: bool| -> f64 {
        let g = mesh(3, 3);
        let topo = &g.topology;
        let mut fabric = Fabric::new(topo, FabricConfig::default());
        fabric.set_event_limit(100_000_000);
        fabric.activate_all(SimDuration::ZERO);
        fabric.run_until_idle();

        if flood {
            // Endpoint (1,0) blasts endpoint (1,2): shares switch (1,1)
            // with the probe path.
            let src = g.endpoint_at(1, 0);
            let routes = routes_from(topo, src);
            let r = routes[g.endpoint_at(1, 2).idx()].as_ref().unwrap();
            let pool = r.encode(topo, asi_proto::MAX_POOL_BITS).unwrap();
            fabric.set_agent(
                dev(src),
                Box::new(TrafficAgent::new(
                    vec![TrafficRoute {
                        egress: r.source_port,
                        pool,
                    }],
                    SimDuration::from_us(5), // ~85% of a 2 Gb/s lane
                    1024,
                    SimRng::new(3),
                )),
            );
            fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, TrafficAgent::start_token());
        }

        // Probe from (0,1) to the far endpoint (2,1): crosses (1,1).
        let src = g.endpoint_at(0, 1);
        let dst = g.endpoint_at(2, 1);
        let route = shortest_route(topo, src, dst).unwrap();
        let probe = LatencyProbe {
            egress: route.source_port,
            pool: route.encode(topo, asi_proto::MAX_POOL_BITS).unwrap(),
            sent_at: Vec::new(),
            latencies: Vec::new(),
            remaining: 50,
        };
        fabric.set_agent(dev(src), Box::new(probe));
        fabric.schedule_agent_timer(dev(src), SimDuration::from_us(10), 0);
        fabric.run_until(SimTime::from_ms(5));

        let probe = fabric.agent_as::<LatencyProbe>(dev(src)).unwrap();
        assert!(probe.latencies.len() >= 20, "not enough samples");
        probe.latencies.iter().map(|l| l.as_secs_f64()).sum::<f64>() / probe.latencies.len() as f64
    };

    let quiet = measure(false);
    let loaded = measure(true);
    // A 1 KiB data frame occupies the wire ~4.3 us; a management packet
    // can wait at most one in-flight frame per hop. Allow 4x headroom.
    assert!(
        loaded < quiet + 4.0 * 4.3e-6,
        "management latency exploded under load: quiet {quiet:.2e}s loaded {loaded:.2e}s"
    );
    assert!(loaded >= quiet, "load cannot make things faster");
}

#[test]
fn event_counts_stay_bounded_per_packet() {
    // Sanity guard against event storms: a full bring-up plus one
    // request exchange on a 6x6 mesh stays within a sane event budget.
    let g = mesh(6, 6);
    let mut fabric = Fabric::new(&g.topology, FabricConfig::default());
    fabric.set_event_limit(2_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();
    // Bring-up of 72 devices with 132 links: training events only.
    let c = fabric.counters();
    assert_eq!(c.total_dropped(), 0);
    assert_eq!(c.injected, 0, "nothing injected during bring-up");
}

#[test]
fn deactivating_fm_host_breaks_cleanly() {
    // Packets in flight toward a dying endpoint are dropped, never
    // delivered, and never panic the fabric.
    let g = mesh(3, 3);
    let topo = &g.topology;
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.set_event_limit(50_000_000);
    fabric.activate_all(SimDuration::ZERO);
    fabric.run_until_idle();

    let src = g.endpoint_at(0, 0);
    let dst = g.endpoint_at(2, 2);
    let route = shortest_route(topo, src, dst).unwrap();
    let probe = LatencyProbe {
        egress: route.source_port,
        pool: route.encode(topo, asi_proto::MAX_POOL_BITS).unwrap(),
        sent_at: Vec::new(),
        latencies: Vec::new(),
        remaining: 1000,
    };
    fabric.set_agent(dev(src), Box::new(probe));
    fabric.schedule_agent_timer(dev(src), SimDuration::ZERO, 0);
    // Let the ping-pong run, then yank the destination.
    fabric.run_until(SimTime::from_us(200));
    fabric.schedule_deactivate(dev(dst), SimDuration::ZERO);
    fabric.run_until_idle();
    let c = fabric.counters();
    assert!(c.total_dropped() >= 1, "in-flight packet should drop");
    let probe = fabric.agent_as::<LatencyProbe>(dev(src)).unwrap();
    assert!(!probe.latencies.is_empty());
}
