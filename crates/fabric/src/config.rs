//! Timing and sizing parameters of the fabric model.
//!
//! Defaults follow the paper's simulation methodology: ASI x1 links at
//! 2.5 Gb/s signalling (2.0 Gb/s effective after 8b/10b), 16-port
//! multiplexed virtual cut-through switches, and a measured per-packet
//! device processing time that is small and independent of the algorithm
//! and fabric size (paper §4.1 / Fig. 4).

use crate::faults::FaultPlan;
use asi_sim::SimDuration;

/// Fabric-wide model parameters.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Time to serialize one byte on a link (x1 @ 2.0 Gb/s effective
    /// ⇒ 4 ns/byte).
    pub byte_time: SimDuration,
    /// Signal propagation delay per link (≈ 1 m backplane trace).
    pub propagation: SimDuration,
    /// Switch routing + crossbar latency per hop (virtual cut-through:
    /// forwarding starts once the header is received).
    pub switch_latency: SimDuration,
    /// Link training time after both ends power up.
    pub train_time: SimDuration,
    /// Per-packet PI-4 servicing time at a fabric device (paper: profiled,
    /// low, size- and algorithm-independent).
    pub device_time: SimDuration,
    /// Device processing *speed* factor (Figs. 8–9): effective time is
    /// `device_time / device_factor`.
    pub device_factor: f64,
    /// Input-buffer credits per management VC (64-byte units). Must
    /// cover the largest management packet (a full 8-word completion is
    /// one credit).
    pub mgmt_credits: u32,
    /// Input-buffer credits per data VC (64-byte units). Must cover the
    /// maximum packet size (2 KiB = 32 credits), or large packets could
    /// never be forwarded.
    pub data_credits: u32,
    /// Turn-pool capacity used for routes (31 = strict spec mode).
    pub turn_pool_capacity: u16,
    /// When false, credit flow control is disabled (infinite credits) —
    /// used by the flow-control ablation bench.
    pub flow_control: bool,
    /// Fault-injection plan: per-link loss model, scheduled link
    /// flaps / device hangs, and completion corruption/duplication.
    /// The default plan is inert and models the paper's loss-free
    /// OPNET links; see [`crate::FaultPlan`].
    pub faults: FaultPlan,
    /// Optional endpoint source injection rate limit in bytes/second for
    /// *data-class* traffic (one of the ASI congestion-management options
    /// the paper lists in §2). Management traffic is never limited.
    pub injection_rate_limit: Option<f64>,
    /// Seed for the fabric's own randomness (loss, corruption and
    /// duplication draws).
    pub seed: u64,
}

/// Size of one credit unit in bytes.
pub const CREDIT_UNIT: usize = 64;

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            byte_time: SimDuration::from_ns(4),
            propagation: SimDuration::from_ns(5),
            switch_latency: SimDuration::from_ns(140),
            train_time: SimDuration::from_us(1),
            device_time: SimDuration::from_us(4),
            device_factor: 1.0,
            mgmt_credits: 8,
            data_credits: 32,
            // The paper's larger fabrics need paths beyond the 31-bit spec
            // pool (DESIGN.md §2), so the default is the extended pool.
            turn_pool_capacity: asi_proto::MAX_POOL_BITS,
            flow_control: true,
            faults: FaultPlan::none(),
            injection_rate_limit: None,
            seed: 0x1055,
        }
    }
}

impl FabricConfig {
    /// Effective per-packet device servicing time after the speed factor.
    pub fn effective_device_time(&self) -> SimDuration {
        assert!(
            self.device_factor > 0.0,
            "device factor must be positive, got {}",
            self.device_factor
        );
        self.device_time.scaled(1.0 / self.device_factor)
    }

    /// Time to serialize `bytes` on a link.
    pub fn tx_time(&self, bytes: usize) -> SimDuration {
        self.byte_time * bytes as u64
    }

    /// Credits a packet of `bytes` consumes.
    pub fn credits_for(&self, bytes: usize) -> u32 {
        (bytes.div_ceil(CREDIT_UNIT)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_rate_is_2gbps() {
        let c = FabricConfig::default();
        // 1 byte = 8 bits at 2 Gb/s = 4 ns.
        assert_eq!(c.byte_time, SimDuration::from_ns(4));
        assert_eq!(c.tx_time(64), SimDuration::from_ns(256));
    }

    #[test]
    fn device_factor_scales_speed_not_time() {
        let mut c = FabricConfig {
            device_factor: 2.0, // twice as fast
            ..FabricConfig::default()
        };
        assert_eq!(c.effective_device_time(), SimDuration::from_us(2));
        c.device_factor = 0.2; // five times slower (paper Fig. 9b/c)
        assert_eq!(c.effective_device_time(), SimDuration::from_us(20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_device_factor_rejected() {
        let c = FabricConfig {
            device_factor: 0.0,
            ..FabricConfig::default()
        };
        let _ = c.effective_device_time();
    }

    #[test]
    fn credit_accounting_rounds_up() {
        let c = FabricConfig::default();
        assert_eq!(c.credits_for(1), 1);
        assert_eq!(c.credits_for(64), 1);
        assert_eq!(c.credits_for(65), 2);
        assert_eq!(c.credits_for(128), 2);
        assert_eq!(c.credits_for(0), 0);
    }
}
