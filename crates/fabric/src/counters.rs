//! Fabric-wide packet accounting.

/// Counters updated by the fabric as packets move.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Packets injected by agents and device responders.
    pub injected: u64,
    /// Packets delivered to a local consumer (agent or device responder).
    pub delivered: u64,
    /// Switch-to-link forwarding operations.
    pub forwarded: u64,
    /// Packets dropped because the egress port was down.
    pub dropped_link_down: u64,
    /// Packets dropped because the receiving device was inactive.
    pub dropped_inactive: u64,
    /// Packets dropped due to a routing error (bad turn pool, arrival at an
    /// endpoint with turns left, …).
    pub dropped_bad_route: u64,
    /// Packets discarded by the receiver's CRC check (injected loss).
    pub dropped_corrupted: u64,
    /// Times a transmission had to wait for credits.
    pub credit_stalls: u64,
    /// Management-plane bytes put on the wire.
    pub mgmt_bytes: u64,
    /// Data-plane bytes put on the wire.
    pub data_bytes: u64,
    /// PI-5 events emitted by devices.
    pub pi5_emitted: u64,
    /// PI-4 completions discarded at delivery by injected corruption
    /// (also counted in `dropped_corrupted`).
    pub completions_corrupted: u64,
    /// PI-4 completions duplicated in flight by injected faults.
    pub completions_duplicated: u64,
    /// Scheduled link flaps that fired on an existing link.
    pub link_flaps: u64,
}

impl FabricCounters {
    /// Total drops of any kind.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_link_down
            + self.dropped_inactive
            + self.dropped_bad_route
            + self.dropped_corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_dropped_sums_categories() {
        let c = FabricCounters {
            dropped_link_down: 1,
            dropped_inactive: 2,
            dropped_bad_route: 4,
            ..FabricCounters::default()
        };
        assert_eq!(c.total_dropped(), 7);
    }
}
