//! `asi-fabric` — the simulated Advanced Switching fabric.
//!
//! This crate is the substrate the paper built in OPNET (their reference
//! \[8\]): x1 links, 16-port multiplexed virtual cut-through switches,
//! 1-port endpoints, credit-based flow control, management-priority
//! arbitration, PI-4 device responders, PI-5 event generation, device hot
//! addition/removal, and an agent interface on endpoints where the fabric
//! manager (crate `asi-core`) and background-traffic generators run.
//!
//! The public surface:
//!
//! - [`Fabric`] — build from an `asi_topo::Topology`, activate devices,
//!   run the event loop;
//! - [`FabricConfig`] — link/switch/device timing parameters, including
//!   the device processing-speed factor of the paper's Figs. 8–9;
//! - [`FaultPlan`]/[`LossModel`] — deterministic fault injection
//!   (per-link loss, link flaps, device hangs, completion corruption);
//! - [`FabricAgent`]/[`AgentCtx`] — endpoint management software hooks;
//! - [`TrafficAgent`] — Poisson background traffic for the
//!   "traffic scarcely influences discovery" ablation.

#![warn(missing_docs)]

mod agent;
mod config;
mod counters;
mod fabric;
mod faults;
mod traffic;

pub use agent::{AgentCommand, AgentCtx, DevId, FabricAgent};
pub use config::{FabricConfig, CREDIT_UNIT};
pub use counters::FabricCounters;
pub use fabric::{CreditClass, Fabric, FmRoute, DSN_BASE};
pub use faults::{FaultEvent, FaultKind, FaultPlan, LossModel};
pub use traffic::{TrafficAgent, TrafficRoute};
