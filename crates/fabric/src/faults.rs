//! Deterministic fault injection for the fabric.
//!
//! A [`FaultPlan`] describes everything that can go wrong during a run:
//! a per-link [`LossModel`] (uniform or bursty Gilbert–Elliott),
//! scheduled link flaps and device hangs/slow-downs on the sim clock,
//! and completion corruption/duplication. The plan is *data*, not code:
//! the fabric draws every random decision from its own seeded RNG, so
//! identical `(seed, plan)` pairs replay byte-identically — including
//! across sweep `--jobs` counts, because each sweep cell builds its own
//! fabric and RNG.
//!
//! Determinism guarantee: a model whose loss probabilities are all zero
//! never changes scheduling. Loss draws happen *after* a transmission is
//! committed and only decide whether the packet is discarded at the
//! receiver, so `LossModel::bursty(0.0)` reproduces the loss-free run
//! byte-for-byte (a property test in `asi-core` enforces this).

use asi_sim::SimDuration;

/// Per-link packet-loss model, applied to every link traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LossModel {
    /// Loss-free links (the paper's OPNET model; the default).
    #[default]
    None,
    /// Independent per-traversal drop probability.
    Uniform {
        /// Drop probability per transmission, in `[0, 1)`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss. Each link keeps its own
    /// good/bad state; the state transitions once per transmission and
    /// the drop probability depends on the current state.
    GilbertElliott {
        /// Probability of moving good → bad per transmission.
        p_enter_bad: f64,
        /// Probability of moving bad → good per transmission.
        p_exit_bad: f64,
        /// Drop probability while the link is in the good state.
        loss_good: f64,
        /// Drop probability while the link is in the bad state.
        loss_bad: f64,
    },
}

fn check_probability(name: &str, p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "{name} must be a probability in [0, 1], got {p}"
    );
}

impl LossModel {
    /// Dwell parameters of [`LossModel::bursty`]: per-transmission
    /// probability of entering the bad state (mean good dwell 50
    /// transmissions) …
    pub const BURSTY_P_ENTER_BAD: f64 = 0.02;
    /// … and of leaving it (mean burst length 5 transmissions). The
    /// stationary bad-state fraction is `0.02 / 0.22 ≈ 9.1%`.
    pub const BURSTY_P_EXIT_BAD: f64 = 0.2;

    /// Uniform per-traversal loss with probability `p`.
    pub fn uniform(p: f64) -> LossModel {
        check_probability("loss probability", p);
        LossModel::Uniform { p }
    }

    /// A Gilbert–Elliott model with fixed burst dynamics
    /// ([`BURSTY_P_ENTER_BAD`](Self::BURSTY_P_ENTER_BAD) /
    /// [`BURSTY_P_EXIT_BAD`](Self::BURSTY_P_EXIT_BAD)) whose loss
    /// probabilities are derived so the *stationary mean* loss equals
    /// `mean_loss`. Losses concentrate in the bad state; once the bad
    /// state saturates (`mean_loss` above its stationary fraction) the
    /// remainder spills into the good state, preserving the mean for
    /// any `mean_loss` in `[0, 1)`.
    pub fn bursty(mean_loss: f64) -> LossModel {
        assert!(
            (0.0..1.0).contains(&mean_loss),
            "mean loss must be in [0, 1), got {mean_loss}"
        );
        let pi_bad =
            Self::BURSTY_P_ENTER_BAD / (Self::BURSTY_P_ENTER_BAD + Self::BURSTY_P_EXIT_BAD);
        let loss_bad = (mean_loss / pi_bad).min(1.0);
        let loss_good = if mean_loss > pi_bad {
            (mean_loss - pi_bad) / (1.0 - pi_bad)
        } else {
            0.0
        };
        LossModel::GilbertElliott {
            p_enter_bad: Self::BURSTY_P_ENTER_BAD,
            p_exit_bad: Self::BURSTY_P_EXIT_BAD,
            loss_good,
            loss_bad,
        }
    }

    /// Long-run expected loss fraction of this model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Uniform { p } => p,
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                if p_enter_bad <= 0.0 {
                    loss_good
                } else if p_exit_bad <= 0.0 {
                    loss_bad
                } else {
                    let pi_bad = p_enter_bad / (p_enter_bad + p_exit_bad);
                    loss_bad * pi_bad + loss_good * (1.0 - pi_bad)
                }
            }
        }
    }

    /// True when this model can never drop a packet.
    pub fn is_lossless(&self) -> bool {
        match *self {
            LossModel::None => true,
            LossModel::Uniform { p } => p <= 0.0,
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                ..
            } => loss_good <= 0.0 && loss_bad <= 0.0,
        }
    }
}

/// What a scheduled fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Take one link down (both directions lose carrier, both sides see
    /// a PI-5 `PortDown`), then retrain it after `down_for`.
    LinkFlap {
        /// Device owning the flapped port.
        device: u32,
        /// The port to flap.
        port: u8,
        /// How long the link stays down before retraining.
        down_for: SimDuration,
    },
    /// Freeze a device's PI-4 responder: packets queue but no
    /// completion leaves until the hang ends.
    DeviceHang {
        /// The device to hang.
        device: u32,
        /// How long the responder stays frozen.
        duration: SimDuration,
    },
    /// Multiply a device's PI-4 servicing time by `factor` for
    /// `duration` (models a busy or degraded management CPU).
    DeviceSlow {
        /// The device to slow.
        device: u32,
        /// Service-time multiplier (> 0; values > 1 slow the device).
        factor: f64,
        /// How long the slow-down lasts.
        duration: SimDuration,
    },
}

/// One scheduled fault on the sim clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires, relative to fabric construction.
    pub at: SimDuration,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, replayable description of the faults a run is subjected
/// to. Build with the `with_*` / scheduling methods; the default plan
/// is fault-free and reproduces the loss-free simulation exactly.
///
/// ```
/// use asi_fabric::{FaultPlan, LossModel};
/// use asi_sim::SimDuration;
///
/// let plan = FaultPlan::none()
///     .with_loss(LossModel::uniform(0.02))
///     .with_device_hang(SimDuration::from_ms(1), 3, SimDuration::from_ms(2));
/// assert!(!plan.is_inert());
/// assert_eq!(plan.events.len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Per-link loss model.
    pub loss: LossModel,
    /// Probability that a delivered PI-4 completion is corrupted in
    /// flight and discarded by the receiver's CRC check (the requester
    /// then times out and may retry).
    pub corrupt_completions: f64,
    /// Probability that a delivered PI-4 completion is duplicated; the
    /// requester must ignore the stale second copy.
    pub duplicate_completions: f64,
    /// Scheduled link-flap / device-hang / device-slow events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The fault-free plan (same as `FaultPlan::default()`).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Replaces the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> FaultPlan {
        self.loss = loss;
        self
    }

    /// Sets the completion-corruption probability.
    pub fn with_corruption(mut self, p: f64) -> FaultPlan {
        check_probability("corruption probability", p);
        self.corrupt_completions = p;
        self
    }

    /// Sets the completion-duplication probability.
    pub fn with_duplication(mut self, p: f64) -> FaultPlan {
        check_probability("duplication probability", p);
        self.duplicate_completions = p;
        self
    }

    /// Schedules a link flap: `device`'s `port` goes down at `at` and
    /// retrains after `down_for`.
    pub fn with_link_flap(
        mut self,
        at: SimDuration,
        device: u32,
        port: u8,
        down_for: SimDuration,
    ) -> FaultPlan {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::LinkFlap {
                device,
                port,
                down_for,
            },
        });
        self
    }

    /// Schedules a device hang: `device`'s responder freezes at `at`
    /// for `duration`.
    pub fn with_device_hang(
        mut self,
        at: SimDuration,
        device: u32,
        duration: SimDuration,
    ) -> FaultPlan {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DeviceHang { device, duration },
        });
        self
    }

    /// Schedules a device slow-down: `device`'s PI-4 servicing time is
    /// multiplied by `factor` from `at` for `duration`.
    pub fn with_device_slow(
        mut self,
        at: SimDuration,
        device: u32,
        factor: f64,
        duration: SimDuration,
    ) -> FaultPlan {
        assert!(factor > 0.0, "slow factor must be positive, got {factor}");
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::DeviceSlow {
                device,
                factor,
                duration,
            },
        });
        self
    }

    /// True when the plan cannot affect the simulation at all: no
    /// scheduled events, no corruption/duplication, and a loss model
    /// that never drops. An inert plan replays the fault-free run
    /// byte-for-byte.
    pub fn is_inert(&self) -> bool {
        self.loss.is_lossless()
            && self.corrupt_completions <= 0.0
            && self.duplicate_completions <= 0.0
            && self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::default().is_inert());
        assert!(FaultPlan::none().is_inert());
        assert_eq!(LossModel::default().mean_loss(), 0.0);
    }

    #[test]
    fn bursty_preserves_the_mean_below_and_above_saturation() {
        for &mean in &[0.0, 0.01, 0.05, 0.0909, 0.25, 0.5, 0.9] {
            let model = LossModel::bursty(mean);
            assert!(
                (model.mean_loss() - mean).abs() < 1e-12,
                "mean {mean} reproduced as {}",
                model.mean_loss()
            );
        }
    }

    #[test]
    fn bursty_concentrates_loss_in_the_bad_state() {
        let LossModel::GilbertElliott {
            loss_good,
            loss_bad,
            ..
        } = LossModel::bursty(0.05)
        else {
            panic!("bursty must build a Gilbert–Elliott model");
        };
        assert_eq!(loss_good, 0.0);
        assert!(loss_bad > 0.5, "5% mean loss ⇒ bad state drops {loss_bad}");
    }

    #[test]
    fn zero_mean_bursty_is_lossless() {
        let model = LossModel::bursty(0.0);
        assert!(model.is_lossless());
        assert!(FaultPlan::none().with_loss(model).is_inert());
    }

    #[test]
    fn scheduled_events_make_the_plan_active() {
        let plan = FaultPlan::none().with_link_flap(
            SimDuration::from_us(10),
            3,
            1,
            SimDuration::from_us(50),
        );
        assert!(!plan.is_inert());
        assert_eq!(plan.events.len(), 1);

        let plan = FaultPlan::none()
            .with_device_hang(SimDuration::from_us(5), 2, SimDuration::from_us(20))
            .with_device_slow(SimDuration::from_us(9), 4, 8.0, SimDuration::from_us(40));
        assert_eq!(plan.events.len(), 2);
        assert!(!plan.is_inert());
    }

    #[test]
    fn corruption_and_duplication_activate_the_plan() {
        assert!(!FaultPlan::none().with_corruption(0.1).is_inert());
        assert!(!FaultPlan::none().with_duplication(0.1).is_inert());
        assert!(FaultPlan::none()
            .with_corruption(0.0)
            .with_duplication(0.0)
            .is_inert());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_corruption_rejected() {
        let _ = FaultPlan::none().with_corruption(1.5);
    }

    #[test]
    #[should_panic(expected = "[0, 1)")]
    fn full_mean_loss_rejected() {
        let _ = LossModel::bursty(1.0);
    }
}
