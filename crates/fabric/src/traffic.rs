//! Background application traffic generator.
//!
//! The paper reports results "without considering application traffic",
//! noting that traffic scarcely influences discovery time because
//! management packets have the highest priority. This agent lets the
//! benches *verify* that claim: it injects Poisson data traffic from an
//! endpoint toward random destinations over pre-computed source routes.

use crate::agent::{AgentCtx, FabricAgent};
use asi_proto::{Packet, Payload, RouteHeader, TurnPool};
use asi_sim::{SimDuration, SimRng};
use std::any::Any;

/// Timer token the generator arms for its next injection.
const TOKEN_NEXT: u64 = 0x7AF1C;

/// A destination the generator can pick.
#[derive(Clone, Debug)]
pub struct TrafficRoute {
    /// Egress port at the source endpoint.
    pub egress: u8,
    /// Turn pool to the destination.
    pub pool: TurnPool,
}

/// Poisson background-traffic source/sink.
pub struct TrafficAgent {
    routes: Vec<TrafficRoute>,
    mean_gap: SimDuration,
    payload_bytes: u16,
    tc: u8,
    rng: SimRng,
    /// Data packets this endpoint has received.
    pub received: u64,
    /// Data packets this endpoint has injected.
    pub sent: u64,
}

impl TrafficAgent {
    /// Creates a generator sending a `payload_bytes` packet on average
    /// every `mean_gap`, uniformly across `routes`.
    pub fn new(
        routes: Vec<TrafficRoute>,
        mean_gap: SimDuration,
        payload_bytes: u16,
        rng: SimRng,
    ) -> TrafficAgent {
        TrafficAgent {
            routes,
            mean_gap,
            payload_bytes,
            tc: 0,
            rng,
            received: 0,
            sent: 0,
        }
    }

    /// Timer token to arm (via `Fabric::schedule_agent_timer`) to start
    /// the generator.
    pub fn start_token() -> u64 {
        TOKEN_NEXT
    }

    fn next_gap(&mut self) -> SimDuration {
        let gap = self.rng.gen_exp(self.mean_gap.as_secs_f64());
        SimDuration::from_secs_f64(gap.max(1e-9))
    }
}

impl FabricAgent for TrafficAgent {
    fn processing_time(&mut self, _packet: &Packet) -> SimDuration {
        // Sink-side handling cost; negligible next to management times.
        SimDuration::from_ns(100)
    }

    fn on_packet(&mut self, _ctx: &mut AgentCtx, packet: Packet) {
        if matches!(packet.payload, Payload::Data { .. }) {
            self.received += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx, token: u64) {
        if token != TOKEN_NEXT || self.routes.is_empty() {
            return;
        }
        let route = self.routes[self.rng.gen_index(self.routes.len())].clone();
        let header = RouteHeader::forward(asi_proto::ProtocolInterface::Data, self.tc, route.pool);
        let packet = Packet::new(
            header,
            Payload::Data {
                len: self.payload_bytes,
            },
        );
        ctx.send(route.egress, packet);
        self.sent += 1;
        let gap = self.next_gap();
        ctx.set_timer(gap, TOKEN_NEXT);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::DevId;
    use asi_sim::SimTime;

    #[test]
    fn timer_injects_and_rearms() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(1, 4).unwrap();
        let mut agent = TrafficAgent::new(
            vec![TrafficRoute { egress: 0, pool }],
            SimDuration::from_us(10),
            128,
            SimRng::new(5),
        );
        let mut ctx = AgentCtx::detached(SimTime::ZERO, DevId(0));
        agent.on_timer(&mut ctx, TrafficAgent::start_token());
        let cmds = ctx.take_commands();
        assert_eq!(cmds.len(), 2, "one send + one re-arm");
        assert_eq!(agent.sent, 1);
    }

    #[test]
    fn unknown_token_is_ignored() {
        let mut agent = TrafficAgent::new(vec![], SimDuration::from_us(10), 64, SimRng::new(1));
        let mut ctx = AgentCtx::detached(SimTime::ZERO, DevId(0));
        agent.on_timer(&mut ctx, 999);
        assert!(ctx.take_commands().is_empty());
        assert_eq!(agent.sent, 0);
    }

    #[test]
    fn counts_received_data_only() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(1, 4).unwrap();
        let mut agent = TrafficAgent::new(vec![], SimDuration::from_us(1), 64, SimRng::new(1));
        let mut ctx = AgentCtx::detached(SimTime::ZERO, DevId(0));
        let hdr = RouteHeader::forward(asi_proto::ProtocolInterface::Data, 0, pool);
        agent.on_packet(
            &mut ctx,
            Packet::new(hdr.clone(), Payload::Data { len: 64 }),
        );
        assert_eq!(agent.received, 1);
        agent.on_packet(
            &mut ctx,
            Packet::new(
                hdr,
                Payload::Pi4(asi_proto::Pi4::WriteCompletion { req_id: 0 }),
            ),
        );
        assert_eq!(agent.received, 1);
    }
}
