//! The agent interface: how management software (the fabric manager, the
//! background-traffic generator, …) attaches to an endpoint.
//!
//! Agents never touch the fabric directly; callbacks receive an
//! [`AgentCtx`] and push [`AgentCommand`]s (send a packet, arm a timer)
//! that the fabric executes when the callback returns. This keeps the
//! borrow structure trivial and makes agent behaviour easy to unit-test.

use asi_proto::{DeviceInfo, DeviceType, Packet, PortEvent, PortInfo};
use asi_sim::{SimDuration, SimTime};
use std::any::Any;

/// Identifies a device within a [`crate::Fabric`] (same index space as the
/// source topology's `NodeId`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DevId(pub u32);

impl DevId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DevId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Deferred actions an agent requests during a callback.
#[derive(Debug)]
pub enum AgentCommand {
    /// Inject a packet into the fabric through the endpoint's `port`.
    Send {
        /// Egress port on the hosting endpoint.
        port: u8,
        /// The packet.
        packet: Packet,
    },
    /// Arm a one-shot timer; `on_timer(token)` fires after `delay`.
    Timer {
        /// Delay from now.
        delay: SimDuration,
        /// Opaque token returned to the agent.
        token: u64,
    },
}

/// Context handed to agent callbacks.
pub struct AgentCtx {
    /// Current simulated time.
    pub now: SimTime,
    /// The device hosting this agent.
    pub dev: DevId,
    /// The hosting endpoint's own general information — what the FM's
    /// "read host endpoint configuration space" step returns (a local
    /// access, no packets).
    pub host_info: DeviceInfo,
    /// The hosting endpoint's current port attributes.
    pub host_ports: Vec<PortInfo>,
    commands: Vec<AgentCommand>,
}

impl AgentCtx {
    /// Creates a context (fabric-internal; public for agent unit tests).
    pub fn new(
        now: SimTime,
        dev: DevId,
        host_info: DeviceInfo,
        host_ports: Vec<PortInfo>,
    ) -> AgentCtx {
        AgentCtx {
            now,
            dev,
            host_info,
            host_ports,
            commands: Vec::new(),
        }
    }

    /// Context with a placeholder single-port host — for agent unit tests
    /// that do not exercise host introspection.
    pub fn detached(now: SimTime, dev: DevId) -> AgentCtx {
        AgentCtx::new(
            now,
            dev,
            DeviceInfo {
                device_type: DeviceType::Endpoint,
                dsn: 0,
                port_count: 1,
                max_packet_size: 2048,
                fm_capable: true,
                fm_priority: 0,
            },
            vec![PortInfo::default()],
        )
    }

    /// Queues a packet for injection through `port`.
    pub fn send(&mut self, port: u8, packet: Packet) {
        self.commands.push(AgentCommand::Send { port, packet });
    }

    /// Arms a one-shot timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.commands.push(AgentCommand::Timer { delay, token });
    }

    /// Drains the queued commands (fabric-internal).
    pub fn take_commands(&mut self) -> Vec<AgentCommand> {
        std::mem::take(&mut self.commands)
    }

    /// Replaces the command buffer with a recycled allocation
    /// (fabric-internal; the buffer is cleared before use).
    pub fn recycle_commands(&mut self, mut buf: Vec<AgentCommand>) {
        buf.clear();
        self.commands = buf;
    }
}

/// Management software running on an endpoint.
///
/// The fabric delivers management-plane packets (PI-4 completions, PI-5
/// events, data) to the agent **one at a time**: each packet occupies the
/// agent for [`FabricAgent::processing_time`] before `on_packet` runs and
/// the next packet is dequeued. This occupancy model is what produces the
/// serial/pipelined FM timelines of the paper's Fig. 7.
pub trait FabricAgent {
    /// How long this packet occupies the agent (e.g. the paper's measured
    /// per-packet FM processing time).
    fn processing_time(&mut self, packet: &Packet) -> SimDuration;

    /// A packet finished processing.
    fn on_packet(&mut self, ctx: &mut AgentCtx, packet: Packet);

    /// A timer armed with [`AgentCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut AgentCtx, _token: u64) {}

    /// A local port of the hosting endpoint changed state.
    fn on_port_event(&mut self, _ctx: &mut AgentCtx, _port: u8, _event: PortEvent) {}

    /// Downcasting support so harnesses can inspect agent state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_collects_commands_in_order() {
        let mut ctx = AgentCtx::detached(SimTime::from_us(3), DevId(7));
        assert_eq!(ctx.now, SimTime::from_us(3));
        assert_eq!(ctx.dev, DevId(7));
        ctx.set_timer(SimDuration::from_us(1), 11);
        ctx.set_timer(SimDuration::from_us(2), 22);
        let cmds = ctx.take_commands();
        assert_eq!(cmds.len(), 2);
        match (&cmds[0], &cmds[1]) {
            (AgentCommand::Timer { token: 11, .. }, AgentCommand::Timer { token: 22, .. }) => {}
            other => panic!("unexpected commands: {other:?}"),
        }
        // Drained.
        assert!(ctx.take_commands().is_empty());
    }
}
