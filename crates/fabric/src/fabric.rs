//! The fabric engine: devices, ports, links, forwarding, flow control,
//! activation/deactivation and PI-5 event generation, all driven by the
//! `asi-sim` discrete-event kernel.
//!
//! ## Model summary (paper §4.1)
//!
//! - **Links**: x1, 2.0 Gb/s effective, fixed propagation delay.
//! - **Switches**: virtual cut-through — forwarding begins once the
//!   routing header has been received; a per-output-port serializer
//!   transmits one packet at a time with management-class priority.
//! - **Flow control**: credit-based per VC class (64-byte units); a hop's
//!   input-buffer credits return to the upstream transmitter when the
//!   packet departs the hop.
//! - **Devices**: every device services PI-4 requests serially, taking
//!   `device_time / device_factor` per request before the completion is
//!   injected back along the reversed path.
//! - **Agents**: endpoint-resident management software (the FM, traffic
//!   generators) receives completions/PI-5/data one packet at a time with
//!   a per-packet processing occupancy.

use crate::agent::{AgentCommand, AgentCtx, DevId, FabricAgent};
use crate::config::FabricConfig;
use crate::counters::FabricCounters;
use crate::faults::{FaultKind, LossModel};
use asi_proto::{
    apply_backward, apply_forward, turn_width, DeviceInfo, DeviceType, Packet, Payload, Pi4, Pi5,
    PortEvent, PortInfo, PortState, ProtocolInterface, RouteHeader, TurnCursor, TurnPool,
    MANAGEMENT_TC,
};
use asi_sim::{SimDuration, SimRng, SimTime, Simulator, TraceEvent, TraceHandle};
use asi_topo::Topology;
use std::collections::VecDeque;

/// Credit / arbitration class of a packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CreditClass {
    /// Management plane (PI-4/PI-5): highest priority.
    Mgmt,
    /// Application data.
    Data,
}

impl CreditClass {
    fn of(packet: &Packet) -> CreditClass {
        if packet.is_management() {
            CreditClass::Mgmt
        } else {
            CreditClass::Data
        }
    }

    fn idx(self) -> usize {
        match self {
            CreditClass::Mgmt => 0,
            CreditClass::Data => 1,
        }
    }
}

/// Where a queued packet's input-buffer credits must be released.
#[derive(Clone, Copy, Debug)]
struct CreditOrigin {
    dev: DevId,
    port: u8,
    class: CreditClass,
    amount: u32,
}

/// A packet waiting on an output port.
///
/// The packet is boxed: entries move through per-port `VecDeque`s and the
/// simulator's binary heap, and a [`Packet`] is ~136 bytes inline — keeping
/// it behind a pointer makes those moves (and heap sift-up/down) cheap on
/// large fabrics.
struct OutEntry {
    ready: SimTime,
    packet: Box<Packet>,
    origin: Option<CreditOrigin>,
}

/// One port of a device.
struct Port {
    peer: Option<(DevId, u8)>,
    state: PortState,
    mgmt_q: VecDeque<OutEntry>,
    /// BVC bypass queue: data packets with the `OO` header bit may jump
    /// ahead of the ordered data queue (paper §2's bypassable VCs).
    bypass_q: VecDeque<OutEntry>,
    data_q: VecDeque<OutEntry>,
    busy_until: SimTime,
    /// Earliest pending [`Event::TryTx`] wakeup for this port, if any.
    /// At most one wakeup is kept armed: without this guard every packet
    /// enqueued behind a busy serializer schedules its own retry, and a
    /// K-deep queue burns O(K²) events leapfrogging `busy_until`.
    try_tx_at: Option<SimTime>,
    /// Source-injection rate limiter: next instant a data-class packet
    /// may start serializing (endpoints only).
    rate_next: SimTime,
    /// Credits available at the peer's input buffer, per class.
    peer_credits: [u32; 2],
    /// Gilbert–Elliott loss state of the outgoing link: true while the
    /// link is in its bad (bursty-loss) state.
    ge_bad: bool,
}

impl Port {
    fn queued(&self) -> usize {
        self.mgmt_q.len() + self.bypass_q.len() + self.data_q.len()
    }
}

/// PI-4 responder state (every device).
#[derive(Default)]
struct Responder {
    queue: VecDeque<(u8, Box<Packet>)>,
    busy: bool,
}

/// Endpoint agent hosting state.
struct AgentSlot {
    agent: Box<dyn FabricAgent>,
    queue: VecDeque<Box<Packet>>,
    busy: bool,
}

/// The route a device uses to report PI-5 events to the FM.
#[derive(Clone, Debug)]
pub struct FmRoute {
    /// Egress port at the reporting device.
    pub egress: u8,
    /// Turns for the switches along the way.
    pub pool: TurnPool,
}

struct Device {
    info: DeviceInfo,
    config: asi_proto::ConfigSpace,
    ports: Vec<Port>,
    active: bool,
    responder: Responder,
    /// Inbound management pipe in front of the agent: the endpoint's PI-4
    /// engine handles each received management packet for the device
    /// processing time before the agent software sees it. This stage is
    /// what makes a very slow device family (factor < ~T_dev/T_FM ≈ 1/3)
    /// finally pace even the Parallel discovery (paper Fig. 8b).
    ingress: IngressPipe,
    agent: Option<AgentSlot>,
    fm_route: Option<FmRoute>,
    pi5_seq: u32,
    /// While `now < hang_until` the PI-4 responder is frozen: requests
    /// queue but no completion leaves (injected fault).
    hang_until: SimTime,
    /// While `now < slow_until` the responder's servicing time is
    /// multiplied by `slow_factor` (injected fault).
    slow_until: SimTime,
    slow_factor: f64,
}

/// Serialized delivery stage in front of an endpoint agent.
#[derive(Default)]
struct IngressPipe {
    queue: VecDeque<Box<Packet>>,
    busy: bool,
}

/// Fabric events.
#[derive(Debug)]
enum Event {
    /// Routing header fully received at `(dev, port)`.
    Arrive {
        dev: DevId,
        port: u8,
        packet: Box<Packet>,
    },
    /// Entire packet received; hand to the local consumer.
    Deliver {
        dev: DevId,
        port: u8,
        packet: Box<Packet>,
    },
    /// Output serializer / queue retry.
    TryTx { dev: DevId, port: u8 },
    /// Flow-control credits coming back from the downstream input buffer.
    CreditReturn {
        dev: DevId,
        port: u8,
        class: CreditClass,
        amount: u32,
    },
    /// The endpoint agent finished its per-packet occupancy.
    AgentDone { dev: DevId },
    /// The endpoint's inbound PI-4 engine finished handling a packet.
    IngressDone { dev: DevId },
    /// The device PI-4 responder finished servicing a request.
    ResponderDone { dev: DevId },
    /// Agent timer.
    Timer { dev: DevId, token: u64 },
    /// Link training completed on `(dev, port)`.
    PortTrained { dev: DevId, port: u8 },
    /// Device power-up.
    Activate { dev: DevId },
    /// Device removal / failure.
    Deactivate { dev: DevId },
    /// Scheduled fault: take a link down, retrain after `down_for`.
    FaultLinkDown {
        dev: DevId,
        port: u8,
        down_for: SimDuration,
    },
    /// Scheduled fault: a flapped link comes back and retrains.
    FaultLinkUp { dev: DevId, port: u8 },
    /// Scheduled fault: freeze a device's PI-4 responder.
    FaultDeviceHang { dev: DevId, duration: SimDuration },
    /// Scheduled fault: slow a device's PI-4 responder.
    FaultDeviceSlow {
        dev: DevId,
        factor: f64,
        duration: SimDuration,
    },
}

/// The simulated ASI fabric.
pub struct Fabric {
    sim: Simulator<Event>,
    devices: Vec<Device>,
    config: FabricConfig,
    counters: FabricCounters,
    rng: SimRng,
    trace: TraceHandle,
    /// Recycled [`AgentCtx`] port-snapshot buffer: agent callbacks fire on
    /// every delivered management packet, so allocating a fresh `Vec` per
    /// callback shows up in discovery profiles.
    scratch_ports: Vec<PortInfo>,
    /// Recycled agent command buffer (same rationale).
    scratch_commands: Vec<AgentCommand>,
}

/// Base used to derive device serial numbers from indices.
pub const DSN_BASE: u64 = 0xA51_0000_0000;

impl Fabric {
    /// Instantiates a fabric from a ground-truth topology. All devices
    /// start powered off; use [`Fabric::schedule_activate`] /
    /// [`Fabric::activate_all`].
    pub fn new(topo: &Topology, config: FabricConfig) -> Fabric {
        let mut devices = Vec::with_capacity(topo.node_count());
        for (id, node) in topo.nodes() {
            let info = DeviceInfo {
                device_type: node.device_type,
                dsn: DSN_BASE | u64::from(id.0),
                port_count: u16::from(node.ports),
                max_packet_size: 2048,
                fm_capable: node.device_type == DeviceType::Endpoint,
                fm_priority: 0,
            };
            let ports = (0..node.ports)
                .map(|p| Port {
                    peer: topo.peer(id, p).map(|at| (DevId(at.node.0), at.port)),
                    state: PortState::Down,
                    mgmt_q: VecDeque::new(),
                    bypass_q: VecDeque::new(),
                    data_q: VecDeque::new(),
                    busy_until: SimTime::ZERO,
                    try_tx_at: None,
                    rate_next: SimTime::ZERO,
                    peer_credits: [config.mgmt_credits, config.data_credits],
                    ge_bad: false,
                })
                .collect();
            devices.push(Device {
                config: asi_proto::ConfigSpace::new(info),
                info,
                ports,
                active: false,
                responder: Responder::default(),
                ingress: IngressPipe::default(),
                agent: None,
                fm_route: None,
                pi5_seq: 0,
                hang_until: SimTime::ZERO,
                slow_until: SimTime::ZERO,
                slow_factor: 1.0,
            });
        }
        let rng = SimRng::new(config.seed);
        // Pre-size the event queue by fabric scale: steady-state discovery
        // keeps a handful of events in flight per device (arrivals,
        // serializer retries, credit returns), so growing from a fixed
        // 1024 caused repeated heap reallocation on the larger Table 1
        // topologies.
        let event_capacity = 1024.max(devices.len() * 8);
        let mut sim = Simulator::with_capacity(event_capacity);
        // Scheduled faults go on the clock up front; the plan is pure
        // data, so replaying the same (seed, plan) replays these too.
        for fault in &config.faults.events {
            let event = match fault.kind {
                FaultKind::LinkFlap {
                    device,
                    port,
                    down_for,
                } => Event::FaultLinkDown {
                    dev: DevId(device),
                    port,
                    down_for,
                },
                FaultKind::DeviceHang { device, duration } => Event::FaultDeviceHang {
                    dev: DevId(device),
                    duration,
                },
                FaultKind::DeviceSlow {
                    device,
                    factor,
                    duration,
                } => Event::FaultDeviceSlow {
                    dev: DevId(device),
                    factor,
                    duration,
                },
            };
            sim.schedule_after(fault.at, event);
        }
        Fabric {
            sim,
            devices,
            config,
            counters: FabricCounters::default(),
            rng,
            trace: TraceHandle::disabled(),
            scratch_ports: Vec::new(),
            scratch_commands: Vec::new(),
        }
    }

    /// Installs a trace sink on the fabric model and the simulator kernel.
    /// The fabric emits [`TraceEvent::Pi5Emitted`],
    /// [`TraceEvent::DeviceActivated`] and [`TraceEvent::DeviceDeactivated`];
    /// the kernel samples queue depth every `queue_sample_every` processed
    /// events (0 disables sampling). Pass the same handle to
    /// `FmConfig::trace` so manager-side events land in the same stream.
    pub fn set_trace(&mut self, trace: TraceHandle, queue_sample_every: u64) {
        self.sim.set_trace(trace.clone(), queue_sample_every);
        self.trace = trace;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Model parameters.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Packet accounting.
    pub fn counters(&self) -> &FabricCounters {
        &self.counters
    }

    /// Total simulator events processed so far (arrivals, deliveries,
    /// serializer retries, credit returns, timers, …). The `stress` CLI
    /// mode divides this by wall time for an events/sec throughput
    /// figure.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// General information of a device.
    pub fn device_info(&self, dev: DevId) -> &DeviceInfo {
        &self.devices[dev.idx()].info
    }

    /// The live configuration space of a device (harness/bootstrap use;
    /// the FM reads it over the wire).
    pub fn config_space(&self, dev: DevId) -> &asi_proto::ConfigSpace {
        &self.devices[dev.idx()].config
    }

    /// Whether a device is powered.
    pub fn is_active(&self, dev: DevId) -> bool {
        self.devices[dev.idx()].active
    }

    /// State of `(dev, port)`.
    pub fn port_state(&self, dev: DevId, port: u8) -> PortState {
        self.devices[dev.idx()].ports[usize::from(port)].state
    }

    /// The device ids of all active devices reachable from `start` over
    /// active links (ground truth used to validate discovery results).
    pub fn active_reachable(&self, start: DevId) -> Vec<DevId> {
        let mut seen = vec![false; self.devices.len()];
        let mut out = Vec::new();
        if !self.devices[start.idx()].active {
            return out;
        }
        let mut queue = VecDeque::new();
        seen[start.idx()] = true;
        queue.push_back(start);
        while let Some(d) = queue.pop_front() {
            out.push(d);
            for port in &self.devices[d.idx()].ports {
                if port.state != PortState::Active {
                    continue;
                }
                if let Some((pd, _)) = port.peer {
                    if self.devices[pd.idx()].active && !seen[pd.idx()] {
                        seen[pd.idx()] = true;
                        queue.push_back(pd);
                    }
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Wiring & control
    // ------------------------------------------------------------------

    /// Sets the FM-election priority advertised by an endpoint.
    pub fn set_fm_priority(&mut self, dev: DevId, priority: u8) {
        let d = &mut self.devices[dev.idx()];
        d.info.fm_priority = priority;
        d.config = asi_proto::ConfigSpace::new(d.info);
    }

    /// Installs a management agent on an endpoint.
    ///
    /// # Panics
    /// Panics if `dev` is a switch.
    pub fn set_agent(&mut self, dev: DevId, agent: Box<dyn FabricAgent>) {
        let d = &mut self.devices[dev.idx()];
        assert_eq!(
            d.info.device_type,
            DeviceType::Endpoint,
            "agents attach to endpoints"
        );
        d.agent = Some(AgentSlot {
            agent,
            queue: VecDeque::new(),
            busy: false,
        });
    }

    /// Borrow an installed agent downcast to its concrete type.
    pub fn agent_as<T: 'static>(&self, dev: DevId) -> Option<&T> {
        self.devices[dev.idx()]
            .agent
            .as_ref()
            .and_then(|s| s.agent.as_any().downcast_ref())
    }

    /// Mutably borrow an installed agent downcast to its concrete type.
    pub fn agent_as_mut<T: 'static>(&mut self, dev: DevId) -> Option<&mut T> {
        self.devices[dev.idx()]
            .agent
            .as_mut()
            .and_then(|s| s.agent.as_any_mut().downcast_mut())
    }

    /// Arms an agent timer from outside (e.g. the harness kicking off
    /// discovery at t=0).
    pub fn schedule_agent_timer(&mut self, dev: DevId, delay: SimDuration, token: u64) {
        self.sim.schedule_after(delay, Event::Timer { dev, token });
    }

    /// Configures the PI-5 reporting route of a device.
    pub fn set_fm_route(&mut self, dev: DevId, route: FmRoute) {
        self.devices[dev.idx()].fm_route = Some(route);
    }

    /// Removes all PI-5 reporting routes (e.g. before re-configuration).
    pub fn clear_fm_routes(&mut self) {
        for d in &mut self.devices {
            d.fm_route = None;
        }
    }

    /// Schedules a device power-up.
    pub fn schedule_activate(&mut self, dev: DevId, after: SimDuration) {
        self.sim.schedule_after(after, Event::Activate { dev });
    }

    /// Schedules a device removal.
    pub fn schedule_deactivate(&mut self, dev: DevId, after: SimDuration) {
        self.sim.schedule_after(after, Event::Deactivate { dev });
    }

    /// Activates every device `stagger` apart (transient bring-up).
    pub fn activate_all(&mut self, stagger: SimDuration) {
        for i in 0..self.devices.len() {
            self.schedule_activate(DevId(i as u32), stagger * i as u64);
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Processes a single event. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        match self.sim.next_event() {
            Some(fired) => {
                self.dispatch(fired.event);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Runs until `deadline` (events after it remain pending).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(fired) = self.sim.next_event_until(deadline) {
            self.dispatch(fired.event);
        }
    }

    /// Caps total processed events (test guard against feedback storms).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.sim.set_event_limit(limit);
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Arrive { dev, port, packet } => self.on_arrive(dev, port, packet),
            Event::Deliver { dev, port, packet } => self.on_deliver(dev, port, packet),
            Event::TryTx { dev, port } => self.on_try_tx(dev, port),
            Event::CreditReturn {
                dev,
                port,
                class,
                amount,
            } => {
                let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                p.peer_credits[class.idx()] += amount;
                self.pump(dev, port);
            }
            Event::AgentDone { dev } => self.on_agent_done(dev),
            Event::IngressDone { dev } => self.on_ingress_done(dev),
            Event::ResponderDone { dev } => self.on_responder_done(dev),
            Event::Timer { dev, token } => self.on_timer(dev, token),
            Event::PortTrained { dev, port } => self.on_port_trained(dev, port),
            Event::Activate { dev } => self.on_activate(dev),
            Event::Deactivate { dev } => self.on_deactivate(dev),
            Event::FaultLinkDown {
                dev,
                port,
                down_for,
            } => self.on_fault_link_down(dev, port, down_for),
            Event::FaultLinkUp { dev, port } => self.on_fault_link_up(dev, port),
            Event::FaultDeviceHang { dev, duration } => self.on_fault_device_hang(dev, duration),
            Event::FaultDeviceSlow {
                dev,
                factor,
                duration,
            } => self.on_fault_device_slow(dev, factor, duration),
        }
    }

    fn on_arrive(&mut self, dev: DevId, port: u8, mut packet: Box<Packet>) {
        let now = self.sim.now();
        let d = &self.devices[dev.idx()];
        if !d.active || d.ports[usize::from(port)].state != PortState::Active {
            self.counters.dropped_inactive += 1;
            return;
        }
        if matches!(packet.payload, Payload::Mcast { .. }) {
            self.on_arrive_mcast(dev, port, packet);
            return;
        }
        let cursor = TurnCursor {
            pointer: packet.header.turn_pointer,
            direction: packet.header.direction,
        };
        if cursor.exhausted(&packet.header.pool) {
            // This device is the destination: wait for the tail.
            let remaining = packet
                .wire_size()
                .saturating_sub(packet.header.wire_size() + 4);
            let at = now + self.config.tx_time(remaining);
            self.sim
                .schedule_at(at, Event::Deliver { dev, port, packet });
            return;
        }
        if d.info.device_type != DeviceType::Switch {
            // Turns left but nowhere to go.
            self.counters.dropped_bad_route += 1;
            self.release_origin_now(dev, port, &packet);
            return;
        }
        let ports = d.info.port_count as u8;
        let width = turn_width(ports);
        let egress = match cursor.take_turn(&packet.header.pool, width) {
            Ok((turn, next)) => {
                packet.header.turn_pointer = next.pointer;
                match packet.header.direction {
                    asi_proto::Direction::Forward => apply_forward(port, turn, ports),
                    asi_proto::Direction::Backward => apply_backward(port, turn, ports),
                }
            }
            Err(_) => {
                self.counters.dropped_bad_route += 1;
                self.release_origin_now(dev, port, &packet);
                return;
            }
        };
        if egress == port {
            self.counters.dropped_bad_route += 1;
            self.release_origin_now(dev, port, &packet);
            return;
        }
        self.counters.forwarded += 1;
        let origin = self.origin_of(dev, port, &packet);
        let ready = now + self.config.switch_latency;
        self.enqueue_out(
            dev,
            egress,
            OutEntry {
                ready,
                packet,
                origin,
            },
        );
    }

    /// Multicast forwarding: switches replicate along their configured
    /// group mask (a spanning tree installed by the FM's multicast group
    /// management); member endpoints consume.
    fn on_arrive_mcast(&mut self, dev: DevId, port: u8, packet: Box<Packet>) {
        let now = self.sim.now();
        let Payload::Mcast { group, len, hops } = packet.payload else {
            unreachable!("caller checked");
        };
        let d = &self.devices[dev.idx()];
        match d.info.device_type {
            DeviceType::Switch => {
                // The input buffer is freed as soon as the replicas are
                // copied to the output queues.
                self.release_origin_now(dev, port, &packet);
                if hops == 0 {
                    // Loop guard tripped: a misconfigured (cyclic) tree.
                    self.counters.dropped_bad_route += 1;
                    return;
                }
                let mask = self.devices[dev.idx()].config.mcast_entry(group);
                let nports = self.devices[dev.idx()].ports.len() as u8;
                let replica = Box::new(Packet::new(
                    packet.header.clone(),
                    Payload::Mcast {
                        group,
                        len,
                        hops: hops - 1,
                    },
                ));
                let mut replicated = false;
                for p in 0..nports.min(32) {
                    if p == port || (mask >> p) & 1 == 0 {
                        continue;
                    }
                    replicated = true;
                    self.counters.forwarded += 1;
                    self.enqueue_out(
                        dev,
                        p,
                        OutEntry {
                            ready: now + self.config.switch_latency,
                            packet: replica.clone(),
                            origin: None,
                        },
                    );
                }
                if !replicated {
                    // Arrived at a switch with no onward branches: the
                    // tree does not point anywhere from here.
                    self.counters.dropped_bad_route += 1;
                }
            }
            DeviceType::Endpoint => {
                if self.devices[dev.idx()].config.mcast_entry(group) != 0 {
                    let remaining = packet
                        .wire_size()
                        .saturating_sub(packet.header.wire_size() + 4);
                    let at = now + self.config.tx_time(remaining);
                    self.sim
                        .schedule_at(at, Event::Deliver { dev, port, packet });
                } else {
                    // Not a member: the NIC filter discards it.
                    self.release_origin_now(dev, port, &packet);
                }
            }
        }
    }

    /// Input-buffer release record for a packet that arrived at
    /// `(dev, port)` from a live upstream hop.
    fn origin_of(&self, dev: DevId, port: u8, packet: &Packet) -> Option<CreditOrigin> {
        if !self.config.flow_control {
            return None;
        }
        let peer = self.devices[dev.idx()].ports[usize::from(port)].peer?;
        Some(CreditOrigin {
            dev: peer.0,
            port: peer.1,
            class: CreditClass::of(packet),
            amount: self.config.credits_for(packet.wire_size()),
        })
    }

    fn release_origin_now(&mut self, dev: DevId, port: u8, packet: &Packet) {
        if let Some(origin) = self.origin_of(dev, port, packet) {
            self.schedule_credit_return(origin);
        }
    }

    fn schedule_credit_return(&mut self, origin: CreditOrigin) {
        // Only credit live upstream transmitters.
        let up = &self.devices[origin.dev.idx()];
        if !up.active {
            return;
        }
        self.sim.schedule_after(
            self.config.propagation,
            Event::CreditReturn {
                dev: origin.dev,
                port: origin.port,
                class: origin.class,
                amount: origin.amount,
            },
        );
    }

    fn enqueue_out(&mut self, dev: DevId, port: u8, entry: OutEntry) {
        {
            let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
            match CreditClass::of(&entry.packet) {
                CreditClass::Mgmt => p.mgmt_q.push_back(entry),
                CreditClass::Data if entry.packet.header.oo => p.bypass_q.push_back(entry),
                CreditClass::Data => p.data_q.push_back(entry),
            }
        }
        self.pump(dev, port);
    }

    /// A [`Event::TryTx`] wakeup fired. Only the wakeup recorded in
    /// `try_tx_at` pumps; earlier-armed duplicates that were superseded
    /// by a sooner wakeup are dropped here.
    fn on_try_tx(&mut self, dev: DevId, port: u8) {
        let now = self.sim.now();
        let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
        if p.try_tx_at != Some(now) {
            return;
        }
        p.try_tx_at = None;
        self.pump(dev, port);
    }

    /// Attempts to start transmissions on `(dev, port)`.
    fn pump(&mut self, dev: DevId, port: u8) {
        let now = self.sim.now();
        // Drop everything if the port is unusable.
        let usable = {
            let d = &self.devices[dev.idx()];
            d.active && d.ports[usize::from(port)].state == PortState::Active
        };
        if !usable {
            self.drain_port(dev, port);
            return;
        }

        enum Action {
            Idle,
            Wait(SimTime),
            Stall,
            Oversized(CreditClass),
            Tx(CreditClass),
        }
        loop {
            let action = {
                let p = &self.devices[dev.idx()].ports[usize::from(port)];
                if p.queued() == 0 {
                    Action::Idle
                } else if p.busy_until > now {
                    Action::Wait(p.busy_until)
                } else {
                    // Management first, then the BVC bypass queue, then
                    // ordered data.
                    let (class, entry) = match (p.mgmt_q.front(), p.bypass_q.front()) {
                        (Some(e), _) => (CreditClass::Mgmt, e),
                        (None, Some(e)) => (CreditClass::Data, e),
                        (None, None) => (CreditClass::Data, p.data_q.front().expect("queued > 0")),
                    };
                    // Source injection rate limiting applies to data
                    // leaving an endpoint.
                    let is_endpoint =
                        self.devices[dev.idx()].info.device_type == DeviceType::Endpoint;
                    let rate_gate = if class == CreditClass::Data
                        && is_endpoint
                        && self.config.injection_rate_limit.is_some()
                        && p.rate_next > now
                    {
                        Some(p.rate_next)
                    } else {
                        None
                    };
                    if let Some(at) = rate_gate {
                        Action::Wait(at)
                    } else if entry.ready > now {
                        Action::Wait(entry.ready)
                    } else {
                        let cost = self.config.credits_for(entry.packet.wire_size());
                        let capacity = match class {
                            CreditClass::Mgmt => self.config.mgmt_credits,
                            CreditClass::Data => self.config.data_credits,
                        };
                        if self.config.flow_control && cost > capacity {
                            // The packet can never fit the downstream
                            // buffer: drop instead of stalling forever.
                            Action::Oversized(class)
                        } else if self.config.flow_control && p.peer_credits[class.idx()] < cost {
                            Action::Stall
                        } else {
                            Action::Tx(class)
                        }
                    }
                }
            };
            match action {
                Action::Idle => return,
                Action::Wait(at) => {
                    let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                    if p.try_tx_at.is_none_or(|t| t > at) {
                        p.try_tx_at = Some(at);
                        self.sim.schedule_at(at, Event::TryTx { dev, port });
                    }
                    return;
                }
                Action::Stall => {
                    // A CreditReturn will re-pump this port.
                    self.counters.credit_stalls += 1;
                    return;
                }
                Action::Oversized(class) => {
                    let entry = {
                        let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                        match class {
                            CreditClass::Mgmt => p.mgmt_q.pop_front(),
                            CreditClass::Data => p.data_q.pop_front(),
                        }
                        .expect("head inspected above")
                    };
                    self.counters.dropped_bad_route += 1;
                    if let Some(origin) = entry.origin {
                        self.schedule_credit_return(origin);
                    }
                }
                Action::Tx(class) => {
                    let (entry, peer, size) = {
                        let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                        let entry = match class {
                            CreditClass::Mgmt => p.mgmt_q.pop_front(),
                            CreditClass::Data => {
                                p.bypass_q.pop_front().or_else(|| p.data_q.pop_front())
                            }
                        }
                        .expect("head inspected above");
                        let size = entry.packet.wire_size();
                        (entry, p.peer, size)
                    };
                    let Some((peer_dev, peer_port)) = peer else {
                        // Dangling port: count as link-down drop.
                        self.counters.dropped_link_down += 1;
                        if let Some(origin) = entry.origin {
                            self.schedule_credit_return(origin);
                        }
                        continue;
                    };
                    let cost = self.config.credits_for(size);
                    let tx = self.config.tx_time(size);
                    {
                        let is_endpoint =
                            self.devices[dev.idx()].info.device_type == DeviceType::Endpoint;
                        let rate_debit = match (class, self.config.injection_rate_limit) {
                            (CreditClass::Data, Some(rate)) if is_endpoint => {
                                Some(SimDuration::from_secs_f64(size as f64 / rate.max(1.0)))
                            }
                            _ => None,
                        };
                        let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                        if self.config.flow_control {
                            p.peer_credits[class.idx()] -= cost;
                        }
                        p.busy_until = now + tx;
                        if let Some(debit) = rate_debit {
                            p.rate_next = p.rate_next.max(now) + debit;
                        }
                    }
                    match class {
                        CreditClass::Mgmt => self.counters.mgmt_bytes += size as u64,
                        CreditClass::Data => self.counters.data_bytes += size as u64,
                    }
                    // Injected loss: the receiver's CRC discards the
                    // packet. Its input buffer is freed immediately, so
                    // the consumed credits bounce straight back.
                    let lost = self.draw_loss(dev, port);
                    if lost {
                        self.counters.dropped_corrupted += 1;
                        self.trace.emit(now, || TraceEvent::FaultPacketLost {
                            device: dev.0,
                            port: u16::from(port),
                        });
                        if self.config.flow_control {
                            self.sim.schedule_after(
                                self.config.propagation * 2,
                                Event::CreditReturn {
                                    dev,
                                    port,
                                    class,
                                    amount: cost,
                                },
                            );
                        }
                    } else {
                        // Header arrival downstream (virtual cut-through).
                        let header_bytes = entry.packet.header.wire_size() + 4;
                        let arrive_at =
                            now + self.config.tx_time(header_bytes) + self.config.propagation;
                        self.sim.schedule_at(
                            arrive_at,
                            Event::Arrive {
                                dev: peer_dev,
                                port: peer_port,
                                packet: entry.packet,
                            },
                        );
                    }
                    // The packet has left this device: release the input
                    // buffer it occupied upstream.
                    if let Some(origin) = entry.origin {
                        self.schedule_credit_return(origin);
                    }
                }
            }
        }
    }

    /// Draws the loss decision for one transmission on `(dev, port)`,
    /// advancing the link's Gilbert–Elliott state if the model is
    /// bursty. Zero probabilities short-circuit before consuming a
    /// random draw where the decision is already known, and a draw
    /// never changes scheduling — so a lossless model replays the
    /// loss-free run byte-for-byte.
    fn draw_loss(&mut self, dev: DevId, port: u8) -> bool {
        match self.config.faults.loss {
            LossModel::None => false,
            LossModel::Uniform { p } => p > 0.0 && self.rng.gen_bool(p),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
            } => {
                let was_bad = self.devices[dev.idx()].ports[usize::from(port)].ge_bad;
                let flip_p = if was_bad { p_exit_bad } else { p_enter_bad };
                let now_bad = if flip_p > 0.0 && self.rng.gen_bool(flip_p) {
                    !was_bad
                } else {
                    was_bad
                };
                self.devices[dev.idx()].ports[usize::from(port)].ge_bad = now_bad;
                let p = if now_bad { loss_bad } else { loss_good };
                p > 0.0 && self.rng.gen_bool(p)
            }
        }
    }

    fn drain_port(&mut self, dev: DevId, port: u8) {
        // Pop one entry at a time instead of collecting into an interim
        // Vec: this runs on every pump() of a downed port.
        loop {
            let entry = {
                let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                p.mgmt_q
                    .pop_front()
                    .or_else(|| p.bypass_q.pop_front())
                    .or_else(|| p.data_q.pop_front())
            };
            let Some(e) = entry else { break };
            self.counters.dropped_link_down += 1;
            if let Some(origin) = e.origin {
                self.schedule_credit_return(origin);
            }
        }
    }

    fn on_deliver(&mut self, dev: DevId, port: u8, packet: Box<Packet>) {
        let d = &self.devices[dev.idx()];
        if !d.active {
            self.counters.dropped_inactive += 1;
            return;
        }
        // The packet has been copied out of the input buffer: release it.
        self.release_origin_now(dev, port, &packet);

        let is_request = matches!(&packet.payload, Payload::Pi4(p) if p.is_request());
        let is_completion = !is_request && matches!(packet.payload, Payload::Pi4(_));
        if is_completion {
            // Injected completion corruption: the end-to-end CRC catches
            // the mangled payload at delivery, so the completion is
            // discarded whole and the requester times out (a silently
            // garbled completion would leave a permanent hole instead).
            let p_corrupt = self.config.faults.corrupt_completions;
            if p_corrupt > 0.0 && self.rng.gen_bool(p_corrupt) {
                self.counters.dropped_corrupted += 1;
                self.counters.completions_corrupted += 1;
                self.trace
                    .emit(self.sim.now(), || TraceEvent::FaultCompletionCorrupted {
                        device: dev.0,
                    });
                return;
            }
        }
        self.counters.delivered += 1;
        if is_request {
            self.responder_enqueue(dev, port, packet);
        } else {
            if is_completion {
                // Injected duplication: the requester sees the completion
                // twice; the second copy carries a since-retired req_id
                // and must be ignored upstream.
                let p_dup = self.config.faults.duplicate_completions;
                if p_dup > 0.0 && self.rng.gen_bool(p_dup) {
                    self.counters.completions_duplicated += 1;
                    self.trace
                        .emit(self.sim.now(), || TraceEvent::FaultCompletionDuplicated {
                            device: dev.0,
                        });
                    self.ingress_enqueue(dev, packet.clone());
                }
            }
            self.ingress_enqueue(dev, packet);
        }
    }

    /// Inbound management pipe: one device-time per received packet, then
    /// the agent queue.
    fn ingress_enqueue(&mut self, dev: DevId, packet: Box<Packet>) {
        let busy = {
            let pipe = &mut self.devices[dev.idx()].ingress;
            pipe.queue.push_back(packet);
            pipe.busy
        };
        if !busy {
            self.devices[dev.idx()].ingress.busy = true;
            let t = self.config.effective_device_time();
            self.sim.schedule_after(t, Event::IngressDone { dev });
        }
    }

    fn on_ingress_done(&mut self, dev: DevId) {
        if !self.devices[dev.idx()].active {
            return;
        }
        let packet = self.devices[dev.idx()].ingress.queue.pop_front();
        let Some(packet) = packet else {
            self.devices[dev.idx()].ingress.busy = false;
            return;
        };
        self.agent_enqueue(dev, packet);
        if self.devices[dev.idx()].ingress.queue.is_empty() {
            self.devices[dev.idx()].ingress.busy = false;
        } else {
            let t = self.config.effective_device_time();
            self.sim.schedule_after(t, Event::IngressDone { dev });
        }
    }

    // ---------------- PI-4 responder ----------------

    /// Per-request responder servicing time, including any active
    /// slow-device fault.
    fn responder_service_time(&self, dev: DevId) -> SimDuration {
        let base = self.config.effective_device_time();
        let d = &self.devices[dev.idx()];
        if self.sim.now() < d.slow_until {
            base.scaled(d.slow_factor)
        } else {
            base
        }
    }

    fn responder_enqueue(&mut self, dev: DevId, port: u8, packet: Box<Packet>) {
        let busy = {
            let r = &mut self.devices[dev.idx()].responder;
            r.queue.push_back((port, packet));
            r.busy
        };
        if !busy {
            self.devices[dev.idx()].responder.busy = true;
            let t = self.responder_service_time(dev);
            self.sim.schedule_after(t, Event::ResponderDone { dev });
        }
    }

    fn on_responder_done(&mut self, dev: DevId) {
        if !self.devices[dev.idx()].active {
            return;
        }
        // A hung responder holds every serviced request until the hang
        // ends; the pending completion (and the rest of the queue) is
        // deferred, not lost.
        let hang_until = self.devices[dev.idx()].hang_until;
        if self.sim.now() < hang_until {
            self.sim
                .schedule_at(hang_until, Event::ResponderDone { dev });
            return;
        }
        let item = self.devices[dev.idx()].responder.queue.pop_front();
        let Some((port, packet)) = item else {
            self.devices[dev.idx()].responder.busy = false;
            return;
        };
        let reply = self.service_pi4(dev, &packet);
        if let Some(reply) = reply {
            self.counters.injected += 1;
            self.enqueue_out(
                dev,
                port,
                OutEntry {
                    ready: self.sim.now(),
                    packet: Box::new(reply),
                    origin: None,
                },
            );
        }
        // Continue with the next request, if any.
        let more = !self.devices[dev.idx()].responder.queue.is_empty();
        if more {
            let t = self.responder_service_time(dev);
            self.sim.schedule_after(t, Event::ResponderDone { dev });
        } else {
            self.devices[dev.idx()].responder.busy = false;
        }
    }

    fn service_pi4(&mut self, dev: DevId, request: &Packet) -> Option<Packet> {
        let Payload::Pi4(pi4) = &request.payload else {
            return None;
        };
        let d = &mut self.devices[dev.idx()];
        let reply_payload = match pi4 {
            Pi4::ReadRequest {
                req_id,
                addr,
                dwords,
            } => match d.config.read(*addr, *dwords) {
                Ok(data) => Pi4::ReadCompletion {
                    req_id: *req_id,
                    data,
                },
                Err(status) => Pi4::ReadError {
                    req_id: *req_id,
                    status,
                },
            },
            Pi4::WriteRequest { req_id, addr, data } => match d.config.write(*addr, data) {
                Ok(()) => Pi4::WriteCompletion { req_id: *req_id },
                Err(status) => Pi4::ReadError {
                    req_id: *req_id,
                    status,
                },
            },
            _ => return None,
        };
        let header = request.header.reply(ProtocolInterface::DeviceManagement);
        Some(Packet::new(header, Payload::Pi4(reply_payload)))
    }

    // ---------------- endpoint agents ----------------

    fn agent_enqueue(&mut self, dev: DevId, packet: Box<Packet>) {
        let d = &mut self.devices[dev.idx()];
        let Some(slot) = d.agent.as_mut() else {
            // No consumer: a completion for a dead manager, or data to a
            // plain endpoint. Count as a bad route so tests notice.
            self.counters.dropped_bad_route += 1;
            return;
        };
        slot.queue.push_back(packet);
        if !slot.busy {
            slot.busy = true;
            let t = slot
                .agent
                .processing_time(slot.queue.front().expect("just pushed"));
            self.sim.schedule_after(t, Event::AgentDone { dev });
        }
    }

    fn on_agent_done(&mut self, dev: DevId) {
        if !self.devices[dev.idx()].active {
            return;
        }
        let mut ctx = self.make_ctx(dev);
        let next_delay = {
            let d = &mut self.devices[dev.idx()];
            let Some(slot) = d.agent.as_mut() else { return };
            let Some(packet) = slot.queue.pop_front() else {
                slot.busy = false;
                return;
            };
            slot.agent.on_packet(&mut ctx, *packet);
            match slot.queue.front() {
                Some(next) => {
                    let t = slot.agent.processing_time(next);
                    Some(t)
                }
                None => {
                    slot.busy = false;
                    None
                }
            }
        };
        if let Some(t) = next_delay {
            self.sim.schedule_after(t, Event::AgentDone { dev });
        }
        self.finish_ctx(dev, ctx);
    }

    fn on_timer(&mut self, dev: DevId, token: u64) {
        if !self.devices[dev.idx()].active {
            return;
        }
        let mut ctx = self.make_ctx(dev);
        {
            let d = &mut self.devices[dev.idx()];
            let Some(slot) = d.agent.as_mut() else { return };
            slot.agent.on_timer(&mut ctx, token);
        }
        self.finish_ctx(dev, ctx);
    }

    /// Executes the commands an agent queued on `ctx`, then reclaims the
    /// context's buffers for the next callback.
    fn finish_ctx(&mut self, dev: DevId, mut ctx: AgentCtx) {
        let mut commands = ctx.take_commands();
        self.scratch_ports = std::mem::take(&mut ctx.host_ports);
        for cmd in commands.drain(..) {
            match cmd {
                AgentCommand::Send { port, packet } => {
                    self.counters.injected += 1;
                    self.enqueue_out(
                        dev,
                        port,
                        OutEntry {
                            ready: self.sim.now(),
                            packet: Box::new(packet),
                            origin: None,
                        },
                    );
                }
                AgentCommand::Timer { delay, token } => {
                    self.sim.schedule_after(delay, Event::Timer { dev, token });
                }
            }
        }
        self.scratch_commands = commands;
    }

    /// Builds an agent callback context with a snapshot of the host
    /// endpoint's own configuration, reusing the fabric's scratch buffers
    /// (returned by [`Fabric::finish_ctx`]) to avoid per-callback
    /// allocation.
    fn make_ctx(&mut self, dev: DevId) -> AgentCtx {
        let mut ports = std::mem::take(&mut self.scratch_ports);
        ports.clear();
        let d = &self.devices[dev.idx()];
        for p in 0..d.info.port_count {
            ports.push(*d.config.port(p).expect("port in range"));
        }
        let mut ctx = AgentCtx::new(self.sim.now(), dev, d.info, ports);
        ctx.recycle_commands(std::mem::take(&mut self.scratch_commands));
        ctx
    }

    // ---------------- activation & port state ----------------

    fn on_activate(&mut self, dev: DevId) {
        if self.devices[dev.idx()].active {
            return;
        }
        self.devices[dev.idx()].active = true;
        self.trace
            .emit(self.sim.now(), || TraceEvent::DeviceActivated {
                device: dev.0,
            });
        // Train every link whose peer is already active.
        let nports = self.devices[dev.idx()].ports.len() as u8;
        for port in 0..nports {
            let Some((peer_dev, peer_port)) = self.devices[dev.idx()].ports[usize::from(port)].peer
            else {
                continue;
            };
            if !self.devices[peer_dev.idx()].active {
                continue;
            }
            self.begin_training(dev, port);
            self.begin_training(peer_dev, peer_port);
        }
    }

    fn begin_training(&mut self, dev: DevId, port: u8) {
        let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
        if p.state != PortState::Down {
            return;
        }
        p.state = PortState::Training;
        self.sync_port_config(dev, port);
        self.sim
            .schedule_after(self.config.train_time, Event::PortTrained { dev, port });
    }

    fn on_port_trained(&mut self, dev: DevId, port: u8) {
        {
            let d = &mut self.devices[dev.idx()];
            if !d.active {
                return;
            }
            let p = &mut d.ports[usize::from(port)];
            if p.state != PortState::Training {
                return;
            }
            // The peer may have been deactivated mid-training.
            if let Some((peer_dev, _)) = p.peer {
                if !self.devices[peer_dev.idx()].active {
                    self.devices[dev.idx()].ports[usize::from(port)].state = PortState::Down;
                    self.sync_port_config(dev, port);
                    return;
                }
            }
            let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
            p.state = PortState::Active;
            // Fresh link: peer buffers are empty.
            p.peer_credits = [self.config.mgmt_credits, self.config.data_credits];
            p.busy_until = self.sim.now();
        }
        self.sync_port_config(dev, port);
        self.notify_port_change(dev, port, PortEvent::PortUp);
        self.pump(dev, port);
    }

    fn on_deactivate(&mut self, dev: DevId) {
        if !self.devices[dev.idx()].active {
            return;
        }
        self.devices[dev.idx()].active = false;
        self.trace
            .emit(self.sim.now(), || TraceEvent::DeviceDeactivated {
                device: dev.0,
            });
        let nports = self.devices[dev.idx()].ports.len() as u8;
        for port in 0..nports {
            // Own side: silent death.
            {
                let p = &mut self.devices[dev.idx()].ports[usize::from(port)];
                p.state = PortState::Down;
            }
            self.sync_port_config(dev, port);
            self.drain_port(dev, port);
            // Peer side: carrier loss.
            let peer = self.devices[dev.idx()].ports[usize::from(port)].peer;
            if let Some((peer_dev, peer_port)) = peer {
                let peer_active = self.devices[peer_dev.idx()].active;
                let peer_state = self.devices[peer_dev.idx()].ports[usize::from(peer_port)].state;
                if peer_active && peer_state != PortState::Down {
                    self.devices[peer_dev.idx()].ports[usize::from(peer_port)].state =
                        PortState::Down;
                    self.sync_port_config(peer_dev, peer_port);
                    self.drain_port(peer_dev, peer_port);
                    self.notify_port_change(peer_dev, peer_port, PortEvent::PortDown);
                }
            }
        }
        // Clear local consumers; queued packets are lost with the device.
        let d = &mut self.devices[dev.idx()];
        let mut lost = d.responder.queue.len() + d.ingress.queue.len();
        d.responder.queue.clear();
        d.responder.busy = false;
        d.ingress.queue.clear();
        d.ingress.busy = false;
        if let Some(slot) = d.agent.as_mut() {
            lost += slot.queue.len();
            slot.queue.clear();
            slot.busy = false;
        }
        self.counters.dropped_inactive += lost as u64;
    }

    fn sync_port_config(&mut self, dev: DevId, port: u8) {
        let d = &mut self.devices[dev.idx()];
        let p = &d.ports[usize::from(port)];
        let state = p.state;
        // The partner's port number is exchanged during link training.
        let peer_port = match (state, p.peer) {
            (PortState::Active, Some((_, pp))) => pp,
            _ => 0,
        };
        d.config.set_port(
            u16::from(port),
            PortInfo {
                state,
                link_width: 1,
                link_speed: 10,
                peer_port,
            },
        );
    }

    /// Fires the local agent's port-event hook and emits PI-5 toward the
    /// FM if a reporting route is configured.
    fn notify_port_change(&mut self, dev: DevId, port: u8, event: PortEvent) {
        // Local agent callback (e.g. the FM watching its own link).
        let has_agent = self.devices[dev.idx()].agent.is_some();
        if has_agent {
            let mut ctx = self.make_ctx(dev);
            {
                let d = &mut self.devices[dev.idx()];
                let slot = d.agent.as_mut().expect("checked");
                slot.agent.on_port_event(&mut ctx, port, event);
            }
            self.finish_ctx(dev, ctx);
        }
        // PI-5 report.
        let (route, dsn, seq) = {
            let d = &mut self.devices[dev.idx()];
            let Some(route) = d.fm_route.clone() else {
                return;
            };
            d.pi5_seq += 1;
            (route, d.info.dsn, d.pi5_seq)
        };
        // Don't report through the port that just died.
        if route.egress == port && event == PortEvent::PortDown {
            return;
        }
        let header =
            RouteHeader::forward(ProtocolInterface::EventReporting, MANAGEMENT_TC, route.pool);
        let packet = Packet::new(
            header,
            Payload::Pi5(Pi5 {
                reporter_dsn: dsn,
                port,
                event,
                sequence: seq,
            }),
        );
        self.counters.pi5_emitted += 1;
        self.counters.injected += 1;
        let up = event == PortEvent::PortUp;
        self.trace.emit(self.sim.now(), || TraceEvent::Pi5Emitted {
            dsn,
            port: u16::from(port),
            up,
        });
        self.enqueue_out(
            dev,
            route.egress,
            OutEntry {
                ready: self.sim.now(),
                packet: Box::new(packet),
                origin: None,
            },
        );
    }

    // ---------------- injected faults ----------------

    /// True when a scheduled fault names a `(dev, port)` that exists.
    /// Plans are user data, so out-of-range targets are ignored rather
    /// than crashing the run.
    fn fault_link_exists(&self, dev: DevId, port: u8) -> bool {
        dev.idx() < self.devices.len() && usize::from(port) < self.devices[dev.idx()].ports.len()
    }

    /// A link flap's down edge: both ends lose carrier and drain their
    /// queues, and — unlike [`Fabric::on_deactivate`], where the dying
    /// device is silent — *both* sides report a PI-5 `PortDown`, since
    /// both devices stay alive. The up edge is scheduled `down_for`
    /// later.
    fn on_fault_link_down(&mut self, dev: DevId, port: u8, down_for: SimDuration) {
        if !self.fault_link_exists(dev, port) {
            return;
        }
        let Some((peer_dev, peer_port)) = self.devices[dev.idx()].ports[usize::from(port)].peer
        else {
            return;
        };
        self.counters.link_flaps += 1;
        self.trace
            .emit(self.sim.now(), || TraceEvent::FaultLinkDown {
                device: dev.0,
                port: u16::from(port),
            });
        for (d, p) in [(dev, port), (peer_dev, peer_port)] {
            let alive = self.devices[d.idx()].active;
            let state = self.devices[d.idx()].ports[usize::from(p)].state;
            if state != PortState::Down {
                self.devices[d.idx()].ports[usize::from(p)].state = PortState::Down;
                self.sync_port_config(d, p);
                self.drain_port(d, p);
                if alive {
                    self.notify_port_change(d, p, PortEvent::PortDown);
                }
            }
        }
        self.sim
            .schedule_after(down_for, Event::FaultLinkUp { dev, port });
    }

    /// A link flap's up edge: retrain both ends (training only starts
    /// from `Down`, so a link that was re-activated meanwhile is left
    /// alone). The resulting `PortTrained` → PI-5 `PortUp` path is the
    /// same one device activation uses.
    fn on_fault_link_up(&mut self, dev: DevId, port: u8) {
        if !self.fault_link_exists(dev, port) {
            return;
        }
        let Some((peer_dev, peer_port)) = self.devices[dev.idx()].ports[usize::from(port)].peer
        else {
            return;
        };
        if !self.devices[dev.idx()].active || !self.devices[peer_dev.idx()].active {
            return;
        }
        self.trace.emit(self.sim.now(), || TraceEvent::FaultLinkUp {
            device: dev.0,
            port: u16::from(port),
        });
        self.begin_training(dev, port);
        self.begin_training(peer_dev, peer_port);
    }

    fn on_fault_device_hang(&mut self, dev: DevId, duration: SimDuration) {
        if dev.idx() >= self.devices.len() {
            return;
        }
        let until = self.sim.now() + duration;
        let d = &mut self.devices[dev.idx()];
        if until > d.hang_until {
            d.hang_until = until;
        }
        self.trace
            .emit(self.sim.now(), || TraceEvent::FaultDeviceHang {
                device: dev.0,
            });
    }

    fn on_fault_device_slow(&mut self, dev: DevId, factor: f64, duration: SimDuration) {
        if dev.idx() >= self.devices.len() {
            return;
        }
        let until = self.sim.now() + duration;
        let d = &mut self.devices[dev.idx()];
        d.slow_until = until;
        d.slow_factor = factor;
        self.trace
            .emit(self.sim.now(), || TraceEvent::FaultDeviceSlow {
                device: dev.0,
            });
    }
}
