//! The fabric manager's topology database: everything discovery learns.
//!
//! Keyed by DSN (device serial number), which is how the FM recognizes a
//! device it has already reached through a different path (the dedup step
//! in the paper's Fig. 2 flow chart).

use asi_proto::{turn_for, turn_width, DeviceInfo, DeviceType, PortInfo, TurnError, TurnPool};
use std::collections::{HashMap, HashSet, VecDeque};

/// How the FM reaches a device: inject on `egress` (the FM endpoint's
/// port), follow `pool`, arrive at the device's `entry_port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceRoute {
    /// Egress port at the FM's endpoint.
    pub egress: u8,
    /// Turns for the switches along the path.
    pub pool: TurnPool,
    /// Port at which packets enter the target device.
    pub entry_port: u8,
    /// Switch hops from the FM.
    pub hops: u16,
}

/// A device record in the database.
#[derive(Clone, Debug)]
pub struct DbDevice {
    /// General information (from the first six baseline words).
    pub info: DeviceInfo,
    /// Route used to reach it.
    pub route: DeviceRoute,
    /// Per-port attributes; `None` until the port block has been read.
    pub ports: Vec<Option<PortInfo>>,
}

impl DbDevice {
    /// Number of active ports among those read so far.
    pub fn active_ports(&self) -> usize {
        self.ports
            .iter()
            .flatten()
            .filter(|p| p.state.is_active())
            .count()
    }

    /// True once every port block has been read.
    pub fn ports_complete(&self) -> bool {
        self.ports.iter().all(Option::is_some)
    }
}

/// Canonicalized link key.
fn link_key(a: (u64, u8), b: (u64, u8)) -> (u64, u8, u64, u8) {
    if a <= b {
        (a.0, a.1, b.0, b.1)
    } else {
        (b.0, b.1, a.0, a.1)
    }
}

/// The discovered topology.
#[derive(Clone, Debug, Default)]
pub struct TopologyDb {
    devices: HashMap<u64, DbDevice>,
    links: HashSet<(u64, u8, u64, u8)>,
    host_dsn: u64,
}

impl TopologyDb {
    /// Fresh database rooted at the FM's endpoint.
    pub fn new(host_dsn: u64) -> TopologyDb {
        TopologyDb {
            devices: HashMap::new(),
            links: HashSet::new(),
            host_dsn,
        }
    }

    /// DSN of the FM's endpoint.
    pub fn host_dsn(&self) -> u64 {
        self.host_dsn
    }

    /// Device count (including the host).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Link count.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// True if a DSN is already known.
    pub fn contains(&self, dsn: u64) -> bool {
        self.devices.contains_key(&dsn)
    }

    /// Looks up a device.
    pub fn device(&self, dsn: u64) -> Option<&DbDevice> {
        self.devices.get(&dsn)
    }

    /// Mutable lookup.
    pub fn device_mut(&mut self, dsn: u64) -> Option<&mut DbDevice> {
        self.devices.get_mut(&dsn)
    }

    /// Iterates all devices, in DSN order. Map iteration order is
    /// per-instance random, so anything user-visible (reports, traces,
    /// snapshots) must not see it.
    pub fn devices(&self) -> impl Iterator<Item = &DbDevice> {
        let mut v: Vec<&DbDevice> = self.devices.values().collect();
        v.sort_unstable_by_key(|d| d.info.dsn);
        v.into_iter()
    }

    /// Iterates all links, in canonical-key order.
    pub fn links(&self) -> impl Iterator<Item = ((u64, u8), (u64, u8))> + '_ {
        let mut v: Vec<_> = self.links.iter().copied().collect();
        v.sort_unstable();
        v.into_iter().map(|(a, ap, b, bp)| ((a, ap), (b, bp)))
    }

    /// DSNs of all discovered endpoints.
    pub fn endpoints(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .devices
            .values()
            .filter(|d| d.info.device_type == DeviceType::Endpoint)
            .map(|d| d.info.dsn)
            .collect();
        v.sort_unstable();
        v
    }

    /// DSNs of all discovered switches.
    pub fn switches(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .devices
            .values()
            .filter(|d| d.info.device_type == DeviceType::Switch)
            .map(|d| d.info.dsn)
            .collect();
        v.sort_unstable();
        v
    }

    /// Records a newly discovered device. Returns `false` (and leaves the
    /// record untouched) if the DSN was already present.
    pub fn insert_device(&mut self, info: DeviceInfo, route: DeviceRoute) -> bool {
        if self.devices.contains_key(&info.dsn) {
            return false;
        }
        let ports = vec![None; usize::from(info.port_count)];
        self.devices
            .insert(info.dsn, DbDevice { info, route, ports });
        true
    }

    /// Records a link. Idempotent; returns `true` if the link was new.
    pub fn add_link(&mut self, a: (u64, u8), b: (u64, u8)) -> bool {
        self.links.insert(link_key(a, b))
    }

    /// Stores a port block for a device.
    pub fn set_port(&mut self, dsn: u64, port: u16, info: PortInfo) {
        if let Some(d) = self.devices.get_mut(&dsn) {
            if let Some(slot) = d.ports.get_mut(usize::from(port)) {
                *slot = Some(info);
            }
        }
    }

    /// Removes one link. Returns `true` if it was present.
    pub fn remove_link(&mut self, a: (u64, u8), b: (u64, u8)) -> bool {
        self.links.remove(&link_key(a, b))
    }

    /// Removes a device and all links touching it. Returns `true` if it
    /// existed.
    pub fn remove_device(&mut self, dsn: u64) -> bool {
        let existed = self.devices.remove(&dsn).is_some();
        self.links.retain(|&(a, _, b, _)| a != dsn && b != dsn);
        existed
    }

    /// The neighbour recorded at `(dsn, port)`, if any.
    pub fn neighbor(&self, dsn: u64, port: u8) -> Option<(u64, u8)> {
        self.links.iter().find_map(|&(a, ap, b, bp)| {
            if (a, ap) == (dsn, port) {
                Some((b, bp))
            } else if (b, bp) == (dsn, port) {
                Some((a, ap))
            } else {
                None
            }
        })
    }

    /// Drops every device not reachable from the host over recorded links
    /// (used after removals). Returns the DSNs pruned.
    pub fn prune_unreachable(&mut self) -> Vec<u64> {
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(a, _, b, _) in &self.links {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut seen: HashSet<u64> = HashSet::new();
        let mut queue = VecDeque::new();
        if self.devices.contains_key(&self.host_dsn) {
            seen.insert(self.host_dsn);
            queue.push_back(self.host_dsn);
        }
        while let Some(d) = queue.pop_front() {
            for &n in adj.get(&d).into_iter().flatten() {
                if self.devices.contains_key(&n) && seen.insert(n) {
                    queue.push_back(n);
                }
            }
        }
        let mut doomed: Vec<u64> = self
            .devices
            .keys()
            .copied()
            .filter(|d| !seen.contains(d))
            .collect();
        doomed.sort_unstable();
        for d in &doomed {
            self.remove_device(*d);
        }
        doomed
    }

    /// Adjacency over the discovered links: `dsn -> sorted [(own port,
    /// neighbour, neighbour port)]`. Built once per BFS; the sort keeps
    /// neighbour exploration deterministic.
    fn adjacency(&self) -> HashMap<u64, Vec<(u8, u64, u8)>> {
        let mut adj: HashMap<u64, Vec<(u8, u64, u8)>> = HashMap::with_capacity(self.devices.len());
        for &(a, ap, b, bp) in &self.links {
            adj.entry(a).or_default().push((ap, b, bp));
            adj.entry(b).or_default().push((bp, a, ap));
        }
        for v in adj.values_mut() {
            v.sort_unstable();
        }
        adj
    }

    /// BFS parent tree rooted at `from`: `node -> (parent, parent's
    /// egress port, entry port at node)`.
    fn bfs_tree(
        &self,
        from: u64,
        adj: &HashMap<u64, Vec<(u8, u64, u8)>>,
    ) -> HashMap<u64, (u64, u8, u8)> {
        let mut prev: HashMap<u64, (u64, u8, u8)> = HashMap::with_capacity(self.devices.len());
        let mut queue = VecDeque::new();
        queue.push_back(from);
        let mut seen: HashSet<u64> = HashSet::with_capacity(self.devices.len());
        seen.insert(from);
        while let Some(n) = queue.pop_front() {
            for &(p, m, mp) in adj.get(&n).into_iter().flatten() {
                if self.contains(m) && seen.insert(m) {
                    prev.insert(m, (n, p, mp));
                    queue.push_back(m);
                }
            }
        }
        prev
    }

    /// The `from → to` chain of `(node, egress at node, entry at next)`
    /// recovered from a `from`-rooted BFS tree, or `None` when `to` is
    /// unreachable.
    fn chain_to(
        from: u64,
        to: u64,
        prev: &HashMap<u64, (u64, u8, u8)>,
    ) -> Option<Vec<(u64, u8, u8)>> {
        prev.get(&to)?;
        let mut chain: Vec<(u64, u8, u8)> = Vec::new();
        let mut cur = to;
        while cur != from {
            let &(parent, egress, entry) = prev.get(&cur)?;
            chain.push((parent, egress, entry));
            cur = parent;
        }
        chain.reverse();
        Some(chain)
    }

    /// Encodes the route along a forward chain (see [`Self::chain_to`]).
    fn route_of_chain(
        &self,
        chain: &[(u64, u8, u8)],
        pool_capacity: u16,
    ) -> Result<DeviceRoute, TurnError> {
        let egress = chain[0].1;
        let entry_port = chain.last().unwrap().2;
        let mut pool = TurnPool::with_capacity(pool_capacity);
        let mut hops = 0;
        for i in 1..chain.len() {
            let (switch_dsn, out, _) = chain[i];
            let ingress = chain[i - 1].2;
            let ports = self.devices[&switch_dsn].info.port_count as u8;
            let turn = turn_for(ingress, out, ports);
            pool.push_turn(turn, turn_width(ports))?;
            hops += 1;
        }
        Ok(DeviceRoute {
            egress,
            pool,
            entry_port,
            hops,
        })
    }

    /// Routes from `from` to every other reachable device, computed with
    /// a single BFS — the batched form of [`Self::route_between`], with
    /// identical per-target results (same deterministic tie-breaking) at
    /// O(devices + links) instead of one BFS per target. Targets whose
    /// path cannot be encoded map to the `TurnError`.
    pub fn routes_from(
        &self,
        from: u64,
        pool_capacity: u16,
    ) -> HashMap<u64, Result<DeviceRoute, TurnError>> {
        let mut out = HashMap::new();
        if !self.contains(from) {
            return out;
        }
        let adj = self.adjacency();
        let prev = self.bfs_tree(from, &adj);
        for &dsn in self.devices.keys() {
            if dsn == from {
                continue;
            }
            if let Some(chain) = Self::chain_to(from, dsn, &prev) {
                out.insert(dsn, self.route_of_chain(&chain, pool_capacity));
            }
        }
        out
    }

    /// Routes from every reachable device *to* `to`, derived by
    /// reversing the `to`-rooted BFS tree with one traversal. Each route
    /// is a shortest path of the same length [`Self::route_between`]
    /// would find, but ties may break differently (the reversal of the
    /// tree path rather than a fresh source-rooted search).
    pub fn routes_to(
        &self,
        to: u64,
        pool_capacity: u16,
    ) -> HashMap<u64, Result<DeviceRoute, TurnError>> {
        let mut out = HashMap::new();
        if !self.contains(to) {
            return out;
        }
        let adj = self.adjacency();
        let prev = self.bfs_tree(to, &adj);
        for &dsn in self.devices.keys() {
            if dsn == to {
                continue;
            }
            let Some(chain) = Self::chain_to(to, dsn, &prev) else {
                continue;
            };
            // `chain` runs to → dsn; walk it backwards to route dsn → to.
            // Forward, switch chain[i] is entered on chain[i-1]'s entry
            // port and leaves on its own egress port; reversed, those two
            // swap roles.
            let egress = chain.last().unwrap().2;
            let entry_port = chain[0].1;
            let mut pool = TurnPool::with_capacity(pool_capacity);
            let mut hops = 0;
            let mut err = None;
            for i in (1..chain.len()).rev() {
                let (switch_dsn, out_fwd, _) = chain[i];
                let ingress = out_fwd;
                let out_rev = chain[i - 1].2;
                let ports = self.devices[&switch_dsn].info.port_count as u8;
                let turn = turn_for(ingress, out_rev, ports);
                if let Err(e) = pool.push_turn(turn, turn_width(ports)) {
                    err = Some(e);
                    break;
                }
                hops += 1;
            }
            let route = match err {
                Some(e) => Err(e),
                None => Ok(DeviceRoute {
                    egress,
                    pool,
                    entry_port,
                    hops,
                }),
            };
            out.insert(dsn, route);
        }
        out
    }

    /// BFS route from the host to `to`, or from `from` to the host —
    /// computed over the discovered links. Returns `(egress at from,
    /// pool, entry port at to)`.
    pub fn route_between(
        &self,
        from: u64,
        to: u64,
        pool_capacity: u16,
    ) -> Option<Result<DeviceRoute, TurnError>> {
        if from == to || !self.contains(from) || !self.contains(to) {
            return None;
        }
        let adj = self.adjacency();
        let prev = self.bfs_tree(from, &adj);
        let chain = Self::chain_to(from, to, &prev)?;
        Some(self.route_of_chain(&chain, pool_capacity))
    }

    /// Recomputes every device's stored route from the host over the
    /// current link set (the "new set of paths" step the paper requires
    /// after every topological change). Devices with no route keep their
    /// stale one; returns the DSNs whose route could not be refreshed.
    pub fn refresh_routes(&mut self, pool_capacity: u16) -> Vec<u64> {
        let host = self.host_dsn;
        let mut routes = self.routes_from(host, pool_capacity);
        let dsns: Vec<u64> = self.devices.keys().copied().collect();
        let mut stale = Vec::new();
        for dsn in dsns {
            if dsn == host {
                continue;
            }
            match routes.remove(&dsn) {
                Some(Ok(route)) => {
                    if let Some(d) = self.devices.get_mut(&dsn) {
                        d.route = route;
                    }
                }
                _ => stale.push(dsn),
            }
        }
        stale.sort_unstable();
        stale
    }

    /// Differences between two databases (for assimilation reports).
    /// All lists come back sorted, so equal databases always produce
    /// byte-identical reports.
    pub fn diff(&self, newer: &TopologyDb) -> DbDiff {
        let mut added_devices: Vec<u64> = newer
            .devices
            .keys()
            .filter(|d| !self.devices.contains_key(d))
            .copied()
            .collect();
        let mut removed_devices: Vec<u64> = self
            .devices
            .keys()
            .filter(|d| !newer.devices.contains_key(d))
            .copied()
            .collect();
        let mut added_links: Vec<_> = newer.links.difference(&self.links).copied().collect();
        let mut removed_links: Vec<_> = self.links.difference(&newer.links).copied().collect();
        added_devices.sort_unstable();
        removed_devices.sort_unstable();
        added_links.sort_unstable();
        removed_links.sort_unstable();
        DbDiff {
            added_devices,
            removed_devices,
            added_links,
            removed_links,
        }
    }
}

/// Topology delta between two discovery runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DbDiff {
    /// DSNs present only in the newer database.
    pub added_devices: Vec<u64>,
    /// DSNs present only in the older database.
    pub removed_devices: Vec<u64>,
    /// Links present only in the newer database.
    pub added_links: Vec<(u64, u8, u64, u8)>,
    /// Links present only in the older database.
    pub removed_links: Vec<(u64, u8, u64, u8)>,
}

impl DbDiff {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added_devices.is_empty()
            && self.removed_devices.is_empty()
            && self.added_links.is_empty()
            && self.removed_links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_proto::PortState;

    fn info(dsn: u64, device_type: DeviceType, ports: u16) -> DeviceInfo {
        DeviceInfo {
            device_type,
            dsn,
            port_count: ports,
            max_packet_size: 2048,
            fm_capable: device_type == DeviceType::Endpoint,
            fm_priority: 0,
        }
    }

    fn route0() -> DeviceRoute {
        DeviceRoute {
            egress: 0,
            pool: TurnPool::with_capacity(64),
            entry_port: 0,
            hops: 0,
        }
    }

    /// host(ep,dsn=1) -- sw(dsn=2,16p) -- ep(dsn=3)
    fn line_db() -> TopologyDb {
        let mut db = TopologyDb::new(1);
        db.insert_device(info(1, DeviceType::Endpoint, 1), route0());
        db.insert_device(info(2, DeviceType::Switch, 16), route0());
        db.insert_device(info(3, DeviceType::Endpoint, 1), route0());
        db.add_link((1, 0), (2, 4));
        db.add_link((2, 5), (3, 0));
        db
    }

    #[test]
    fn insert_dedups_by_dsn() {
        let mut db = TopologyDb::new(1);
        assert!(db.insert_device(info(7, DeviceType::Switch, 16), route0()));
        assert!(!db.insert_device(info(7, DeviceType::Switch, 16), route0()));
        assert_eq!(db.device_count(), 1);
    }

    #[test]
    fn links_are_canonical_and_idempotent() {
        let mut db = TopologyDb::new(1);
        assert!(db.add_link((5, 3), (2, 1)));
        assert!(!db.add_link((2, 1), (5, 3)));
        assert_eq!(db.link_count(), 1);
    }

    #[test]
    fn neighbor_lookup_both_directions() {
        let db = line_db();
        assert_eq!(db.neighbor(1, 0), Some((2, 4)));
        assert_eq!(db.neighbor(2, 4), Some((1, 0)));
        assert_eq!(db.neighbor(2, 5), Some((3, 0)));
        assert_eq!(db.neighbor(2, 9), None);
    }

    #[test]
    fn port_blocks_and_completeness() {
        let mut db = line_db();
        assert!(!db.device(2).unwrap().ports_complete());
        for p in 0..16 {
            db.set_port(
                2,
                p,
                PortInfo {
                    state: if p < 2 {
                        PortState::Active
                    } else {
                        PortState::Down
                    },
                    link_width: 1,
                    link_speed: 10,
                    peer_port: 0,
                },
            );
        }
        let d = db.device(2).unwrap();
        assert!(d.ports_complete());
        assert_eq!(d.active_ports(), 2);
    }

    #[test]
    fn iteration_order_is_sorted() {
        let db = line_db();
        let dsns: Vec<u64> = db.devices().map(|d| d.info.dsn).collect();
        assert_eq!(dsns, vec![1, 2, 3]);
        let links: Vec<_> = db.links().collect();
        assert_eq!(links, vec![((1, 0), (2, 4)), ((2, 5), (3, 0))]);
    }

    #[test]
    fn diff_lists_are_sorted() {
        let old = line_db();
        let mut new = line_db();
        for dsn in [30, 10, 20] {
            new.insert_device(info(dsn, DeviceType::Endpoint, 1), route0());
            new.add_link((2, 6 + dsn as u8 / 10), (dsn, 0));
        }
        let d = old.diff(&new);
        assert_eq!(d.added_devices, vec![10, 20, 30]);
        assert!(d.added_links.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn classification_lists() {
        let db = line_db();
        assert_eq!(db.endpoints(), vec![1, 3]);
        assert_eq!(db.switches(), vec![2]);
    }

    #[test]
    fn remove_device_drops_its_links() {
        let mut db = line_db();
        assert!(db.remove_device(2));
        assert_eq!(db.link_count(), 0);
        assert!(!db.remove_device(2));
    }

    #[test]
    fn prune_unreachable_removes_orphans() {
        let mut db = line_db();
        // Island device with no links.
        db.insert_device(info(9, DeviceType::Switch, 16), route0());
        let pruned = db.prune_unreachable();
        assert_eq!(pruned, vec![9]);
        assert_eq!(db.device_count(), 3);

        // Removing the switch strands endpoint 3.
        db.remove_device(2);
        let mut pruned = db.prune_unreachable();
        pruned.sort_unstable();
        assert_eq!(pruned, vec![3]);
        assert_eq!(db.device_count(), 1);
    }

    #[test]
    fn route_between_follows_links() {
        let db = line_db();
        let r = db.route_between(1, 3, 64).unwrap().unwrap();
        assert_eq!(r.egress, 0);
        assert_eq!(r.entry_port, 0);
        assert_eq!(r.hops, 1);
        // Turn at switch 2: ingress 4 → egress 5 on a 16-port switch.
        let mut expect = TurnPool::with_capacity(64);
        expect.push_turn(turn_for(4, 5, 16), 4).unwrap();
        assert_eq!(r.pool, expect);

        // Reverse direction.
        let r = db.route_between(3, 1, 64).unwrap().unwrap();
        assert_eq!(r.egress, 0);
        assert_eq!(r.entry_port, 0);
        let mut expect = TurnPool::with_capacity(64);
        expect.push_turn(turn_for(5, 4, 16), 4).unwrap();
        assert_eq!(r.pool, expect);
    }

    #[test]
    fn route_between_edge_cases() {
        let db = line_db();
        assert!(db.route_between(1, 1, 64).is_none(), "self route");
        assert!(db.route_between(1, 99, 64).is_none(), "unknown target");
        let mut db2 = db.clone();
        db2.insert_device(info(9, DeviceType::Endpoint, 1), route0());
        assert!(db2.route_between(1, 9, 64).is_none(), "unreachable");
    }

    #[test]
    fn route_between_reports_pool_overflow() {
        // A chain long enough to exceed a tiny pool capacity.
        let mut db = TopologyDb::new(0);
        db.insert_device(info(0, DeviceType::Endpoint, 1), route0());
        for i in 1..=4 {
            db.insert_device(info(i, DeviceType::Switch, 16), route0());
        }
        db.insert_device(info(5, DeviceType::Endpoint, 1), route0());
        db.add_link((0, 0), (1, 0));
        for i in 1..4 {
            db.add_link((i, 1), (i + 1, 0));
        }
        db.add_link((4, 1), (5, 0));
        // 4 switches * 4 bits = 16 bits > 8-bit capacity.
        match db.route_between(0, 5, 8) {
            Some(Err(TurnError::PoolOverflow { .. })) => {}
            other => panic!("expected overflow, got {other:?}"),
        }
        // Fits with capacity 16.
        assert!(db.route_between(0, 5, 16).unwrap().is_ok());
    }

    #[test]
    fn diff_detects_changes() {
        let old = line_db();
        let mut new = line_db();
        new.remove_device(3);
        new.insert_device(info(10, DeviceType::Endpoint, 1), route0());
        new.add_link((2, 6), (10, 0));
        let d = old.diff(&new);
        assert_eq!(d.added_devices, vec![10]);
        assert_eq!(d.removed_devices, vec![3]);
        assert_eq!(d.added_links.len(), 1);
        assert_eq!(d.removed_links.len(), 1);
        assert!(!d.is_empty());
        assert!(old.diff(&old).is_empty());
    }
}
