//! Conversions between the live [`TopologyDb`] and the serializable
//! [`Snapshot`] from `asi-state`.
//!
//! The snapshot is the warm-start seed: a cold run's database is frozen
//! with [`snapshot_db`], persisted through `Snapshot::to_bytes`, and fed
//! back to a later fabric manager via `FmConfig::with_warm_start`, which
//! rebuilds a database with [`db_from_snapshot`] and verifies it against
//! the real fabric instead of re-walking it.

use crate::db::{DeviceRoute, TopologyDb};
use asi_state::{Snapshot, SnapshotDevice, SnapshotRoute};

/// Freezes a topology database into a snapshot. The result is already
/// canonical (the database iterates in sorted order).
pub fn snapshot_db(db: &TopologyDb) -> Snapshot {
    let mut snap = Snapshot::new(db.host_dsn());
    for d in db.devices() {
        snap.devices.push(SnapshotDevice {
            info: d.info,
            route: SnapshotRoute {
                egress: d.route.egress,
                entry_port: d.route.entry_port,
                hops: d.route.hops,
                pool: d.route.pool.clone(),
            },
            ports: d.ports.clone(),
        });
    }
    for ((a, ap), (b, bp)) in db.links() {
        snap.links.push((a, ap, b, bp));
    }
    snap.canonicalize();
    snap
}

/// Rebuilds a topology database from a snapshot. Routes are restored as
/// recorded; callers that distrust them (warm start does) should follow
/// with [`TopologyDb::refresh_routes`].
pub fn db_from_snapshot(snap: &Snapshot) -> TopologyDb {
    let mut db = TopologyDb::new(snap.host_dsn);
    for d in &snap.devices {
        db.insert_device(
            d.info,
            DeviceRoute {
                egress: d.route.egress,
                pool: d.route.pool.clone(),
                entry_port: d.route.entry_port,
                hops: d.route.hops,
            },
        );
        for (idx, port) in d.ports.iter().enumerate() {
            if let Some(p) = port {
                db.set_port(d.info.dsn, idx as u16, *p);
            }
        }
    }
    for &(a, ap, b, bp) in &snap.links {
        db.add_link((a, ap), (b, bp));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_proto::{DeviceInfo, DeviceType, PortInfo, PortState, TurnPool};

    fn info(dsn: u64, device_type: DeviceType, ports: u16) -> DeviceInfo {
        DeviceInfo {
            device_type,
            dsn,
            port_count: ports,
            max_packet_size: 2048,
            fm_capable: device_type == DeviceType::Endpoint,
            fm_priority: 3,
        }
    }

    fn sample_db() -> TopologyDb {
        let mut db = TopologyDb::new(1);
        let route = |entry: u8, hops: u16| DeviceRoute {
            egress: 0,
            pool: TurnPool::with_capacity(64),
            entry_port: entry,
            hops,
        };
        db.insert_device(info(1, DeviceType::Endpoint, 1), route(0, 0));
        db.insert_device(info(2, DeviceType::Switch, 16), route(4, 0));
        db.insert_device(info(3, DeviceType::Endpoint, 1), route(0, 1));
        db.add_link((1, 0), (2, 4));
        db.add_link((2, 5), (3, 0));
        db.set_port(
            2,
            4,
            PortInfo {
                state: PortState::Active,
                link_width: 1,
                link_speed: 10,
                peer_port: 0,
            },
        );
        db
    }

    #[test]
    fn snapshot_round_trips_through_db() {
        let db = sample_db();
        let snap = snapshot_db(&db);
        assert_eq!(snap.host_dsn, 1);
        assert_eq!(snap.device_count(), 3);
        assert_eq!(snap.link_count(), 2);
        assert_eq!(snap.device(2).unwrap().ports[4].unwrap().link_speed, 10);

        let rebuilt = db_from_snapshot(&snap);
        assert_eq!(rebuilt.host_dsn(), db.host_dsn());
        assert_eq!(rebuilt.device_count(), db.device_count());
        assert_eq!(rebuilt.link_count(), db.link_count());
        assert!(snapshot_db(&rebuilt).diff(&snap).is_empty());
        // Stronger: the canonical snapshots (including routes and ports)
        // are structurally identical.
        assert_eq!(snapshot_db(&rebuilt), snap);
    }

    #[test]
    fn snapshot_survives_binary_encoding() {
        let snap = snapshot_db(&sample_db());
        let decoded = asi_state::Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded, snap);
        let rebuilt = db_from_snapshot(&decoded);
        assert_eq!(snapshot_db(&rebuilt), snap);
    }
}
