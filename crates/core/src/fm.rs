//! The fabric manager agent: glues the discovery [`Engine`] to the
//! simulated fabric, implements change assimilation (full re-discovery on
//! PI-5, as the paper assumes, or the affected-region extension), request
//! timeouts, and the measurement plumbing behind every figure.

use crate::db::TopologyDb;
use crate::distributed::{report_messages, DistributedConfig, DistributedRole, MergeState};
use crate::election::{Ballot, Claim, ElectionResult};
use crate::engine::{Engine, EngineConfig, EngineStats, OutOp, OutRequest};
use crate::mcast::plan_multicast;
use crate::metrics::{Algorithm, DiscoveryRun, DiscoveryTrigger, DistributionRun};
use crate::pathdist::plan_distribution;
use crate::retry::RetryPolicy;
use crate::snapshot::db_from_snapshot;
use crate::timing::FmTiming;
use asi_fabric::{AgentCtx, FabricAgent};
use asi_proto::{
    DeviceType, FmMessage, Packet, Payload, Pi4, Pi5, PortEvent, ProtocolInterface, RouteHeader,
    MANAGEMENT_TC,
};
use asi_sim::{SimDuration, SimTime, TimeSeries, TraceEvent, TraceHandle};
use asi_state::Snapshot;
use std::any::Any;
use std::collections::HashMap;

/// Timer token that kicks off the initial discovery.
pub const TOKEN_START_DISCOVERY: u64 = 1 << 62;
/// Timer token that puts a secondary manager into standby (watching the
/// primary with keepalive reads, ready to take over).
pub const TOKEN_START_STANDBY: u64 = (1 << 62) + 1;
const TOKEN_KEEPALIVE_CHECK: u64 = (1 << 62) + 2;
/// Timer token that flushes multicast group requests queued with
/// [`FmAgent::queue_multicast`].
pub const TOKEN_CONFIGURE_MCAST: u64 = (1 << 62) + 3;
/// Timer token that starts a distributed discovery via PI-9 election:
/// the manager broadcasts its claim to every
/// [`DistributedConfig::peers`] entry, collects rival claims for the
/// election window, resolves roles, and only then begins discovery.
/// Without a [`FmConfig::distributed_config`] this degenerates to
/// [`TOKEN_START_DISCOVERY`].
pub const TOKEN_START_ELECTION: u64 = (1 << 62) + 4;
const TOKEN_ELECTION_DECIDE: u64 = (1 << 62) + 5;
const TIMEOUT_FLAG: u64 = 1 << 63;
/// Keepalive request ids live in their own range so they can never
/// collide with engine request ids.
const KEEPALIVE_REQ_BASE: u32 = 0xF000_0000;
/// Path-distribution write ids live in their own range too.
const DIST_REQ_BASE: u32 = 0xE000_0000;
/// Multicast-table write ids.
const MCAST_REQ_BASE: u32 = 0xD000_0000;

/// How the manager's *initial* discovery runs.
#[derive(Clone, Debug, Default)]
pub enum DiscoveryMode {
    /// Full cold discovery — the paper's flow.
    #[default]
    Cold,
    /// Warm start from a cached topology snapshot: one targeted
    /// verification probe per known device, escalating to a scoped
    /// re-discovery around mismatches and to a full cold run when the
    /// snapshot is too wrong (see `FmConfig::warm_fallback_threshold`).
    WarmStart(Box<Snapshot>),
}

/// Fabric-manager configuration.
///
/// Construct with [`FmConfig::new`] and refine with the `with_*`
/// builder methods; the struct is `#[non_exhaustive]`, so new knobs can
/// be added without breaking callers. Fields stay public for reading
/// and in-place mutation.
///
/// ```
/// use asi_core::{Algorithm, FmConfig, RetryPolicy};
/// use asi_sim::SimDuration;
///
/// let cfg = FmConfig::new(Algorithm::Parallel)
///     .with_request_timeout(SimDuration::from_ms(2))
///     .with_retry(RetryPolicy::exponential(4))
///     .with_auto_rediscover(false);
/// assert_eq!(cfg.request_timeout, SimDuration::from_ms(2));
/// assert!(!cfg.auto_rediscover);
/// ```
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct FmConfig {
    /// Discovery algorithm to run.
    pub algorithm: Algorithm,
    /// Per-packet processing-time model.
    pub timing: FmTiming,
    /// Turn-pool capacity for computed routes.
    pub pool_capacity: u16,
    /// Base timeout for a request's *first* attempt; the retry policy
    /// derives every later attempt's timeout from it.
    pub request_timeout: SimDuration,
    /// Re-discover automatically when PI-5 events arrive.
    pub auto_rediscover: bool,
    /// Use partial (affected-region) assimilation instead of the paper's
    /// full re-discovery.
    pub partial_assimilation: bool,
    /// Distributed-discovery claim partitioning.
    pub claim_partitioning: bool,
    /// When (and for how long) timed-out requests are re-issued. The
    /// default never retries — the paper's loss-free assumption.
    pub retry: RetryPolicy,
    /// Distributed-discovery role (implies claim partitioning).
    pub distributed: Option<DistributedRole>,
    /// Election-based distributed discovery: peers and our priority.
    /// Roles are then assumed at election time rather than configured;
    /// kick the agent with [`TOKEN_START_ELECTION`].
    pub distributed_config: Option<DistributedConfig>,
    /// Secondary-manager (failover) configuration.
    pub standby: Option<StandbyConfig>,
    /// Distribute per-endpoint route tables after every discovery
    /// (the paper's path-distribution future-work item).
    pub distribute_paths: bool,
    /// Observability sink shared with the discovery engine. Disabled by
    /// default; see `asi_sim::trace` and `docs/TRACE_FORMAT.md`.
    pub trace: TraceHandle,
    /// How the initial discovery runs (cold, or warm from a snapshot).
    pub mode: DiscoveryMode,
    /// Warm start only: the run falls back to a full cold discovery when
    /// the number of unverifiable devices exceeds this fraction of the
    /// snapshot's device count (default 0.25).
    pub warm_fallback_threshold: f64,
}

/// How a secondary manager watches the primary.
#[derive(Clone, Debug)]
pub struct StandbyConfig {
    /// Egress port toward the primary's endpoint.
    pub watch_egress: u8,
    /// Route to the primary's endpoint.
    pub watch_pool: asi_proto::TurnPool,
    /// Gap between keepalive reads.
    pub interval: SimDuration,
    /// How long to wait for each keepalive completion.
    pub timeout: SimDuration,
    /// Consecutive misses before the secondary promotes itself.
    pub miss_threshold: u32,
}

impl StandbyConfig {
    /// Default cadence: probe every 100 µs, 3 misses ⇒ takeover.
    pub fn new(watch_egress: u8, watch_pool: asi_proto::TurnPool) -> StandbyConfig {
        StandbyConfig {
            watch_egress,
            watch_pool,
            interval: SimDuration::from_us(100),
            timeout: SimDuration::from_us(80),
            miss_threshold: 3,
        }
    }
}

impl FmConfig {
    /// Defaults matching the paper's primary setup for `algorithm`.
    pub fn new(algorithm: Algorithm) -> FmConfig {
        FmConfig {
            algorithm,
            timing: FmTiming::default(),
            pool_capacity: asi_proto::MAX_POOL_BITS,
            request_timeout: SimDuration::from_ms(5),
            auto_rediscover: true,
            partial_assimilation: false,
            claim_partitioning: false,
            retry: RetryPolicy::default(),
            distributed: None,
            distributed_config: None,
            standby: None,
            distribute_paths: false,
            trace: TraceHandle::disabled(),
            mode: DiscoveryMode::Cold,
            warm_fallback_threshold: 0.25,
        }
    }

    /// Makes the initial discovery a warm start from `snapshot`.
    pub fn with_warm_start(mut self, snapshot: Snapshot) -> FmConfig {
        self.mode = DiscoveryMode::WarmStart(Box::new(snapshot));
        self
    }

    /// Sets the warm-start fallback threshold (fraction of snapshot
    /// devices that may fail verification before the snapshot is
    /// abandoned for a full cold discovery).
    pub fn with_warm_fallback_threshold(mut self, fraction: f64) -> FmConfig {
        self.warm_fallback_threshold = fraction;
        self
    }

    /// Configures this manager for a distributed discovery role.
    pub fn with_distributed(mut self, role: DistributedRole) -> FmConfig {
        self.claim_partitioning = true;
        self.distributed = Some(role);
        self
    }

    /// Configures election-based distributed discovery: the manager
    /// learns its role (primary, collaborator, or watching secondary)
    /// from a PI-9 claim exchange instead of having it assigned.
    /// Enables claim partitioning; arm [`TOKEN_START_ELECTION`] to run.
    pub fn with_distributed_config(mut self, config: DistributedConfig) -> FmConfig {
        self.claim_partitioning = true;
        self.distributed_config = Some(config);
        self
    }

    /// Sets the per-packet processing-time model.
    pub fn with_timing(mut self, timing: FmTiming) -> FmConfig {
        self.timing = timing;
        self
    }

    /// Sets the base timeout for a request's first attempt.
    pub fn with_request_timeout(mut self, timeout: SimDuration) -> FmConfig {
        self.request_timeout = timeout;
        self
    }

    /// Sets the retry/backoff policy for timed-out requests.
    pub fn with_retry(mut self, retry: RetryPolicy) -> FmConfig {
        self.retry = retry;
        self
    }

    /// Enables or disables automatic re-discovery on PI-5 events.
    pub fn with_auto_rediscover(mut self, on: bool) -> FmConfig {
        self.auto_rediscover = on;
        self
    }

    /// Enables partial (affected-region) assimilation.
    pub fn with_partial_assimilation(mut self, on: bool) -> FmConfig {
        self.partial_assimilation = on;
        self
    }

    /// Attaches a trace sink to the manager.
    pub fn with_trace(mut self, trace: TraceHandle) -> FmConfig {
        self.trace = trace;
        self
    }
}

/// Accumulates per-run measurements while a discovery is in flight. A
/// warm-start run spans up to three engine phases (verify → scoped
/// re-discovery → cold fallback); `base` folds in the stats of phases
/// already finished so the final [`DiscoveryRun`] covers the whole run.
struct RunAcc {
    trigger: DiscoveryTrigger,
    started_at: SimTime,
    bytes_sent: u64,
    bytes_received: u64,
    timeline: TimeSeries,
    fm_busy: SimDuration,
    packets_processed: u64,
    /// True while the current engine is a warm-start verification pass.
    warm_verifying: bool,
    /// Devices in the warm-start snapshot (threshold denominator).
    snapshot_devices: u64,
    /// Engine stats of completed phases of this run.
    base: EngineStats,
    probes_verified: u64,
    verify_mismatches: u64,
    warm_fallback: bool,
}

impl RunAcc {
    fn new(trigger: DiscoveryTrigger, started_at: SimTime) -> RunAcc {
        RunAcc {
            trigger,
            started_at,
            bytes_sent: 0,
            bytes_received: 0,
            timeline: TimeSeries::new(),
            fm_busy: SimDuration::ZERO,
            packets_processed: 0,
            warm_verifying: false,
            snapshot_devices: 0,
            base: EngineStats::default(),
            probes_verified: 0,
            verify_mismatches: 0,
            warm_fallback: false,
        }
    }
}

/// Sums two phases' engine counters.
fn add_stats(a: EngineStats, b: EngineStats) -> EngineStats {
    EngineStats {
        requests: a.requests + b.requests,
        responses: a.responses + b.responses,
        timeouts: a.timeouts + b.timeouts,
        max_outstanding: a.max_outstanding.max(b.max_outstanding),
        retries: a.retries + b.retries,
        duplicate_probes: a.duplicate_probes + b.duplicate_probes,
        ceded_devices: a.ceded_devices + b.ceded_devices,
        abandoned: a.abandoned + b.abandoned,
    }
}

/// The fabric manager.
pub struct FmAgent {
    cfg: FmConfig,
    engine: Option<Engine>,
    acc: Option<RunAcc>,
    /// Completed discovery runs, in order.
    pub runs: Vec<DiscoveryRun>,
    db: Option<TopologyDb>,
    restart_pending: bool,
    /// PI-5 events waiting for partial assimilation.
    partial_backlog: Vec<Pi5>,
    pi5_seen: HashMap<u64, u32>,
    /// PI-5 events accepted (deduplicated).
    pub pi5_events: u64,
    epoch: u64,
    /// Merge-side state (primary of a distributed discovery).
    pub merge: MergeState,
    /// When the distributed discovery produced the final merged database.
    pub distributed_finished_at: Option<SimTime>,
    /// Standby bookkeeping (secondary manager).
    keepalive_outstanding: Option<u32>,
    keepalive_misses: u32,
    keepalive_seq: u32,
    /// True once a standby secondary has promoted itself to primary.
    pub promoted: bool,
    /// Claims heard during the current election window.
    ballot: Option<Ballot>,
    /// The resolved election outcome, once the decision timer fired.
    pub elected: Option<ElectionResult>,
    /// Outstanding path-distribution writes.
    dist_pending: std::collections::HashSet<u32>,
    dist_next_req: u32,
    dist_acc: Option<DistributionRun>,
    /// Completed path-distribution phases.
    pub distributions: Vec<DistributionRun>,
    /// Rival manager DSNs observed via ownership claims across all runs.
    pub rivals: std::collections::BTreeSet<u64>,
    /// Multicast groups awaiting configuration.
    mcast_queue: Vec<(u16, Vec<u64>)>,
    mcast_pending: std::collections::HashSet<u32>,
    mcast_next_req: u32,
    /// Groups whose table writes have all been acknowledged.
    pub mcast_configured: Vec<u16>,
    /// Multicast-table writes that failed or were rejected at planning.
    pub mcast_failures: u64,
    /// Occupancy of the most recent packet (for busy/idle trace spans).
    last_processing: SimDuration,
    /// Instant the FM last finished processing a packet.
    busy_until: SimTime,
}

/// Stable trigger tag used in [`TraceEvent::RunStarted`] records.
fn trigger_tag(trigger: DiscoveryTrigger) -> &'static str {
    match trigger {
        DiscoveryTrigger::Initial => "initial",
        DiscoveryTrigger::ChangeAssimilation => "change",
        DiscoveryTrigger::Partial => "partial",
        DiscoveryTrigger::Failover => "failover",
        DiscoveryTrigger::WarmStart => "warm-start",
    }
}

impl FmAgent {
    /// Creates an idle manager; arm [`TOKEN_START_DISCOVERY`] to begin.
    pub fn new(cfg: FmConfig) -> FmAgent {
        FmAgent {
            cfg,
            engine: None,
            acc: None,
            runs: Vec::new(),
            db: None,
            restart_pending: false,
            partial_backlog: Vec::new(),
            pi5_seen: HashMap::new(),
            pi5_events: 0,
            epoch: 0,
            merge: MergeState::default(),
            distributed_finished_at: None,
            keepalive_outstanding: None,
            keepalive_misses: 0,
            keepalive_seq: 0,
            promoted: false,
            ballot: None,
            elected: None,
            dist_pending: std::collections::HashSet::new(),
            dist_next_req: DIST_REQ_BASE,
            dist_acc: None,
            distributions: Vec::new(),
            rivals: std::collections::BTreeSet::new(),
            mcast_queue: Vec::new(),
            mcast_pending: std::collections::HashSet::new(),
            mcast_next_req: MCAST_REQ_BASE,
            mcast_configured: Vec::new(),
            mcast_failures: 0,
            last_processing: SimDuration::ZERO,
            busy_until: SimTime::ZERO,
        }
    }

    /// Queues a multicast group for configuration; arm
    /// [`TOKEN_CONFIGURE_MCAST`] to flush.
    pub fn queue_multicast(&mut self, group: u16, members: Vec<u64>) {
        self.mcast_queue.push((group, members));
    }

    /// The latest completed topology database.
    pub fn db(&self) -> Option<&TopologyDb> {
        self.db.as_ref()
    }

    /// The most recent completed run.
    pub fn last_run(&self) -> Option<&DiscoveryRun> {
        self.runs.last()
    }

    /// Every completed run, in order.
    pub fn runs(&self) -> &[DiscoveryRun] {
        &self.runs
    }

    /// True while a discovery is in flight.
    pub fn discovering(&self) -> bool {
        self.engine.is_some()
    }

    /// The manager's configuration.
    pub fn config(&self) -> &FmConfig {
        &self.cfg
    }

    fn engine_cfg(&self) -> EngineConfig {
        EngineConfig {
            algorithm: self.cfg.algorithm,
            pool_capacity: self.cfg.pool_capacity,
            claim_partitioning: self.cfg.claim_partitioning,
            retry: self.cfg.retry,
            base_timeout: self.cfg.request_timeout,
        }
    }

    fn begin_full(&mut self, ctx: &mut AgentCtx, trigger: DiscoveryTrigger) {
        self.epoch += 1;
        let (mut engine, out) = Engine::start(self.engine_cfg(), ctx.host_info, &ctx.host_ports);
        engine.set_trace(self.cfg.trace.clone());
        engine.set_trace_time(ctx.now);
        let algorithm = self.cfg.algorithm.name();
        self.cfg.trace.emit(ctx.now, || TraceEvent::RunStarted {
            algorithm,
            trigger: trigger_tag(trigger),
        });
        // The host endpoint enters the database locally, before the trace
        // sink is installed on the engine: emit its discovery here so the
        // device-discovered count reconciles with `devices_found`.
        let host = ctx.host_info;
        self.cfg
            .trace
            .emit(ctx.now, || TraceEvent::DeviceDiscovered {
                dsn: host.dsn,
                switch: host.device_type == DeviceType::Switch,
                ports: host.port_count,
            });
        let outstanding = engine.outstanding() as u32;
        self.cfg
            .trace
            .emit(ctx.now, || TraceEvent::PendingTableSize {
                size: outstanding,
            });
        self.acc = Some(RunAcc::new(trigger, ctx.now));
        self.engine = Some(engine);
        self.dispatch(ctx, out);
        self.maybe_finish(ctx);
    }

    /// Warm start: seed a database from the snapshot, verify it with one
    /// targeted probe per device. Escalation (scoped re-discovery, cold
    /// fallback) happens in [`FmAgent::maybe_finish`] when the verify
    /// phase drains.
    fn begin_warm(&mut self, ctx: &mut AgentCtx, snapshot: &Snapshot) {
        if snapshot.host_dsn != ctx.host_info.dsn || snapshot.device(snapshot.host_dsn).is_none() {
            // The snapshot was taken on a different host: useless here.
            self.begin_full(ctx, DiscoveryTrigger::Initial);
            return;
        }
        self.epoch += 1;
        let mut db = db_from_snapshot(snapshot);
        // The live host record is authoritative over the cached one.
        for (p, info) in ctx.host_ports.iter().enumerate() {
            db.set_port(db.host_dsn(), p as u16, *info);
        }
        // Recompute routes over the snapshot's link set so stale stored
        // routes cannot mask an intact topology.
        db.refresh_routes(self.cfg.pool_capacity);
        let (mut engine, out) = Engine::verify(self.engine_cfg(), db);
        engine.set_trace(self.cfg.trace.clone());
        engine.set_trace_time(ctx.now);
        let algorithm = self.cfg.algorithm.name();
        self.cfg.trace.emit(ctx.now, || TraceEvent::RunStarted {
            algorithm,
            trigger: trigger_tag(DiscoveryTrigger::WarmStart),
        });
        let (sdev, slink) = (snapshot.device_count() as u64, snapshot.link_count() as u64);
        self.cfg.trace.emit(ctx.now, || TraceEvent::SnapshotLoaded {
            devices: sdev,
            links: slink,
        });
        let outstanding = engine.outstanding() as u32;
        self.cfg
            .trace
            .emit(ctx.now, || TraceEvent::PendingTableSize {
                size: outstanding,
            });
        let mut acc = RunAcc::new(DiscoveryTrigger::WarmStart, ctx.now);
        acc.warm_verifying = true;
        acc.snapshot_devices = sdev;
        self.acc = Some(acc);
        self.engine = Some(engine);
        self.dispatch(ctx, out);
        self.maybe_finish(ctx);
    }

    fn begin_partial(&mut self, ctx: &mut AgentCtx) {
        let Some(mut db) = self.db.clone() else {
            // No baseline yet: fall back to a full run.
            self.begin_full(ctx, DiscoveryTrigger::ChangeAssimilation);
            return;
        };
        self.epoch += 1;
        let events = std::mem::take(&mut self.partial_backlog);
        let mut rereads: Vec<u64> = Vec::new();
        for e in &events {
            match e.event {
                PortEvent::PortDown => {
                    if let Some((x, xp)) = db.neighbor(e.reporter_dsn, e.port) {
                        db.remove_link((e.reporter_dsn, e.port), (x, xp));
                        rereads.push(x);
                    }
                    rereads.push(e.reporter_dsn);
                }
                PortEvent::PortUp => {
                    rereads.push(e.reporter_dsn);
                }
            }
        }
        // The pruning of now-unreachable devices happens as probes time
        // out; links already removed may strand devices immediately.
        db.prune_unreachable();
        rereads.sort_unstable();
        rereads.dedup();
        rereads.retain(|d| db.contains(*d));
        let (mut engine, out) = Engine::seeded(self.engine_cfg(), db, &rereads, &[]);
        engine.set_trace(self.cfg.trace.clone());
        engine.set_trace_time(ctx.now);
        let algorithm = self.cfg.algorithm.name();
        self.cfg.trace.emit(ctx.now, || TraceEvent::RunStarted {
            algorithm,
            trigger: trigger_tag(DiscoveryTrigger::Partial),
        });
        let outstanding = engine.outstanding() as u32;
        self.cfg
            .trace
            .emit(ctx.now, || TraceEvent::PendingTableSize {
                size: outstanding,
            });
        self.acc = Some(RunAcc::new(DiscoveryTrigger::Partial, ctx.now));
        self.engine = Some(engine);
        self.dispatch(ctx, out);
        self.maybe_finish(ctx);
    }

    /// Sends engine requests and arms their timeouts.
    fn dispatch(&mut self, ctx: &mut AgentCtx, out: Vec<OutRequest>) {
        for req in out {
            let (req_id, write) = (req.req_id, matches!(req.op, OutOp::Write { .. }));
            self.cfg
                .trace
                .emit(ctx.now, || TraceEvent::RequestInjected { req_id, write });
            let header =
                RouteHeader::forward(ProtocolInterface::DeviceManagement, MANAGEMENT_TC, req.pool);
            let payload = match req.op {
                OutOp::Read { addr, dwords } => Pi4::ReadRequest {
                    req_id: req.req_id,
                    addr,
                    dwords,
                },
                OutOp::Write { addr, data } => Pi4::WriteRequest {
                    req_id: req.req_id,
                    addr,
                    data,
                },
            };
            let packet = Packet::new(header, Payload::Pi4(payload));
            if let Some(acc) = self.acc.as_mut() {
                acc.bytes_sent += packet.wire_size() as u64;
            }
            ctx.send(req.egress, packet);
            ctx.set_timer(
                req.timeout,
                TIMEOUT_FLAG | (self.epoch << 32) | u64::from(req.req_id),
            );
        }
    }

    /// The warm-start verify phase drained: fold its stats into the run
    /// accumulator and decide how the run continues. Returns `Some(db)`
    /// when every device verified (the run is finished); `None` when a
    /// scoped re-discovery or cold fallback engine took over.
    fn escalate_warm(&mut self, ctx: &mut AgentCtx, engine: Engine) -> Option<TopologyDb> {
        let stats = engine.stats();
        let verified = engine.verified().len() as u64;
        let mismatched: Vec<u64> = engine.mismatched().to_vec();
        let mut db = engine.db;
        let threshold = {
            let acc = self.acc.as_mut().expect("run accumulator present");
            acc.warm_verifying = false;
            acc.base = add_stats(acc.base, stats);
            acc.probes_verified += verified;
            acc.verify_mismatches += mismatched.len() as u64;
            (self.cfg.warm_fallback_threshold * acc.snapshot_devices as f64).floor() as u64
        };
        if mismatched.is_empty() {
            return Some(db);
        }
        // A follow-up engine reuses request ids starting from 1; a fresh
        // epoch keeps the verify phase's still-scheduled timeout timers
        // from hitting the new engine's in-flight requests.
        self.epoch += 1;
        if mismatched.len() as u64 > threshold {
            // The snapshot is too wrong to patch: full cold discovery,
            // accounted to the same run.
            self.acc.as_mut().expect("present").warm_fallback = true;
            let (m, t) = (mismatched.len() as u64, threshold);
            self.cfg.trace.emit(ctx.now, || TraceEvent::WarmFallback {
                mismatches: m,
                threshold: t,
            });
            let (mut engine, out) =
                Engine::start(self.engine_cfg(), ctx.host_info, &ctx.host_ports);
            engine.set_trace(self.cfg.trace.clone());
            engine.set_trace_time(ctx.now);
            self.engine = Some(engine);
            self.dispatch(ctx, out);
            return None;
        }
        // Scoped re-discovery: drop the mismatching devices, re-read
        // their surviving neighbours' port blocks (which re-probes
        // whatever actually sits behind those ports), and probe straight
        // through host ports that faced a mismatching device.
        let host = db.host_dsn();
        let mut rereads: Vec<u64> = Vec::new();
        let mut probe_via: Vec<(u64, u8)> = Vec::new();
        let links: Vec<_> = db.links().collect();
        for &dsn in &mismatched {
            for &((a, ap), (b, bp)) in &links {
                let other = if a == dsn {
                    Some((b, bp))
                } else if b == dsn {
                    Some((a, ap))
                } else {
                    None
                };
                if let Some((n, np)) = other {
                    if n == host {
                        probe_via.push((n, np));
                    } else {
                        rereads.push(n);
                    }
                }
            }
        }
        for &dsn in &mismatched {
            db.remove_device(dsn);
        }
        db.prune_unreachable();
        rereads.sort_unstable();
        rereads.dedup();
        rereads.retain(|d| db.contains(*d));
        probe_via.sort_unstable();
        probe_via.dedup();
        let (mut engine, out) = Engine::seeded(self.engine_cfg(), db, &rereads, &probe_via);
        engine.set_trace(self.cfg.trace.clone());
        engine.set_trace_time(ctx.now);
        self.engine = Some(engine);
        self.dispatch(ctx, out);
        None
    }

    /// Managers known to be part of this discovery, self included.
    fn fm_ensemble_size(&self) -> u32 {
        if let Some(ballot) = &self.ballot {
            return ballot.claims().len() as u32;
        }
        match &self.cfg.distributed {
            Some(DistributedRole::Primary { expected_reports }) => *expected_reports as u32 + 1,
            // A collaborator only knows itself and the primary for sure.
            Some(DistributedRole::Collaborator { .. }) => 2,
            None => 1,
        }
    }

    /// Starts the initial discovery per the configured mode.
    fn begin_initial(&mut self, ctx: &mut AgentCtx) {
        if self.engine.is_some() {
            return;
        }
        match &self.cfg.mode {
            DiscoveryMode::Cold => self.begin_full(ctx, DiscoveryTrigger::Initial),
            DiscoveryMode::WarmStart(snapshot) => {
                let snapshot = snapshot.clone();
                self.begin_warm(ctx, &snapshot);
            }
        }
    }

    /// Sends one FM-exchange message toward a peer manager.
    fn send_fm(&self, ctx: &mut AgentCtx, egress: u8, pool: asi_proto::TurnPool, msg: FmMessage) {
        let header = RouteHeader::forward(ProtocolInterface::FmExchange, MANAGEMENT_TC, pool);
        ctx.send(egress, Packet::new(header, Payload::Fm(msg)));
    }

    /// Election kickoff: broadcast our claim and arm the decision timer.
    fn start_election(&mut self, ctx: &mut AgentCtx) {
        let Some(dc) = self.cfg.distributed_config.clone() else {
            // No ensemble configured: a lone manager discovers solo.
            self.begin_initial(ctx);
            return;
        };
        if self.elected.is_some() {
            return;
        }
        let own = Claim::new(dc.priority, ctx.host_info.dsn);
        if self.ballot.is_none() {
            self.ballot = Some(Ballot::new(own));
        }
        let (dsn, priority) = (own.dsn, own.priority);
        self.cfg
            .trace
            .emit(ctx.now, || TraceEvent::FmClaim { dsn, priority });
        for peer in &dc.peers {
            self.send_fm(
                ctx,
                peer.egress,
                peer.pool.clone(),
                FmMessage::Claim { dsn, priority },
            );
        }
        ctx.set_timer(dc.election_window, TOKEN_ELECTION_DECIDE);
    }

    /// The election window closed: resolve roles and begin discovery.
    ///
    /// Every manager heard the same claim set (each claim was broadcast
    /// to every peer), so local resolution is globally consistent: one
    /// manager becomes [`DistributedRole::Primary`], the rest become
    /// [`DistributedRole::Collaborator`]s reporting to it, and the
    /// runner-up additionally arms standby keepalives on the primary so
    /// a mid-discovery primary death triggers failover.
    fn decide_election(&mut self, ctx: &mut AgentCtx) {
        if self.elected.is_some() {
            return;
        }
        let Some(dc) = self.cfg.distributed_config.clone() else {
            return;
        };
        let Some(ballot) = self.ballot.clone() else {
            return;
        };
        let result = ballot.resolve().expect("ballot holds our own claim");
        let fms = ballot.claims().len() as u32;
        let primary_dsn = result.primary.dsn;
        self.cfg.trace.emit(ctx.now, || TraceEvent::FmElected {
            primary: primary_dsn,
            fms,
        });
        self.elected = Some(result);
        let own = ballot.own();
        if result.primary == own {
            self.cfg.distributed = Some(DistributedRole::Primary {
                expected_reports: fms.saturating_sub(1) as usize,
            });
            // Confirm the outcome on the wire (informational: every
            // manager resolved the same ballot already).
            for peer in &dc.peers {
                self.send_fm(
                    ctx,
                    peer.egress,
                    peer.pool.clone(),
                    FmMessage::Elected {
                        primary: primary_dsn,
                        fms,
                    },
                );
            }
        } else {
            let Some(peer) = dc.peers.iter().find(|p| p.dsn == primary_dsn) else {
                // Outvoted by a manager we cannot route to: stand down.
                return;
            };
            self.cfg.distributed = Some(DistributedRole::Collaborator {
                report_egress: peer.egress,
                report_pool: peer.pool.clone(),
            });
            if result.secondary == Some(own) {
                // A primary mid-discovery answers keepalive reads only
                // after draining its response backlog, which by design
                // can approach the request timeout: a fixed 80 µs window
                // would misread busy for dead and usurp a live primary.
                // Scale the watch cadence to the configured timeout.
                let mut standby = StandbyConfig::new(peer.egress, peer.pool.clone());
                standby.timeout = standby.timeout.max(self.cfg.request_timeout * 2);
                standby.interval = standby.interval.max(standby.timeout * 2);
                self.cfg.standby = Some(standby);
                self.send_keepalive(ctx);
            }
        }
        self.begin_initial(ctx);
    }

    fn maybe_finish(&mut self, ctx: &mut AgentCtx) {
        let done = self.engine.as_ref().is_some_and(Engine::is_done);
        if !done {
            return;
        }
        let engine = self.engine.take().expect("checked");
        self.rivals.extend(engine.rivals.iter().copied());
        let ceded = engine.ceded.clone();
        let warm_verifying = self.acc.as_ref().is_some_and(|a| a.warm_verifying);
        let (db, stats) = if warm_verifying {
            match self.escalate_warm(ctx, engine) {
                // Clean verification: phase stats live in `acc.base`.
                Some(db) => (db, EngineStats::default()),
                // A follow-up engine took over; its own drain re-enters
                // maybe_finish.
                None => {
                    self.maybe_finish(ctx);
                    return;
                }
            }
        } else {
            let stats = engine.stats();
            (engine.db, stats)
        };
        let acc = self.acc.take().expect("run accumulator present");
        let stats = add_stats(acc.base, stats);
        let run = DiscoveryRun {
            algorithm: self.cfg.algorithm,
            trigger: acc.trigger,
            started_at: acc.started_at,
            finished_at: ctx.now,
            requests_sent: stats.requests,
            responses_received: stats.responses,
            timeouts: stats.timeouts,
            retries: stats.retries,
            abandoned: stats.abandoned,
            peak_outstanding: stats.max_outstanding,
            bytes_sent: acc.bytes_sent,
            bytes_received: acc.bytes_received,
            devices_found: db.device_count(),
            links_found: db.link_count(),
            fm_timeline: acc.timeline,
            fm_busy: acc.fm_busy,
            probes_verified: acc.probes_verified,
            verify_mismatches: acc.verify_mismatches,
            warm_fallback: acc.warm_fallback,
            fm_count: self.fm_ensemble_size(),
            boundary_conflicts: stats.ceded_devices,
            failovers: u32::from(
                matches!(acc.trigger, DiscoveryTrigger::Failover) && self.promoted,
            ),
            merge_time: SimDuration::ZERO,
        };
        self.cfg.trace.emit(ctx.now, || TraceEvent::RunFinished {
            devices_found: run.devices_found as u64,
            links_found: run.links_found as u64,
            requests_sent: run.requests_sent,
            timeouts: run.timeouts,
        });
        self.runs.push(run);
        self.db = Some(db);
        // Notify each rival of the boundary devices we ceded to it (the
        // ownership registers already settled the outcome; this puts it
        // on the wire for observability and symmetry with real fabrics).
        if let Some(dc) = self.cfg.distributed_config.clone() {
            for (dsn, owner) in ceded {
                if let Some(peer) = dc.peers.iter().find(|p| p.dsn == owner) {
                    self.send_fm(
                        ctx,
                        peer.egress,
                        peer.pool.clone(),
                        FmMessage::Yield { dsn, to: owner },
                    );
                }
            }
        }
        match &self.cfg.distributed {
            Some(DistributedRole::Collaborator {
                report_egress,
                report_pool,
            }) => {
                // Stream the partial database to the primary.
                let egress = *report_egress;
                let pool = report_pool.clone();
                let messages = report_messages(self.db.as_ref().expect("just set"));
                for msg in messages {
                    let header = RouteHeader::forward(
                        ProtocolInterface::FmExchange,
                        MANAGEMENT_TC,
                        pool.clone(),
                    );
                    ctx.send(egress, Packet::new(header, Payload::Fm(msg)));
                }
            }
            Some(DistributedRole::Primary { .. }) => {
                // Apply reports that arrived while our own exploration was
                // still running, then check for completion.
                let backlog = std::mem::take(&mut self.merge.backlog);
                if let Some(db) = self.db.as_mut() {
                    for msg in backlog {
                        self.merge.apply(db, msg);
                    }
                }
                self.check_distributed_done(ctx);
            }
            None => {
                // A promoted secondary runs its takeover solo (the role
                // was cleared at promotion): its own completed database
                // IS the final fabric view of the distributed run.
                if self.promoted
                    && self.cfg.distributed_config.is_some()
                    && self.distributed_finished_at.is_none()
                {
                    if let Some(db) = self.db.as_mut() {
                        db.refresh_routes(self.cfg.pool_capacity);
                        let (devices, links) = (db.device_count() as u64, db.link_count() as u64);
                        self.distributed_finished_at = Some(ctx.now);
                        self.merge.finished_at = Some(ctx.now);
                        self.cfg.trace.emit(ctx.now, || TraceEvent::MergeComplete {
                            devices,
                            links,
                            reports: 0,
                        });
                    }
                }
            }
        }
        if self.restart_pending {
            self.restart_pending = false;
            if self.cfg.partial_assimilation && !self.partial_backlog.is_empty() {
                self.begin_partial(ctx);
            } else {
                self.partial_backlog.clear();
                self.begin_full(ctx, DiscoveryTrigger::ChangeAssimilation);
            }
        } else if self.cfg.distribute_paths {
            self.begin_distribution(ctx);
        }
    }

    /// Injects the route-table writes for every endpoint (pipelined).
    fn begin_distribution(&mut self, ctx: &mut AgentCtx) {
        let Some(db) = self.db.as_ref() else { return };
        let host = db.host_dsn();
        let (writes, failed) = plan_distribution(db, self.cfg.pool_capacity);
        let mut acc = DistributionRun {
            started_at: ctx.now,
            finished_at: ctx.now,
            writes: 0,
            failures: 0,
            unencodable: failed.len() as u64,
            bytes_sent: 0,
        };
        // One BFS from the host serves every write's delivery route.
        let host_routes = db.routes_from(host, self.cfg.pool_capacity);
        let mut planned = Vec::new();
        for w in writes {
            let Some(Ok(route)) = host_routes.get(&w.target_dsn) else {
                acc.failures += 1;
                continue;
            };
            planned.push((w, route.clone()));
        }
        // The writes are fully pipelined, so the *last* completion sits
        // behind every earlier one in the FM's inbound queue: the timeout
        // must cover that queueing, not just one round trip.
        let per_packet = self
            .cfg
            .timing
            .pi4_time(self.cfg.algorithm, db.device_count());
        let dist_timeout = self.cfg.request_timeout + per_packet * (planned.len() as u64 + 1) * 2;
        for (w, route) in planned {
            self.dist_next_req += 1;
            let req_id = self.dist_next_req;
            let header = RouteHeader::forward(
                ProtocolInterface::DeviceManagement,
                MANAGEMENT_TC,
                route.pool,
            );
            let packet = Packet::new(
                header,
                Payload::Pi4(Pi4::WriteRequest {
                    req_id,
                    addr: w.addr(),
                    data: w.data,
                }),
            );
            acc.writes += 1;
            acc.bytes_sent += packet.wire_size() as u64;
            self.dist_pending.insert(req_id);
            ctx.send(route.egress, packet);
            ctx.set_timer(
                dist_timeout,
                TIMEOUT_FLAG | (self.epoch << 32) | u64::from(req_id),
            );
        }
        if self.dist_pending.is_empty() {
            acc.finished_at = ctx.now;
            self.distributions.push(acc);
        } else {
            self.dist_acc = Some(acc);
        }
    }

    /// Plans and injects the writes for every queued multicast group.
    fn flush_mcast(&mut self, ctx: &mut AgentCtx) {
        let Some(db) = self.db.as_ref() else {
            return; // no topology yet; caller may re-arm after discovery
        };
        let queued = std::mem::take(&mut self.mcast_queue);
        for (group, members) in queued {
            let writes = match plan_multicast(db, group, &members) {
                Ok(w) => w,
                Err(_) => {
                    self.mcast_failures += 1;
                    continue;
                }
            };
            let mut planned = Vec::new();
            for w in &writes {
                match db.route_between(db.host_dsn(), w.target_dsn, self.cfg.pool_capacity) {
                    Some(Ok(route)) => planned.push((w.clone(), route)),
                    _ => {
                        if w.target_dsn == db.host_dsn() {
                            // Local table: no packet needed in a real
                            // implementation; we skip (the FM endpoint
                            // rarely joins groups in these experiments).
                        } else {
                            self.mcast_failures += 1;
                        }
                    }
                }
            }
            let mut issued = false;
            for (w, route) in planned {
                self.mcast_next_req += 1;
                let req_id = self.mcast_next_req;
                let header = RouteHeader::forward(
                    ProtocolInterface::DeviceManagement,
                    MANAGEMENT_TC,
                    route.pool,
                );
                let packet = Packet::new(
                    header,
                    Payload::Pi4(Pi4::WriteRequest {
                        req_id,
                        addr: w.addr(),
                        data: vec![w.mask],
                    }),
                );
                self.mcast_pending.insert(req_id);
                ctx.send(route.egress, packet);
                ctx.set_timer(
                    self.cfg.request_timeout * 4,
                    TIMEOUT_FLAG | (self.epoch << 32) | u64::from(req_id),
                );
                issued = true;
            }
            if issued {
                // Completion is tracked collectively; record the group as
                // configured once the pending set drains (see
                // mcast_complete).
                self.mcast_configured.push(group);
            }
        }
    }

    fn mcast_complete(&mut self, req_id: u32, ok: bool) -> bool {
        if !self.mcast_pending.remove(&req_id) {
            return false;
        }
        if !ok {
            self.mcast_failures += 1;
        }
        true
    }

    /// True once every injected multicast-table write has completed.
    pub fn mcast_settled(&self) -> bool {
        self.mcast_pending.is_empty() && self.mcast_queue.is_empty()
    }

    fn dist_complete(&mut self, ctx: &mut AgentCtx, req_id: u32, ok: bool) -> bool {
        if !self.dist_pending.remove(&req_id) {
            return false;
        }
        if let Some(acc) = self.dist_acc.as_mut() {
            if !ok {
                acc.failures += 1;
            }
            if self.dist_pending.is_empty() {
                let mut acc = self.dist_acc.take().expect("present");
                acc.finished_at = ctx.now;
                self.distributions.push(acc);
            }
        }
        true
    }

    fn on_pi4(&mut self, ctx: &mut AgentCtx, packet: &Packet, pi4: &Pi4) {
        if let Some(acc) = self.acc.as_mut() {
            acc.bytes_received += packet.wire_size() as u64;
            acc.packets_processed += 1;
            let ordinal = acc.packets_processed;
            acc.timeline.push(ctx.now, ordinal as f64);
        }
        if let Pi4::ReadCompletion { req_id, .. } | Pi4::ReadError { req_id, .. } = pi4 {
            if Some(*req_id) == self.keepalive_outstanding {
                // The primary answered (any completion proves liveness).
                self.keepalive_outstanding = None;
                self.keepalive_misses = 0;
                return;
            }
        }
        match pi4 {
            Pi4::WriteCompletion { req_id }
                if (MCAST_REQ_BASE..DIST_REQ_BASE).contains(req_id)
                    && self.mcast_complete(*req_id, true) =>
            {
                return;
            }
            Pi4::ReadError { req_id, .. }
                if (MCAST_REQ_BASE..DIST_REQ_BASE).contains(req_id)
                    && self.mcast_complete(*req_id, false) =>
            {
                return;
            }
            Pi4::WriteCompletion { req_id }
                if *req_id >= DIST_REQ_BASE && self.dist_complete(ctx, *req_id, true) =>
            {
                return;
            }
            Pi4::ReadError { req_id, .. }
                if *req_id >= DIST_REQ_BASE && self.dist_complete(ctx, *req_id, false) =>
            {
                return;
            }
            _ => {}
        }
        let Some(engine) = self.engine.as_mut() else {
            return; // completion for an abandoned run
        };
        engine.set_trace_time(ctx.now);
        let out = match pi4 {
            Pi4::ReadCompletion { req_id, data } => engine.handle_completion(*req_id, Ok(data)),
            Pi4::ReadError { req_id, status } => engine.handle_completion(*req_id, Err(*status)),
            Pi4::WriteCompletion { req_id } => engine.handle_completion(*req_id, Ok(&[])),
            // Requests are serviced by the fabric's device responder, not
            // the manager.
            Pi4::ReadRequest { .. } | Pi4::WriteRequest { .. } => Vec::new(),
        };
        self.dispatch(ctx, out);
        self.maybe_finish(ctx);
    }

    fn on_pi5(&mut self, ctx: &mut AgentCtx, event: Pi5) {
        // Drop duplicate/stale reports.
        let last = self.pi5_seen.entry(event.reporter_dsn).or_insert(0);
        if event.sequence <= *last {
            return;
        }
        *last = event.sequence;
        self.pi5_events += 1;
        let (dsn, port, up) = (
            event.reporter_dsn,
            u16::from(event.port),
            event.event == PortEvent::PortUp,
        );
        self.cfg
            .trace
            .emit(ctx.now, || TraceEvent::Pi5Received { dsn, port, up });
        if !self.cfg.auto_rediscover {
            return;
        }
        if self.cfg.partial_assimilation {
            self.partial_backlog.push(event);
        }
        if self.engine.is_some() {
            // Assimilate once the current run finishes (the paper's FM
            // discards everything and starts over; we let the in-flight
            // run drain first, then restart).
            self.restart_pending = true;
        } else if self.cfg.partial_assimilation {
            self.begin_partial(ctx);
        } else {
            self.begin_full(ctx, DiscoveryTrigger::ChangeAssimilation);
        }
    }

    /// Standby: issue one keepalive read of the primary's general info.
    fn send_keepalive(&mut self, ctx: &mut AgentCtx) {
        let Some(standby) = self.cfg.standby.clone() else {
            return;
        };
        self.keepalive_seq += 1;
        let req_id = KEEPALIVE_REQ_BASE + self.keepalive_seq;
        self.keepalive_outstanding = Some(req_id);
        let (addr, dwords) = asi_proto::config::general_info_read();
        let header = RouteHeader::forward(
            ProtocolInterface::DeviceManagement,
            MANAGEMENT_TC,
            standby.watch_pool.clone(),
        );
        let packet = Packet::new(
            header,
            Payload::Pi4(Pi4::ReadRequest {
                req_id,
                addr,
                dwords,
            }),
        );
        ctx.send(standby.watch_egress, packet);
        ctx.set_timer(standby.timeout, TOKEN_KEEPALIVE_CHECK);
    }

    /// Standby: the keepalive window elapsed; count the miss or re-arm.
    fn on_keepalive_check(&mut self, ctx: &mut AgentCtx) {
        let Some(standby) = self.cfg.standby.clone() else {
            return;
        };
        if self.promoted {
            return;
        }
        if self.keepalive_outstanding.is_some() {
            self.keepalive_misses += 1;
            self.keepalive_outstanding = None;
            if self.keepalive_misses >= standby.miss_threshold {
                // The primary is gone: take over the fabric.
                self.promoted = true;
                let (dsn, misses) = (ctx.host_info.dsn, self.keepalive_misses);
                self.cfg
                    .trace
                    .emit(ctx.now, || TraceEvent::FmFailover { dsn, misses });
                // A promoted secondary owns the whole fabric: abandon any
                // in-flight collaborator run and re-discover solo, with
                // partitioning off so the dead primary's stale ownership
                // claims cannot carve holes out of the takeover view.
                self.engine = None;
                self.acc = None;
                self.cfg.distributed = None;
                self.cfg.claim_partitioning = false;
                self.begin_full(ctx, DiscoveryTrigger::Failover);
                return;
            }
        }
        // Next probe after the remainder of the interval.
        let gap = standby.interval.saturating_sub(standby.timeout);
        ctx.set_timer(gap.max(SimDuration::from_us(1)), TOKEN_START_STANDBY);
    }

    /// Handling of one FM-exchange message: election traffic first (any
    /// role), then the primary-side merge stream.
    fn on_fm_message(&mut self, ctx: &mut AgentCtx, msg: FmMessage) {
        match &msg {
            FmMessage::Claim { dsn, priority } => {
                // A rival's candidacy. Claims arriving after the decision
                // are stale (e.g. re-delivered) and change nothing.
                if self.elected.is_none() {
                    if let Some(dc) = &self.cfg.distributed_config {
                        let claim = Claim::new(*priority, *dsn);
                        let own = Claim::new(dc.priority, ctx.host_info.dsn);
                        self.ballot
                            .get_or_insert_with(|| Ballot::new(own))
                            .record(claim);
                    }
                }
                return;
            }
            // The winner's confirmation; our local resolution over the
            // same ballot already agrees, so nothing to do.
            FmMessage::Elected { .. } => return,
            // A rival telling us it ceded a boundary device to us. The
            // ownership register already recorded that outcome; the
            // notification needs no action.
            FmMessage::Yield { .. } => return,
            _ => {}
        }
        if !matches!(self.cfg.distributed, Some(DistributedRole::Primary { .. })) {
            return; // collaborators only send the merge stream
        }
        if self.engine.is_some() || self.db.is_none() {
            // Our own exploration still owns the database: buffer.
            self.merge.backlog.push(msg);
            return;
        }
        let db = self.db.as_mut().expect("checked");
        self.merge.apply(db, msg);
        self.check_distributed_done(ctx);
    }

    fn check_distributed_done(&mut self, ctx: &mut AgentCtx) {
        let Some(DistributedRole::Primary { expected_reports }) = &self.cfg.distributed else {
            return;
        };
        if self.distributed_finished_at.is_some() {
            return;
        }
        if self.engine.is_some() || self.merge.completed.len() < *expected_reports {
            return;
        }
        let Some(db) = self.db.as_mut() else {
            return;
        };
        db.refresh_routes(self.cfg.pool_capacity);
        self.distributed_finished_at = Some(ctx.now);
        self.merge.finished_at = Some(ctx.now);
        let (devices, links) = (db.device_count() as u64, db.link_count() as u64);
        let reports = self.merge.completed.len() as u32;
        self.cfg.trace.emit(ctx.now, || TraceEvent::MergeComplete {
            devices,
            links,
            reports,
        });
        // Stamp how long the merge tail took onto the primary's last run
        // (its devices_found/links_found keep describing its *own*
        // exploration; the merged view lives in the database).
        if let Some(run) = self.runs.last_mut() {
            run.merge_time = ctx.now.saturating_since(run.finished_at);
        }
    }
}

impl FabricAgent for FmAgent {
    fn processing_time(&mut self, packet: &Packet) -> SimDuration {
        let t = match &packet.payload {
            Payload::Pi4(_) => {
                let known = self
                    .engine
                    .as_ref()
                    .map(|e| e.db.device_count())
                    .or_else(|| self.db.as_ref().map(TopologyDb::device_count))
                    .unwrap_or(0);
                self.cfg.timing.pi4_time(self.cfg.algorithm, known)
            }
            Payload::Pi5(_) => self.cfg.timing.pi5_time(),
            Payload::Fm(_) => self.cfg.timing.merge_time(),
            Payload::Mcast { .. } | Payload::Data { .. } => SimDuration::from_ns(100),
        };
        if let Some(acc) = self.acc.as_mut() {
            acc.fm_busy += t;
        }
        self.last_processing = t;
        t
    }

    fn on_packet(&mut self, ctx: &mut AgentCtx, packet: Packet) {
        // Busy/idle spans: the fabric calls `on_packet` when the
        // per-packet occupancy ends, so `[now - last_processing, now]`
        // was busy and any gap back to the previous completion was idle.
        if self.cfg.trace.is_enabled() {
            let busy = self.last_processing;
            let started = SimTime::from_ps(ctx.now.as_ps().saturating_sub(busy.as_ps()));
            if started > self.busy_until {
                let idle = started.saturating_since(self.busy_until);
                self.cfg.trace.emit(started, || TraceEvent::FmIdle { idle });
            }
            self.cfg.trace.emit(ctx.now, || TraceEvent::FmBusy { busy });
            self.busy_until = ctx.now;
        }
        match &packet.payload {
            Payload::Pi4(pi4) => {
                let pi4 = pi4.clone();
                self.on_pi4(ctx, &packet, &pi4);
            }
            Payload::Pi5(e) => self.on_pi5(ctx, *e),
            Payload::Fm(msg) => {
                let msg = msg.clone();
                self.on_fm_message(ctx, msg);
            }
            Payload::Mcast { .. } | Payload::Data { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx, token: u64) {
        if token == TOKEN_START_DISCOVERY {
            self.begin_initial(ctx);
            return;
        }
        if token == TOKEN_START_STANDBY {
            if !self.promoted && self.cfg.standby.is_some() {
                self.send_keepalive(ctx);
            }
            return;
        }
        if token == TOKEN_KEEPALIVE_CHECK {
            self.on_keepalive_check(ctx);
            return;
        }
        if token == TOKEN_CONFIGURE_MCAST {
            self.flush_mcast(ctx);
            return;
        }
        if token == TOKEN_START_ELECTION {
            self.start_election(ctx);
            return;
        }
        if token == TOKEN_ELECTION_DECIDE {
            self.decide_election(ctx);
            return;
        }
        if token & TIMEOUT_FLAG != 0 {
            let epoch = (token >> 32) & 0x3FFF_FFFF;
            let req_id = (token & 0xFFFF_FFFF) as u32;
            if epoch != self.epoch {
                return; // timeout from a previous run
            }
            if (MCAST_REQ_BASE..DIST_REQ_BASE).contains(&req_id) {
                self.mcast_complete(req_id, false);
                return;
            }
            if req_id >= DIST_REQ_BASE {
                self.dist_complete(ctx, req_id, false);
                return;
            }
            if let Some(engine) = self.engine.as_mut() {
                if engine.is_pending(req_id) {
                    engine.set_trace_time(ctx.now);
                    let out = engine.handle_timeout(req_id);
                    self.dispatch(ctx, out);
                    self.maybe_finish(ctx);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_fabric::DevId;
    use asi_proto::{PortEvent, TurnPool};
    use asi_sim::SimTime;

    fn ctx() -> AgentCtx {
        AgentCtx::detached(SimTime::from_us(100), DevId(0))
    }

    fn pi5(reporter: u64, seq: u32) -> Pi5 {
        Pi5 {
            reporter_dsn: reporter,
            port: 0,
            event: PortEvent::PortDown,
            sequence: seq,
        }
    }

    #[test]
    fn pi5_duplicates_and_stale_sequences_are_dropped() {
        let mut cfg = FmConfig::new(Algorithm::Parallel);
        cfg.auto_rediscover = false;
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        fm.on_pi5(&mut c, pi5(9, 1));
        fm.on_pi5(&mut c, pi5(9, 1)); // duplicate
        fm.on_pi5(&mut c, pi5(9, 1)); // duplicate
        fm.on_pi5(&mut c, pi5(9, 2)); // fresh
        fm.on_pi5(&mut c, pi5(8, 1)); // different reporter
        assert_eq!(fm.pi5_events, 3);
    }

    #[test]
    fn pi5_without_auto_rediscover_never_starts_a_run() {
        let mut cfg = FmConfig::new(Algorithm::Parallel);
        cfg.auto_rediscover = false;
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        fm.on_pi5(&mut c, pi5(9, 1));
        assert!(!fm.discovering());
        assert!(c.take_commands().is_empty());
    }

    #[test]
    fn start_token_begins_discovery_from_host_ports() {
        let mut fm = FmAgent::new(FmConfig::new(Algorithm::Parallel));
        let mut c = ctx();
        // The detached host has one down port: discovery completes with
        // just the host in the database.
        fm.on_timer(&mut c, TOKEN_START_DISCOVERY);
        assert!(!fm.discovering(), "no active ports: run finishes at once");
        assert_eq!(fm.runs.len(), 1);
        assert_eq!(fm.runs[0].devices_found, 1);
        assert_eq!(fm.runs[0].trigger, DiscoveryTrigger::Initial);
    }

    #[test]
    fn unknown_timer_tokens_are_ignored() {
        let mut fm = FmAgent::new(FmConfig::new(Algorithm::SerialPacket));
        let mut c = ctx();
        fm.on_timer(&mut c, 0xDEAD);
        assert!(c.take_commands().is_empty());
        assert!(fm.runs.is_empty());
    }

    #[test]
    fn stale_epoch_timeouts_are_ignored() {
        let mut fm = FmAgent::new(FmConfig::new(Algorithm::Parallel));
        let mut c = ctx();
        fm.on_timer(&mut c, TOKEN_START_DISCOVERY); // epoch 1, finishes
        let _ = c.take_commands();
        // A timeout stamped with epoch 0 must be discarded silently.
        fm.on_timer(&mut c, TIMEOUT_FLAG | /* epoch 0 */ 7);
        assert!(c.take_commands().is_empty());
    }

    #[test]
    fn processing_time_matches_payload_kind() {
        let mut fm = FmAgent::new(FmConfig::new(Algorithm::SerialPacket));
        let hdr = RouteHeader::forward(
            ProtocolInterface::DeviceManagement,
            MANAGEMENT_TC,
            TurnPool::new_spec(),
        );
        let pi4_pkt = Packet::new(
            hdr.clone(),
            Payload::Pi4(Pi4::WriteCompletion { req_id: 1 }),
        );
        let pi5_pkt = Packet::new(hdr.clone(), Payload::Pi5(pi5(1, 1)));
        let data_pkt = Packet::new(hdr, Payload::Data { len: 9 });
        let t4 = fm.processing_time(&pi4_pkt);
        let t5 = fm.processing_time(&pi5_pkt);
        let td = fm.processing_time(&data_pkt);
        assert_eq!(t4, fm.cfg.timing.pi4_time(Algorithm::SerialPacket, 0));
        assert_eq!(t5, fm.cfg.timing.pi5_time());
        assert_eq!(td, SimDuration::from_ns(100));
        assert!(t4 > t5 && t5 > td);
    }

    #[test]
    fn queue_multicast_waits_for_a_database() {
        let mut fm = FmAgent::new(FmConfig::new(Algorithm::Parallel));
        fm.queue_multicast(1, vec![1, 2]);
        assert!(!fm.mcast_settled());
        let mut c = ctx();
        // No database yet: flush is a no-op that keeps the queue.
        fm.on_timer(&mut c, TOKEN_CONFIGURE_MCAST);
        assert!(!fm.mcast_settled());
        // After a (trivial) discovery, flushing plans and fails the group
        // (members unknown in a 1-device database) rather than hanging.
        fm.on_timer(&mut c, TOKEN_START_DISCOVERY);
        fm.on_timer(&mut c, TOKEN_CONFIGURE_MCAST);
        assert!(fm.mcast_settled());
        assert_eq!(fm.mcast_failures, 1);
    }

    #[test]
    fn collaborator_reports_after_discovery() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(1, 4).unwrap();
        let cfg =
            FmConfig::new(Algorithm::Parallel).with_distributed(DistributedRole::Collaborator {
                report_egress: 0,
                report_pool: pool,
            });
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        fm.on_timer(&mut c, TOKEN_START_DISCOVERY);
        // Trivial fabric (host only): the report is host Device + Complete.
        let sends = c
            .take_commands()
            .into_iter()
            .filter(|cmd| matches!(cmd, asi_fabric::AgentCommand::Send { .. }))
            .count();
        assert_eq!(sends, 2, "device record + completion marker");
    }

    #[test]
    fn lone_election_elects_self_and_completes_merge() {
        let cfg =
            FmConfig::new(Algorithm::Parallel).with_distributed_config(DistributedConfig::new(5));
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        fm.on_timer(&mut c, TOKEN_START_ELECTION);
        assert!(fm.elected.is_none(), "decision waits for the window");
        fm.on_timer(&mut c, TOKEN_ELECTION_DECIDE);
        let result = fm.elected.expect("window closed: resolved");
        assert_eq!(result.primary.dsn, c.host_info.dsn);
        assert!(matches!(
            fm.cfg.distributed,
            Some(DistributedRole::Primary {
                expected_reports: 0
            })
        ));
        assert!(
            fm.distributed_finished_at.is_some(),
            "no collaborators: the merge completes with our own run"
        );
        assert_eq!(fm.runs[0].fm_count, 1);
    }

    #[test]
    fn stronger_rival_claim_makes_us_the_watching_secondary() {
        let mut pool = TurnPool::new_spec();
        pool.push_turn(1, 4).unwrap();
        let rival = 0xFFFF_0000_0001u64;
        let cfg = FmConfig::new(Algorithm::Parallel)
            .with_distributed_config(DistributedConfig::new(1).with_peer(rival, 0, pool));
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        // The rival's claim lands before our own kickoff: still counted.
        fm.on_fm_message(
            &mut c,
            FmMessage::Claim {
                dsn: rival,
                priority: 9,
            },
        );
        fm.on_timer(&mut c, TOKEN_START_ELECTION);
        fm.on_timer(&mut c, TOKEN_ELECTION_DECIDE);
        assert_eq!(fm.elected.unwrap().primary.dsn, rival);
        assert!(matches!(
            fm.cfg.distributed,
            Some(DistributedRole::Collaborator { .. })
        ));
        // Two claims, we lost: as the runner-up we watch the primary.
        assert!(fm.cfg.standby.is_some());
        assert_eq!(fm.runs[0].fm_count, 2);
    }

    #[test]
    fn stale_claims_after_the_decision_change_nothing() {
        let cfg =
            FmConfig::new(Algorithm::Parallel).with_distributed_config(DistributedConfig::new(5));
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        fm.on_timer(&mut c, TOKEN_START_ELECTION);
        fm.on_timer(&mut c, TOKEN_ELECTION_DECIDE);
        fm.on_fm_message(
            &mut c,
            FmMessage::Claim {
                dsn: 0xBAD,
                priority: 255,
            },
        );
        assert_eq!(fm.elected.unwrap().primary.dsn, c.host_info.dsn);
        assert_eq!(fm.runs[0].fm_count, 1);
    }

    #[test]
    fn primary_buffers_reports_until_its_own_run_finishes() {
        let cfg = FmConfig::new(Algorithm::Parallel).with_distributed(DistributedRole::Primary {
            expected_reports: 1,
        });
        let mut fm = FmAgent::new(cfg);
        let mut c = ctx();
        // Report arrives before the primary even started: buffered.
        fm.on_fm_message(
            &mut c,
            FmMessage::Complete {
                sender: 42,
                devices: 1,
                links: 0,
            },
        );
        assert!(fm.distributed_finished_at.is_none());
        // Primary's own (trivial) run finishes; the backlog drains and the
        // merge completes.
        fm.on_timer(&mut c, TOKEN_START_DISCOVERY);
        assert!(fm.distributed_finished_at.is_some());
        assert!(fm.merge.completed.contains(&42));
    }
}
