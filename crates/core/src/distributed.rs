//! Distributed discovery (the paper's first future-work item, §5):
//! several collaborative fabric managers explore the fabric
//! simultaneously, partition it with claim-and-hold ownership writes, and
//! stream their partial databases to the primary manager for merging.
//!
//! ## Protocol
//!
//! 1. Every manager runs the Parallel algorithm with *claim
//!    partitioning*: after inserting a newly probed device it writes its
//!    own DSN to the device's ownership register (claim-and-hold: the
//!    first write sticks) and reads it back. If the read-back shows a
//!    rival, the manager keeps the device and the link in its database
//!    but cedes the device's region — it does not read the ports or probe
//!    beyond.
//! 2. When a collaborator's exploration drains, it streams its database
//!    to the primary as [`asi_proto::FmMessage`] packets (`Device`,
//!    `Link`, then `Complete`).
//! 3. The primary merges records as they arrive (each occupying the FM
//!    for [`crate::timing::FmTiming::merge_time`]), and finishes once its
//!    own exploration is done and every expected `Complete` has arrived;
//!    it then recomputes all routes from its own endpoint.
//!
//! Routes from collaborators are relative to *their* endpoints, so only
//! device/link facts are transferred; the primary re-derives routes.
//!
//! ## Election
//!
//! Roles need not be assigned by hand. With a [`DistributedConfig`] each
//! manager knows its peers' addresses and election priority; on
//! [`crate::fm::TOKEN_START_ELECTION`] it broadcasts an
//! [`FmMessage::Claim`], collects rival claims for one election window,
//! and resolves the winner with [`crate::election::elect`]. The winner
//! becomes [`DistributedRole::Primary`]; everyone else becomes a
//! [`DistributedRole::Collaborator`] reporting to the winner, and the
//! runner-up additionally watches the primary with standby keepalives so
//! it can take over if the primary dies mid-discovery.

use crate::db::{DeviceRoute, TopologyDb};
use crate::snapshot::snapshot_db;
use asi_proto::{FmMessage, TurnPool};
use asi_sim::SimTime;
use asi_state::checksum_of;
use asi_topo::{Topology, TopologyError, ValidationError};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// The role a manager plays in a distributed discovery.
#[derive(Clone, Debug)]
pub enum DistributedRole {
    /// Merges collaborator reports; owns the final database.
    Primary {
        /// Number of collaborators whose `Complete` must arrive.
        expected_reports: usize,
    },
    /// Explores its claimed region, then reports to the primary.
    Collaborator {
        /// Egress port toward the primary.
        report_egress: u8,
        /// Route to the primary's endpoint.
        report_pool: TurnPool,
    },
}

/// Address of one peer fabric manager: where to send FM-exchange packets
/// so they arrive at that manager's endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FmPeer {
    /// The peer endpoint's device serial number.
    pub dsn: u64,
    /// Egress port (on this manager's endpoint) toward the peer.
    pub egress: u8,
    /// Turn-pool route from this manager's endpoint to the peer.
    pub pool: TurnPool,
}

/// Configuration for election-based distributed discovery: this
/// manager's election priority and the addresses of every peer manager.
///
/// Attach one to an [`crate::fm::FmConfig`] with
/// [`crate::fm::FmConfig::with_distributed_config`] and kick the agent
/// with [`crate::fm::TOKEN_START_ELECTION`] instead of
/// [`crate::fm::TOKEN_START_DISCOVERY`]; the agents then elect a
/// primary over PI-9 and assume their [`DistributedRole`]s on their own.
///
/// ```
/// use asi_core::DistributedConfig;
/// use asi_proto::TurnPool;
/// use asi_sim::SimDuration;
///
/// let dc = DistributedConfig::new(3)
///     .with_peer(0x42, 0, TurnPool::new_spec())
///     .with_election_window(SimDuration::from_us(80));
/// assert_eq!(dc.priority, 3);
/// assert_eq!(dc.peers.len(), 1);
/// assert_eq!(dc.election_window, SimDuration::from_us(80));
/// ```
#[derive(Clone, Debug)]
pub struct DistributedConfig {
    /// This manager's election priority (higher wins; DSN breaks ties).
    pub priority: u8,
    /// Every *other* manager taking part in the election.
    pub peers: Vec<FmPeer>,
    /// How long the manager collects rival claims before resolving the
    /// election (default 50 µs — generous against worst-case claim
    /// propagation on every fabric in the test suite).
    pub election_window: asi_sim::SimDuration,
}

impl DistributedConfig {
    /// A config with the given election priority and no peers yet.
    pub fn new(priority: u8) -> Self {
        DistributedConfig {
            priority,
            peers: Vec::new(),
            election_window: asi_sim::SimDuration::from_us(50),
        }
    }

    /// Adds a peer manager (builder style).
    #[must_use]
    pub fn with_peer(mut self, dsn: u64, egress: u8, pool: TurnPool) -> Self {
        self.peers.push(FmPeer { dsn, egress, pool });
        self
    }

    /// Sets the claim-collection window (builder style).
    #[must_use]
    pub fn with_election_window(mut self, window: asi_sim::SimDuration) -> Self {
        self.election_window = window;
        self
    }
}

/// Merge-side state kept by the primary.
#[derive(Debug, Default)]
pub struct MergeState {
    /// Device records received.
    pub devices_received: u64,
    /// Link records received.
    pub links_received: u64,
    /// Collaborators whose `Complete` arrived.
    pub completed: HashSet<u64>,
    /// Messages that arrived while the primary's own exploration still
    /// owned the database.
    pub backlog: Vec<FmMessage>,
    /// When the merged database became final.
    pub finished_at: Option<SimTime>,
}

impl MergeState {
    /// Applies one FM message to the database. Returns `true` when the
    /// message was a `Complete`.
    pub fn apply(&mut self, db: &mut TopologyDb, msg: FmMessage) -> bool {
        match msg {
            FmMessage::Hello { .. }
            | FmMessage::Claim { .. }
            | FmMessage::Elected { .. }
            | FmMessage::Yield { .. } => false,
            FmMessage::Device { info, ports } => {
                self.devices_received += 1;
                if !db.contains(info.dsn) {
                    db.insert_device(
                        info,
                        DeviceRoute {
                            egress: 0,
                            pool: TurnPool::new_spec(),
                            entry_port: 0,
                            hops: 0,
                        },
                    );
                }
                // Union in port attributes the primary lacks (ceded
                // regions). Per-slot, so the merged database is the same
                // whichever order collaborator reports arrive in.
                for (p, port) in ports {
                    let unknown = db
                        .device(info.dsn)
                        .and_then(|d| d.ports.get(p as usize))
                        .is_some_and(|slot| slot.is_none());
                    if unknown {
                        db.set_port(info.dsn, p, port);
                    }
                }
                false
            }
            FmMessage::Link { a, b } => {
                self.links_received += 1;
                db.add_link(a, b);
                false
            }
            FmMessage::Complete { sender, .. } => {
                self.completed.insert(sender);
                true
            }
        }
    }
}

/// Serializes a database into the message stream a collaborator sends to
/// the primary (devices first, then links, then `Complete`).
pub fn report_messages(db: &TopologyDb) -> Vec<FmMessage> {
    let mut out = Vec::new();
    let mut dsns: Vec<u64> = db.devices().map(|d| d.info.dsn).collect();
    dsns.sort_unstable();
    for dsn in dsns {
        let d = db.device(dsn).expect("listed");
        out.push(FmMessage::Device {
            info: d.info,
            ports: d
                .ports
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.map(|p| (i as u16, p)))
                .collect(),
        });
    }
    let mut links: Vec<((u64, u8), (u64, u8))> = db.links().collect();
    links.sort_unstable();
    let nlinks = links.len();
    for (a, b) in links {
        out.push(FmMessage::Link { a, b });
    }
    out.push(FmMessage::Complete {
        sender: db.host_dsn(),
        devices: db.device_count() as u32,
        links: nlinks as u32,
    });
    out
}

/// Proof that a merged database passed certification: it rebuilt into a
/// structurally valid [`asi_topo::Topology`] and produced a canonical
/// snapshot whose checksum any manager can compare against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeCertificate {
    /// Devices in the certified view.
    pub devices: u64,
    /// Links in the certified view.
    pub links: u64,
    /// [`asi_state::checksum_of`] over the canonical snapshot — equal
    /// checksums mean byte-identical topologies.
    pub checksum: u64,
}

/// Why [`certify_merge`] rejected a merged database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeCertError {
    /// A device carries more ports than the graph layer models.
    PortCount {
        /// The offending device.
        dsn: u64,
        /// Its advertised port count.
        ports: u16,
    },
    /// A link references a device absent from the database.
    UnknownDevice {
        /// The missing device's DSN.
        dsn: u64,
    },
    /// Rebuilding the link graph failed (port reuse, self-loop, …).
    Rebuild(TopologyError),
    /// The rebuilt graph failed [`Topology::validate`].
    Invalid(ValidationError),
}

impl fmt::Display for MergeCertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeCertError::PortCount { dsn, ports } => {
                write!(f, "device {dsn:#x} claims {ports} ports (max 255)")
            }
            MergeCertError::UnknownDevice { dsn } => {
                write!(f, "link references unknown device {dsn:#x}")
            }
            MergeCertError::Rebuild(e) => write!(f, "graph rebuild failed: {e}"),
            MergeCertError::Invalid(e) => write!(f, "merged graph invalid: {e}"),
        }
    }
}

impl std::error::Error for MergeCertError {}

/// Certifies a merged database: rebuilds an [`asi_topo::Topology`] from
/// the device and link facts, runs [`Topology::validate`] (symmetry,
/// port double-use, connectivity), and stamps the canonical
/// [`asi_state`] snapshot checksum.
///
/// This is the merge check the primary runs after the last collaborator
/// report lands: a database stitched together from N partial views must
/// describe one coherent, fully connected fabric, and its canonical
/// bytes must match what a single-manager discovery would have found.
pub fn certify_merge(db: &TopologyDb) -> Result<MergeCertificate, MergeCertError> {
    let mut topo = Topology::new("merged");
    let mut ids = BTreeMap::new();
    for d in db.devices() {
        let ports = u8::try_from(d.info.port_count).map_err(|_| MergeCertError::PortCount {
            dsn: d.info.dsn,
            ports: d.info.port_count,
        })?;
        let label = format!("dsn-{:x}", d.info.dsn);
        let id = match d.info.device_type {
            asi_proto::DeviceType::Switch => topo.add_switch(ports, label),
            asi_proto::DeviceType::Endpoint => topo.add_endpoint_with_ports(ports, label),
        };
        ids.insert(d.info.dsn, id);
    }
    for ((da, pa), (db_, pb)) in db.links() {
        let a = *ids
            .get(&da)
            .ok_or(MergeCertError::UnknownDevice { dsn: da })?;
        let b = *ids
            .get(&db_)
            .ok_or(MergeCertError::UnknownDevice { dsn: db_ })?;
        topo.connect(a, pa, b, pb)
            .map_err(MergeCertError::Rebuild)?;
    }
    topo.validate().map_err(MergeCertError::Invalid)?;
    let snap = snapshot_db(db);
    Ok(MergeCertificate {
        devices: db.device_count() as u64,
        links: db.link_count() as u64,
        checksum: checksum_of(&snap),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_proto::{DeviceInfo, DeviceType, PortInfo, PortState};

    fn info(dsn: u64, ports: u16) -> DeviceInfo {
        DeviceInfo {
            device_type: if ports > 4 {
                DeviceType::Switch
            } else {
                DeviceType::Endpoint
            },
            dsn,
            port_count: ports,
            max_packet_size: 2048,
            fm_capable: ports <= 4,
            fm_priority: 0,
        }
    }

    fn sample_db(host: u64) -> TopologyDb {
        let mut db = TopologyDb::new(host);
        db.insert_device(
            info(host, 1),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
        db.insert_device(
            info(100, 16),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 1,
            },
        );
        for p in 0..16 {
            db.set_port(
                100,
                p,
                PortInfo {
                    state: if p == 0 {
                        PortState::Active
                    } else {
                        PortState::Down
                    },
                    link_width: 1,
                    link_speed: 10,
                    peer_port: 0,
                },
            );
        }
        db.add_link((host, 0), (100, 0));
        db
    }

    #[test]
    fn report_has_devices_links_complete_in_order() {
        let db = sample_db(1);
        let msgs = report_messages(&db);
        assert_eq!(msgs.len(), 2 + 1 + 1);
        assert!(matches!(msgs[0], FmMessage::Device { .. }));
        assert!(matches!(msgs[1], FmMessage::Device { .. }));
        assert!(matches!(msgs[2], FmMessage::Link { .. }));
        assert!(
            matches!(
                msgs[3],
                FmMessage::Complete {
                    sender: 1,
                    devices: 2,
                    links: 1
                }
            ),
            "{:?}",
            msgs[3]
        );
    }

    #[test]
    fn merge_reconstructs_the_database() {
        let src = sample_db(1);
        let mut dst = TopologyDb::new(99);
        dst.insert_device(
            info(99, 1),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
        let mut merge = MergeState::default();
        let mut completes = 0;
        for msg in report_messages(&src) {
            if merge.apply(&mut dst, msg) {
                completes += 1;
            }
        }
        assert_eq!(completes, 1);
        assert_eq!(merge.devices_received, 2);
        assert_eq!(merge.links_received, 1);
        assert!(dst.contains(1) && dst.contains(100));
        assert_eq!(dst.link_count(), 1);
        assert!(merge.completed.contains(&1));
        // Port attributes came across.
        assert!(dst.device(100).unwrap().ports_complete());
        assert_eq!(dst.device(100).unwrap().active_ports(), 1);
    }

    #[test]
    fn merge_does_not_clobber_known_ports() {
        let src = sample_db(1);
        let mut dst = sample_db(2); // already knows device 100 fully
        dst.set_port(
            100,
            3,
            PortInfo {
                state: PortState::Active,
                link_width: 1,
                link_speed: 10,
                peer_port: 9,
            },
        );
        let known = *dst.device(100).unwrap().ports[3].as_ref().unwrap();
        let mut merge = MergeState::default();
        for msg in report_messages(&src) {
            merge.apply(&mut dst, msg);
        }
        assert_eq!(*dst.device(100).unwrap().ports[3].as_ref().unwrap(), known);
    }

    #[test]
    fn duplicate_links_merge_idempotently() {
        let src = sample_db(1);
        let mut dst = TopologyDb::new(99);
        dst.insert_device(
            info(99, 1),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
        let mut merge = MergeState::default();
        for _ in 0..2 {
            for msg in report_messages(&src) {
                merge.apply(&mut dst, msg);
            }
        }
        assert_eq!(dst.link_count(), 1);
        assert_eq!(dst.device_count(), 3);
    }

    #[test]
    fn certify_accepts_a_coherent_merge_and_stamps_a_stable_checksum() {
        let db = sample_db(1);
        let cert = certify_merge(&db).expect("coherent database certifies");
        assert_eq!(cert.devices, 2);
        assert_eq!(cert.links, 1);
        assert_eq!(
            cert.checksum,
            certify_merge(&sample_db(1)).unwrap().checksum
        );
    }

    #[test]
    fn certify_rejects_a_disconnected_merge() {
        let mut db = sample_db(1);
        db.insert_device(
            info(500, 8),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 2,
            },
        );
        // Device 500 has no link to the rest: an incoherent merge.
        assert!(matches!(
            certify_merge(&db),
            Err(MergeCertError::Invalid(
                ValidationError::Disconnected { .. }
            ))
        ));
    }

    #[test]
    fn report_carries_only_known_ports() {
        let mut db = sample_db(1);
        // Forget one port of the switch: a ceded boundary device.
        db.device_mut(100).unwrap().ports[7] = None;
        let msgs = report_messages(&db);
        let FmMessage::Device { ports, .. } = &msgs[1] else {
            panic!("expected device record, got {:?}", msgs[1]);
        };
        assert_eq!(ports.len(), 15);
        assert!(ports.iter().all(|(i, _)| *i != 7));
    }
}
