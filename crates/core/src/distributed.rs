//! Distributed discovery (the paper's first future-work item, §5):
//! several collaborative fabric managers explore the fabric
//! simultaneously, partition it with claim-and-hold ownership writes, and
//! stream their partial databases to the primary manager for merging.
//!
//! ## Protocol
//!
//! 1. Every manager runs the Parallel algorithm with *claim
//!    partitioning*: after inserting a newly probed device it writes its
//!    own DSN to the device's ownership register (claim-and-hold: the
//!    first write sticks) and reads it back. If the read-back shows a
//!    rival, the manager keeps the device and the link in its database
//!    but cedes the device's region — it does not read the ports or probe
//!    beyond.
//! 2. When a collaborator's exploration drains, it streams its database
//!    to the primary as [`asi_proto::FmMessage`] packets (`Device`,
//!    `Link`, then `Complete`).
//! 3. The primary merges records as they arrive (each occupying the FM
//!    for [`crate::timing::FmTiming::merge_time`]), and finishes once its
//!    own exploration is done and every expected `Complete` has arrived;
//!    it then recomputes all routes from its own endpoint.
//!
//! Routes from collaborators are relative to *their* endpoints, so only
//! device/link facts are transferred; the primary re-derives routes.

use crate::db::{DeviceRoute, TopologyDb};
use asi_proto::{FmMessage, TurnPool};
use asi_sim::SimTime;
use std::collections::HashSet;

/// The role a manager plays in a distributed discovery.
#[derive(Clone, Debug)]
pub enum DistributedRole {
    /// Merges collaborator reports; owns the final database.
    Primary {
        /// Number of collaborators whose `Complete` must arrive.
        expected_reports: usize,
    },
    /// Explores its claimed region, then reports to the primary.
    Collaborator {
        /// Egress port toward the primary.
        report_egress: u8,
        /// Route to the primary's endpoint.
        report_pool: TurnPool,
    },
}

/// Merge-side state kept by the primary.
#[derive(Debug, Default)]
pub struct MergeState {
    /// Device records received.
    pub devices_received: u64,
    /// Link records received.
    pub links_received: u64,
    /// Collaborators whose `Complete` arrived.
    pub completed: HashSet<u64>,
    /// Messages that arrived while the primary's own exploration still
    /// owned the database.
    pub backlog: Vec<FmMessage>,
    /// When the merged database became final.
    pub finished_at: Option<SimTime>,
}

impl MergeState {
    /// Applies one FM message to the database. Returns `true` when the
    /// message was a `Complete`.
    pub fn apply(&mut self, db: &mut TopologyDb, msg: FmMessage) -> bool {
        match msg {
            FmMessage::Hello { .. } => false,
            FmMessage::Device { info, ports } => {
                self.devices_received += 1;
                if !db.contains(info.dsn) {
                    db.insert_device(
                        info,
                        DeviceRoute {
                            egress: 0,
                            pool: TurnPool::new_spec(),
                            entry_port: 0,
                            hops: 0,
                        },
                    );
                }
                // Fill port attributes the primary lacks (ceded regions).
                let need_ports = db
                    .device(info.dsn)
                    .map(|d| !d.ports_complete())
                    .unwrap_or(false);
                if need_ports {
                    for (p, port) in ports.into_iter().enumerate() {
                        db.set_port(info.dsn, p as u16, port);
                    }
                }
                false
            }
            FmMessage::Link { a, b } => {
                self.links_received += 1;
                db.add_link(a, b);
                false
            }
            FmMessage::Complete { sender, .. } => {
                self.completed.insert(sender);
                true
            }
        }
    }
}

/// Serializes a database into the message stream a collaborator sends to
/// the primary (devices first, then links, then `Complete`).
pub fn report_messages(db: &TopologyDb) -> Vec<FmMessage> {
    let mut out = Vec::new();
    let mut dsns: Vec<u64> = db.devices().map(|d| d.info.dsn).collect();
    dsns.sort_unstable();
    for dsn in dsns {
        let d = db.device(dsn).expect("listed");
        out.push(FmMessage::Device {
            info: d.info,
            ports: d.ports.iter().map(|p| p.unwrap_or_default()).collect(),
        });
    }
    let mut links: Vec<((u64, u8), (u64, u8))> = db.links().collect();
    links.sort_unstable();
    let nlinks = links.len();
    for (a, b) in links {
        out.push(FmMessage::Link { a, b });
    }
    out.push(FmMessage::Complete {
        sender: db.host_dsn(),
        devices: db.device_count() as u32,
        links: nlinks as u32,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asi_proto::{DeviceInfo, DeviceType, PortInfo, PortState};

    fn info(dsn: u64, ports: u16) -> DeviceInfo {
        DeviceInfo {
            device_type: if ports > 4 {
                DeviceType::Switch
            } else {
                DeviceType::Endpoint
            },
            dsn,
            port_count: ports,
            max_packet_size: 2048,
            fm_capable: ports <= 4,
            fm_priority: 0,
        }
    }

    fn sample_db(host: u64) -> TopologyDb {
        let mut db = TopologyDb::new(host);
        db.insert_device(
            info(host, 1),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
        db.insert_device(
            info(100, 16),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 1,
            },
        );
        for p in 0..16 {
            db.set_port(
                100,
                p,
                PortInfo {
                    state: if p == 0 {
                        PortState::Active
                    } else {
                        PortState::Down
                    },
                    link_width: 1,
                    link_speed: 10,
                    peer_port: 0,
                },
            );
        }
        db.add_link((host, 0), (100, 0));
        db
    }

    #[test]
    fn report_has_devices_links_complete_in_order() {
        let db = sample_db(1);
        let msgs = report_messages(&db);
        assert_eq!(msgs.len(), 2 + 1 + 1);
        assert!(matches!(msgs[0], FmMessage::Device { .. }));
        assert!(matches!(msgs[1], FmMessage::Device { .. }));
        assert!(matches!(msgs[2], FmMessage::Link { .. }));
        assert!(
            matches!(
                msgs[3],
                FmMessage::Complete {
                    sender: 1,
                    devices: 2,
                    links: 1
                }
            ),
            "{:?}",
            msgs[3]
        );
    }

    #[test]
    fn merge_reconstructs_the_database() {
        let src = sample_db(1);
        let mut dst = TopologyDb::new(99);
        dst.insert_device(
            info(99, 1),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
        let mut merge = MergeState::default();
        let mut completes = 0;
        for msg in report_messages(&src) {
            if merge.apply(&mut dst, msg) {
                completes += 1;
            }
        }
        assert_eq!(completes, 1);
        assert_eq!(merge.devices_received, 2);
        assert_eq!(merge.links_received, 1);
        assert!(dst.contains(1) && dst.contains(100));
        assert_eq!(dst.link_count(), 1);
        assert!(merge.completed.contains(&1));
        // Port attributes came across.
        assert!(dst.device(100).unwrap().ports_complete());
        assert_eq!(dst.device(100).unwrap().active_ports(), 1);
    }

    #[test]
    fn merge_does_not_clobber_known_ports() {
        let src = sample_db(1);
        let mut dst = sample_db(2); // already knows device 100 fully
        dst.set_port(
            100,
            3,
            PortInfo {
                state: PortState::Active,
                link_width: 1,
                link_speed: 10,
                peer_port: 9,
            },
        );
        let known = *dst.device(100).unwrap().ports[3].as_ref().unwrap();
        let mut merge = MergeState::default();
        for msg in report_messages(&src) {
            merge.apply(&mut dst, msg);
        }
        assert_eq!(*dst.device(100).unwrap().ports[3].as_ref().unwrap(), known);
    }

    #[test]
    fn duplicate_links_merge_idempotently() {
        let src = sample_db(1);
        let mut dst = TopologyDb::new(99);
        dst.insert_device(
            info(99, 1),
            DeviceRoute {
                egress: 0,
                pool: TurnPool::new_spec(),
                entry_port: 0,
                hops: 0,
            },
        );
        let mut merge = MergeState::default();
        for _ in 0..2 {
            for msg in report_messages(&src) {
                merge.apply(&mut dst, msg);
            }
        }
        assert_eq!(dst.link_count(), 1);
        assert_eq!(dst.device_count(), 3);
    }
}
