//! Path distribution (the paper's third future-work item, §5): after a
//! topological change is assimilated, the manager must "dynamically
//! distribute new paths to fabric endpoints". The FM computes, for every
//! endpoint, a route table with a source route to every other endpoint,
//! and writes it into the endpoint's route-table capability with PI-4
//! writes.
//!
//! ## Entry format (six 32-bit words, one PI-4 write per entry)
//!
//! | word | contents |
//! |------|----------|
//! | 0    | destination DSN, high 32 bits |
//! | 1    | destination DSN, low 32 bits |
//! | 2    | `egress << 16 \| pool bit-length` |
//! | 3–5  | turn pool bits 0..96 |
//!
//! Routes needing more than 96 turn bits do not fit an entry and are
//! reported back to the caller (none of the paper's topologies exceed 68
//! bits end to end).

use crate::db::TopologyDb;
use asi_proto::{TurnPool, CAP_ROUTE_TABLE};

/// Words per route-table entry.
pub const ENTRY_WORDS: u16 = 6;
/// Largest turn pool an entry can carry.
pub const ENTRY_POOL_BITS: u16 = 96;

/// One distributed route: how `owner` reaches `dest_dsn`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTableEntry {
    /// Destination endpoint's DSN.
    pub dest_dsn: u64,
    /// Egress port at the owning endpoint.
    pub egress: u8,
    /// Turn pool to the destination.
    pub pool: TurnPool,
}

impl RouteTableEntry {
    /// Encodes the entry into its six words.
    pub fn to_words(&self) -> Option<[u32; ENTRY_WORDS as usize]> {
        if self.pool.len_bits() > ENTRY_POOL_BITS {
            return None;
        }
        let w = self.pool.words();
        Some([
            (self.dest_dsn >> 32) as u32,
            self.dest_dsn as u32,
            (u32::from(self.egress) << 16) | u32::from(self.pool.len_bits()),
            w[0] as u32,
            (w[0] >> 32) as u32,
            w[1] as u32,
        ])
    }

    /// Decodes an entry from its six words. All-zero words mean "no
    /// entry" and decode to `None`.
    pub fn from_words(words: &[u32]) -> Option<RouteTableEntry> {
        if words.len() < ENTRY_WORDS as usize {
            return None;
        }
        let dest_dsn = (u64::from(words[0]) << 32) | u64::from(words[1]);
        if dest_dsn == 0 {
            return None;
        }
        let egress = ((words[2] >> 16) & 0xFF) as u8;
        let len = (words[2] & 0xFFFF) as u16;
        if len > ENTRY_POOL_BITS {
            return None;
        }
        let w0 = u64::from(words[3]) | (u64::from(words[4]) << 32);
        let w1 = u64::from(words[5]);
        let mut pool_words = [0u64; asi_proto::POOL_WORDS];
        pool_words[0] = w0;
        pool_words[1] = w1;
        let pool = TurnPool::from_words(pool_words, len, ENTRY_POOL_BITS).ok()?;
        Some(RouteTableEntry {
            dest_dsn,
            egress,
            pool,
        })
    }

    /// The capability-offset of entry `index` in the route table.
    pub fn offset(index: u16) -> u16 {
        index * ENTRY_WORDS
    }
}

/// A planned PI-4 write distributing one entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedWrite {
    /// The endpoint whose table is written.
    pub target_dsn: u64,
    /// Offset within `CAP_ROUTE_TABLE`.
    pub offset: u16,
    /// The six entry words.
    pub data: Vec<u32>,
}

impl PlannedWrite {
    /// The PI-4 address this write targets.
    pub fn addr(&self) -> asi_proto::CapabilityAddr {
        asi_proto::CapabilityAddr {
            capability: CAP_ROUTE_TABLE,
            offset: self.offset,
        }
    }
}

/// Computes the full distribution plan: for every endpoint in `db`
/// (except the host, which computes its own routes locally), a route to
/// every other endpoint. Returns the writes plus the `(owner, dest)`
/// pairs whose routes could not be expressed (unreachable or pool too
/// long).
pub fn plan_distribution(
    db: &TopologyDb,
    pool_capacity: u16,
) -> (Vec<PlannedWrite>, Vec<(u64, u64)>) {
    let mut writes = Vec::new();
    let mut failed = Vec::new();
    let endpoints = db.endpoints();
    for &owner in &endpoints {
        if owner == db.host_dsn() {
            continue;
        }
        // One BFS per owner; per-(owner, dest) route_between calls would
        // be cubic in the endpoint count.
        let mut owner_routes = db.routes_from(owner, pool_capacity.min(ENTRY_POOL_BITS));
        let mut index = 0u16;
        for &dest in &endpoints {
            if dest == owner {
                continue;
            }
            let entry = owner_routes
                .remove(&dest)
                .and_then(Result::ok)
                .map(|r| RouteTableEntry {
                    dest_dsn: dest,
                    egress: r.egress,
                    pool: r.pool,
                });
            match entry.as_ref().and_then(RouteTableEntry::to_words) {
                Some(words) => {
                    writes.push(PlannedWrite {
                        target_dsn: owner,
                        offset: RouteTableEntry::offset(index),
                        data: words.to_vec(),
                    });
                    index += 1;
                }
                None => failed.push((owner, dest)),
            }
        }
    }
    (writes, failed)
}

/// Decodes a route table read back from an endpoint's capability words.
pub fn decode_route_table(words: &[u32]) -> Vec<RouteTableEntry> {
    words
        .chunks(ENTRY_WORDS as usize)
        .map_while(RouteTableEntry::from_words)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DeviceRoute;
    use asi_proto::{DeviceInfo, DeviceType};

    fn info(dsn: u64, device_type: DeviceType, ports: u16) -> DeviceInfo {
        DeviceInfo {
            device_type,
            dsn,
            port_count: ports,
            max_packet_size: 2048,
            fm_capable: device_type == DeviceType::Endpoint,
            fm_priority: 0,
        }
    }

    fn route0() -> DeviceRoute {
        DeviceRoute {
            egress: 0,
            pool: TurnPool::with_capacity(96),
            entry_port: 0,
            hops: 0,
        }
    }

    /// host(1) -- sw(2) -- ep(3), ep(4)
    fn db() -> TopologyDb {
        let mut db = TopologyDb::new(1);
        db.insert_device(info(1, DeviceType::Endpoint, 1), route0());
        db.insert_device(info(2, DeviceType::Switch, 16), route0());
        db.insert_device(info(3, DeviceType::Endpoint, 1), route0());
        db.insert_device(info(4, DeviceType::Endpoint, 1), route0());
        db.add_link((1, 0), (2, 0));
        db.add_link((2, 1), (3, 0));
        db.add_link((2, 2), (4, 0));
        db
    }

    #[test]
    fn entry_words_round_trip() {
        let mut pool = TurnPool::with_capacity(96);
        for i in 0..20u8 {
            pool.push_turn(i % 16, 4).unwrap();
        }
        let entry = RouteTableEntry {
            dest_dsn: 0xABCD_0000_1234,
            egress: 2,
            pool,
        };
        let words = entry.to_words().unwrap();
        assert_eq!(RouteTableEntry::from_words(&words), Some(entry));
    }

    #[test]
    fn oversized_pool_cannot_encode() {
        let mut pool = TurnPool::with_capacity(256);
        for _ in 0..25 {
            pool.push_turn(1, 4).unwrap(); // 100 bits
        }
        let entry = RouteTableEntry {
            dest_dsn: 1,
            egress: 0,
            pool,
        };
        assert!(entry.to_words().is_none());
    }

    #[test]
    fn empty_words_decode_to_none() {
        assert_eq!(RouteTableEntry::from_words(&[0; 6]), None);
        assert_eq!(RouteTableEntry::from_words(&[0; 3]), None);
    }

    #[test]
    fn plan_covers_every_endpoint_pair() {
        let (writes, failed) = plan_distribution(&db(), 96);
        assert!(failed.is_empty(), "{failed:?}");
        // Owners: 3 and 4 (host 1 excluded). Each gets 2 entries
        // (to the two other endpoints).
        assert_eq!(writes.len(), 4);
        let to_ep3: Vec<_> = writes.iter().filter(|w| w.target_dsn == 3).collect();
        assert_eq!(to_ep3.len(), 2);
        assert_eq!(to_ep3[0].offset, 0);
        assert_eq!(to_ep3[1].offset, ENTRY_WORDS);
        // Entries decode back and point at real endpoints.
        for w in &writes {
            let entry = RouteTableEntry::from_words(&w.data).unwrap();
            assert!([1u64, 3, 4].contains(&entry.dest_dsn));
            assert_ne!(entry.dest_dsn, w.target_dsn);
        }
    }

    #[test]
    fn planned_routes_match_db_routes() {
        let d = db();
        let (writes, _) = plan_distribution(&d, 96);
        for w in &writes {
            let entry = RouteTableEntry::from_words(&w.data).unwrap();
            let expected = d
                .route_between(w.target_dsn, entry.dest_dsn, 96)
                .unwrap()
                .unwrap();
            assert_eq!(entry.egress, expected.egress);
            assert_eq!(entry.pool, expected.pool);
        }
    }

    #[test]
    fn decode_route_table_stops_at_empty_entry() {
        let d = db();
        let (writes, _) = plan_distribution(&d, 96);
        let mut table = vec![0u32; 18];
        for w in writes.iter().filter(|w| w.target_dsn == 3) {
            table[usize::from(w.offset)..usize::from(w.offset) + 6].copy_from_slice(&w.data);
        }
        let entries = decode_route_table(&table);
        assert_eq!(entries.len(), 2);
    }
}
