//! The fabric manager's per-packet processing-time model.
//!
//! The paper measured (by profiling a software FM on a Pentium 4, 3 GHz)
//! the time the FM spends processing one PI-4 packet, and found (Fig. 4):
//!
//! - Serial Packet ≈ slowest (most complex bookkeeping),
//! - Serial Device a little faster,
//! - Parallel clearly fastest,
//! - a slight growth with network size (the topology database grows),
//! - device-side processing small and independent of everything.
//!
//! We reproduce those *relationships* with calibrated constants. The
//! experiments of Figs. 8–9 divide these times by a *processing factor*
//! (factor > 1 ⇒ faster manager).

use crate::metrics::Algorithm;
use asi_sim::SimDuration;

/// Per-packet FM processing-time model.
#[derive(Clone, Debug)]
pub struct FmTiming {
    /// Base per-packet time for the Serial Packet algorithm.
    pub serial_packet_base: SimDuration,
    /// Base per-packet time for the Serial Device algorithm.
    pub serial_device_base: SimDuration,
    /// Base per-packet time for the Parallel algorithm.
    pub parallel_base: SimDuration,
    /// Additional time per device already present in the topology database
    /// (models the paper's slight growth with network size).
    pub per_known_device: SimDuration,
    /// Time to process one PI-5 event report.
    pub pi5_time: SimDuration,
    /// Time for the primary to merge one FM-exchange record during
    /// distributed discovery (cheaper than discovery processing: no route
    /// computation, no request generation).
    pub merge_time: SimDuration,
    /// FM processing *speed* factor (paper Figs. 8–9): effective time is
    /// `base / fm_factor`.
    pub fm_factor: f64,
}

impl Default for FmTiming {
    fn default() -> Self {
        FmTiming {
            serial_packet_base: SimDuration::from_ns(19_000),
            serial_device_base: SimDuration::from_ns(16_500),
            parallel_base: SimDuration::from_ns(13_000),
            per_known_device: SimDuration::from_ns(4),
            pi5_time: SimDuration::from_ns(6_000),
            merge_time: SimDuration::from_ns(3_000),
            fm_factor: 1.0,
        }
    }
}

impl FmTiming {
    /// Per-PI-4-packet processing time given the algorithm and the current
    /// size of the topology database.
    pub fn pi4_time(&self, algorithm: Algorithm, known_devices: usize) -> SimDuration {
        assert!(self.fm_factor > 0.0, "FM factor must be positive");
        let base = match algorithm {
            Algorithm::SerialPacket => self.serial_packet_base,
            Algorithm::SerialDevice => self.serial_device_base,
            Algorithm::Parallel => self.parallel_base,
        };
        (base + self.per_known_device * known_devices as u64).scaled(1.0 / self.fm_factor)
    }

    /// Per-PI-5-event processing time.
    pub fn pi5_time(&self) -> SimDuration {
        self.pi5_time.scaled(1.0 / self.fm_factor)
    }

    /// Per-record merge time (distributed discovery).
    pub fn merge_time(&self) -> SimDuration {
        self.merge_time.scaled(1.0 / self.fm_factor)
    }

    /// Returns a copy with a different FM speed factor.
    pub fn with_factor(mut self, fm_factor: f64) -> FmTiming {
        self.fm_factor = fm_factor;
        self
    }
}

/// Closed-form ideal-behaviour model of the paper's Fig. 7(b).
///
/// - **Serial**: the FM is idle while each request crosses the fabric and
///   is serviced, so every packet costs
///   `T_FM + T_prop + T_device + T_prop`.
/// - **Parallel**: transport and device time overlap with FM processing,
///   so after the pipe fills every packet costs `max(T_FM, …) = T_FM`
///   (for realistic parameter ranges) and the total is
///   `pipe-fill + n · T_FM`.
pub mod ideal {
    use asi_sim::SimDuration;

    /// Parameters of the ideal model.
    #[derive(Clone, Copy, Debug)]
    pub struct IdealParams {
        /// FM per-packet processing time.
        pub t_fm: SimDuration,
        /// Device per-packet processing time.
        pub t_device: SimDuration,
        /// One-way propagation (request or response) through the fabric.
        pub t_prop: SimDuration,
    }

    /// Total time for `n` request/response exchanges, serialized.
    pub fn serial_total(p: IdealParams, n: u64) -> SimDuration {
        (p.t_fm + p.t_prop + p.t_device + p.t_prop) * n
    }

    /// Total time for `n` exchanges, fully pipelined.
    pub fn parallel_total(p: IdealParams, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let round_trip = p.t_prop + p.t_device + p.t_prop;
        let per_packet = if p.t_fm >= round_trip {
            p.t_fm
        } else {
            // The FM outruns the fabric: the fabric round-trip paces the
            // pipeline instead (very fast FM / very slow devices —
            // the regime of the paper's Fig. 8(b) left edge).
            round_trip
        };
        // First response must arrive before steady state begins.
        round_trip + per_packet * n
    }

    /// Ratio serial/parallel — the headline improvement.
    pub fn speedup(p: IdealParams, n: u64) -> f64 {
        serial_total(p, n).as_secs_f64() / parallel_total(p, n).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::ideal::*;
    use super::*;

    #[test]
    fn per_packet_ordering_matches_fig4() {
        let t = FmTiming::default();
        let sp = t.pi4_time(Algorithm::SerialPacket, 50);
        let sd = t.pi4_time(Algorithm::SerialDevice, 50);
        let pa = t.pi4_time(Algorithm::Parallel, 50);
        assert!(sp > sd, "SerialPacket must be slowest");
        assert!(sd > pa, "Parallel must be fastest");
    }

    #[test]
    fn time_grows_with_database() {
        let t = FmTiming::default();
        let small = t.pi4_time(Algorithm::Parallel, 10);
        let large = t.pi4_time(Algorithm::Parallel, 500);
        assert!(large > small);
        // Growth is slight: under 20% over the whole Table 1 range.
        assert!(large.as_secs_f64() < small.as_secs_f64() * 1.2);
    }

    #[test]
    fn factor_divides_time() {
        let t = FmTiming::default().with_factor(4.0);
        assert_eq!(
            t.pi4_time(Algorithm::Parallel, 0),
            SimDuration::from_ns(13_000 / 4)
        );
        let slow = FmTiming::default().with_factor(0.25);
        assert_eq!(
            slow.pi4_time(Algorithm::Parallel, 0),
            SimDuration::from_ns(13_000 * 4)
        );
        assert_eq!(
            FmTiming::default().with_factor(2.0).pi5_time(),
            SimDuration::from_ns(3_000)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let t = FmTiming::default().with_factor(0.0);
        let _ = t.pi4_time(Algorithm::Parallel, 0);
    }

    #[test]
    fn ideal_serial_slope_is_constant() {
        let p = IdealParams {
            t_fm: SimDuration::from_us(19),
            t_device: SimDuration::from_us(4),
            t_prop: SimDuration::from_us(1),
        };
        let d10 = serial_total(p, 10);
        let d20 = serial_total(p, 20);
        assert_eq!(d20.as_ps(), 2 * d10.as_ps());
        assert_eq!(serial_total(p, 1), SimDuration::from_us(25));
    }

    #[test]
    fn ideal_parallel_is_fm_bound_normally() {
        let p = IdealParams {
            t_fm: SimDuration::from_us(13),
            t_device: SimDuration::from_us(4),
            t_prop: SimDuration::from_us(1),
        };
        // Steady-state slope = t_fm.
        let d = parallel_total(p, 100) - parallel_total(p, 99);
        assert_eq!(d, SimDuration::from_us(13));
    }

    #[test]
    fn ideal_parallel_becomes_device_bound_when_devices_slow() {
        // Device factor below ~1/3 makes T_device dominate (paper Fig. 8b).
        let p = IdealParams {
            t_fm: SimDuration::from_us(13),
            t_device: SimDuration::from_us(20), // 4us / 0.2
            t_prop: SimDuration::from_us(1),
        };
        let d = parallel_total(p, 100) - parallel_total(p, 99);
        assert_eq!(d, SimDuration::from_us(22));
    }

    #[test]
    fn ideal_speedup_close_to_ratio() {
        let p = IdealParams {
            t_fm: SimDuration::from_us(19),
            t_device: SimDuration::from_us(4),
            t_prop: SimDuration::from_us(1),
        };
        // serial per packet 25us vs parallel 19us... parallel uses its own
        // t_fm in real runs; here same t_fm: speedup tends to 25/19.
        let s = speedup(p, 1000);
        assert!((s - 25.0 / 19.0).abs() < 0.01, "speedup {s}");
    }

    #[test]
    fn ideal_zero_packets() {
        let p = IdealParams {
            t_fm: SimDuration::from_us(13),
            t_device: SimDuration::from_us(4),
            t_prop: SimDuration::from_us(1),
        };
        assert_eq!(parallel_total(p, 0), SimDuration::ZERO);
        assert_eq!(serial_total(p, 0), SimDuration::ZERO);
    }
}
