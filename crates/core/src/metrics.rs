//! Measurements recorded by the fabric manager — the quantities the
//! paper's evaluation section plots.

use asi_sim::{SimDuration, SimTime, TimeSeries};

/// The three discovery implementations the paper compares (§3).
///
/// ```
/// use asi_core::Algorithm;
/// assert_eq!(Algorithm::all().map(|a| a.name()),
///            ["Serial Packet", "Serial Device", "Parallel"]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// ASI-SIG's serialized proposal: one request in flight, breadth-first.
    SerialPacket,
    /// The paper's improvement: serial across devices, parallel port reads
    /// within a device.
    SerialDevice,
    /// The paper's main proposal: propagation-order exploration, requests
    /// injected as soon as responses arrive.
    Parallel,
}

impl Algorithm {
    /// All three, in the paper's presentation order.
    pub fn all() -> [Algorithm; 3] {
        [
            Algorithm::SerialPacket,
            Algorithm::SerialDevice,
            Algorithm::Parallel,
        ]
    }

    /// Paper-style series name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SerialPacket => "Serial Packet",
            Algorithm::SerialDevice => "Serial Device",
            Algorithm::Parallel => "Parallel",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a discovery run started.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiscoveryTrigger {
    /// Initial discovery after fabric bring-up.
    Initial,
    /// Re-discovery after a PI-5 change notification.
    ChangeAssimilation,
    /// Partial (affected-region) re-discovery — extension.
    Partial,
    /// FM failover: the secondary took over.
    Failover,
    /// Warm start: verification of a cached topology snapshot —
    /// extension.
    WarmStart,
}

/// Everything measured during one discovery run.
#[derive(Clone, Debug)]
pub struct DiscoveryRun {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Why it ran.
    pub trigger: DiscoveryTrigger,
    /// When the FM started the run.
    pub started_at: SimTime,
    /// When the pending table / exploration queue drained.
    pub finished_at: SimTime,
    /// PI-4 requests the FM injected.
    pub requests_sent: u64,
    /// Completions (data or error) the FM processed.
    pub responses_received: u64,
    /// Requests that timed out without a completion.
    pub timeouts: u64,
    /// Timed-out requests the retry policy re-issued.
    pub retries: u64,
    /// Requests abandoned after exhausting the retry policy's budget.
    pub abandoned: u64,
    /// Largest number of simultaneously outstanding requests — the peak
    /// pending-table occupancy (1 for the serial algorithms by
    /// construction; the scale sweeps report this per cell).
    pub peak_outstanding: usize,
    /// Management bytes the FM injected.
    pub bytes_sent: u64,
    /// Management bytes the FM received.
    pub bytes_received: u64,
    /// Devices in the database when the run finished.
    pub devices_found: usize,
    /// Links in the database when the run finished.
    pub links_found: usize,
    /// Time each discovery packet finished processing at the FM, with the
    /// packet ordinal as the value (the paper's Fig. 7a series).
    pub fm_timeline: TimeSeries,
    /// Cumulative FM busy time (occupancy) during the run.
    pub fm_busy: SimDuration,
    /// Warm start only: snapshotted devices a verification probe
    /// confirmed unchanged (zero on cold runs).
    pub probes_verified: u64,
    /// Warm start only: snapshotted devices the verification pass could
    /// not confirm (changed, erroring, or silent).
    pub verify_mismatches: u64,
    /// Warm start only: true when the mismatch count exceeded the
    /// fallback threshold and the run completed as a full cold discovery.
    pub warm_fallback: bool,
    /// Fabric managers that took part in this discovery (1 for a
    /// classic single-manager run).
    pub fm_count: u32,
    /// Distributed only: boundary devices this manager probed but ceded
    /// to a rival whose ownership claim landed first.
    pub boundary_conflicts: u64,
    /// Primary failovers behind this run (1 when a promoted secondary
    /// ran it; 0 otherwise).
    pub failovers: u32,
    /// Distributed primary only: time from the end of the primary's own
    /// exploration to the merged database becoming final (zero
    /// elsewhere).
    pub merge_time: SimDuration,
}

impl DiscoveryRun {
    /// Total topology discovery time — the paper's headline metric.
    pub fn discovery_time(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }

    /// Mean per-packet FM processing time over the run (Fig. 4's metric).
    pub fn mean_fm_processing(&self) -> SimDuration {
        if self.responses_received == 0 {
            SimDuration::ZERO
        } else {
            self.fm_busy / self.responses_received
        }
    }

    /// Fraction of the run the FM was busy (1.0 = FM-bound, the parallel
    /// ideal; low values = serialized waiting).
    pub fn fm_utilization(&self) -> f64 {
        let total = self.discovery_time().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.fm_busy.as_secs_f64() / total
        }
    }
}

/// Measurements of one path-distribution phase (extension).
#[derive(Clone, Debug)]
pub struct DistributionRun {
    /// When the first write was injected.
    pub started_at: SimTime,
    /// When the last acknowledgement arrived.
    pub finished_at: SimTime,
    /// Route-table writes issued.
    pub writes: u64,
    /// Writes that failed or timed out.
    pub failures: u64,
    /// Endpoint-destination pairs whose route could not be encoded.
    pub unencodable: u64,
    /// Bytes of route-table traffic injected.
    pub bytes_sent: u64,
}

impl DistributionRun {
    /// Time to restore endpoint paths — the extension's headline metric.
    pub fn distribution_time(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> DiscoveryRun {
        DiscoveryRun {
            algorithm: Algorithm::Parallel,
            trigger: DiscoveryTrigger::Initial,
            started_at: SimTime::from_us(100),
            finished_at: SimTime::from_us(600),
            requests_sent: 10,
            responses_received: 10,
            timeouts: 0,
            retries: 0,
            abandoned: 0,
            peak_outstanding: 1,
            bytes_sent: 260,
            bytes_received: 520,
            devices_found: 5,
            links_found: 4,
            fm_timeline: TimeSeries::new(),
            fm_busy: SimDuration::from_us(130),
            probes_verified: 0,
            verify_mismatches: 0,
            warm_fallback: false,
            fm_count: 1,
            boundary_conflicts: 0,
            failovers: 0,
            merge_time: SimDuration::ZERO,
        }
    }

    #[test]
    fn discovery_time_is_interval() {
        assert_eq!(run().discovery_time(), SimDuration::from_us(500));
    }

    #[test]
    fn mean_processing_divides_busy_time() {
        assert_eq!(run().mean_fm_processing(), SimDuration::from_us(13));
        let mut r = run();
        r.responses_received = 0;
        assert_eq!(r.mean_fm_processing(), SimDuration::ZERO);
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let u = run().fm_utilization();
        assert!((u - 0.26).abs() < 1e-9, "{u}");
    }

    #[test]
    fn algorithm_names_match_paper() {
        assert_eq!(Algorithm::SerialPacket.name(), "Serial Packet");
        assert_eq!(Algorithm::SerialDevice.name(), "Serial Device");
        assert_eq!(Algorithm::Parallel.to_string(), "Parallel");
        assert_eq!(Algorithm::all().len(), 3);
    }
}
