//! `asi-core` — the paper's contribution: the Advanced Switching fabric
//! manager and its topology-discovery implementations.
//!
//! The crate provides:
//!
//! - [`Algorithm`] — the three discovery variants the paper compares:
//!   **Serial Packet** (ASI-SIG's serialized proposal, one request in
//!   flight), **Serial Device** (port reads of the current device in
//!   parallel), and **Parallel** (propagation-order exploration);
//! - [`Engine`] — the I/O-free discovery state machine;
//! - [`FmAgent`] — the fabric-manager agent that runs on a simulated
//!   endpoint (`asi-fabric`), including PI-5 change assimilation (full
//!   re-discovery, as the paper assumes, or the affected-region
//!   extension), request timeouts, and per-run measurements;
//! - [`TopologyDb`] — the discovered-topology database with DSN dedup and
//!   route computation;
//! - [`FmTiming`] — the calibrated per-packet FM processing-time model
//!   (paper Fig. 4) with the speed factors of Figs. 8–9;
//! - [`RetryPolicy`] — pluggable retry/backoff for timed-out requests
//!   (fixed, exponential with deterministic jitter, or deadline-bounded);
//! - [`election`] — FM election claims, roles and failover rules.

#![deny(missing_docs)]

pub mod db;
pub mod distributed;
pub mod election;
pub mod engine;
pub mod fm;
pub mod mcast;
pub mod metrics;
pub mod pathdist;
pub mod retry;
pub mod snapshot;
pub mod timing;

pub use db::{DbDevice, DbDiff, DeviceRoute, TopologyDb};
pub use distributed::{
    certify_merge, report_messages, DistributedConfig, DistributedRole, FmPeer, MergeCertError,
    MergeCertificate, MergeState,
};
pub use election::{elect, role_of, Ballot, Claim, ElectionResult, FmRole};
pub use engine::{Engine, EngineConfig, EngineStats, OutOp, OutRequest};
pub use fm::{
    DiscoveryMode, FmAgent, FmConfig, StandbyConfig, TOKEN_CONFIGURE_MCAST, TOKEN_START_DISCOVERY,
    TOKEN_START_ELECTION, TOKEN_START_STANDBY,
};
pub use mcast::{plan_multicast, McastError, McastWrite};
pub use metrics::{Algorithm, DiscoveryRun, DiscoveryTrigger, DistributionRun};
pub use pathdist::{decode_route_table, plan_distribution, PlannedWrite, RouteTableEntry};
pub use retry::RetryPolicy;
pub use snapshot::{db_from_snapshot, snapshot_db};
pub use timing::{ideal, FmTiming};
