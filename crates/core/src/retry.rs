//! Pluggable retry/backoff policies for PI-4 requests.
//!
//! The paper's FM retries a timed-out request a fixed number of times
//! with a fixed timeout. Under bursty loss that is the worst possible
//! shape: every retry lands back in the same loss burst. A
//! [`RetryPolicy`] generalizes the budget *and* the per-attempt timeout
//! while keeping the discovery engine clockless and deterministic:
//!
//! - the retry *budget* is a pure function of how many retries have
//!   already happened (plus, for [`RetryPolicy::Deadline`], the base
//!   timeout), and
//! - the per-attempt *timeout* is a pure function of
//!   `(base, attempt, salt)`, where the salt is the request id of the
//!   first attempt. Jitter comes from hashing `(salt, attempt)` — no
//!   RNG, no wall clock — so identical runs replay identically.

use asi_sim::SimDuration;

/// When (and for how long) a timed-out PI-4 request is retried.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RetryPolicy {
    /// The paper's scheme: up to `max_retries` re-issues, every attempt
    /// with the same base timeout.
    Fixed {
        /// Re-issues allowed after the first attempt (0 = never retry).
        max_retries: u32,
    },
    /// Exponential backoff: attempt `n` (0-based) waits
    /// `base * 2^min(n, 10)`, optionally spread by deterministic
    /// jitter so a fleet of retries does not re-synchronize into the
    /// same loss burst.
    Exponential {
        /// Re-issues allowed after the first attempt.
        max_retries: u32,
        /// Jitter amplitude in `[0, 1]`: attempt timeouts are scaled by
        /// a factor drawn deterministically from
        /// `[1 - jitter, 1 + jitter]`. 0 disables jitter.
        jitter: f64,
    },
    /// Per-request deadline: keep retrying (at the base timeout) while
    /// the *next* attempt would still finish within `budget` of total
    /// waiting time.
    Deadline {
        /// Total timeout budget across all attempts of one request.
        budget: SimDuration,
    },
}

impl Default for RetryPolicy {
    /// The paper's default: no retries at all.
    fn default() -> Self {
        RetryPolicy::Fixed { max_retries: 0 }
    }
}

/// SplitMix64-style integer hash; the finalizer alone is a good mixer
/// for the small structured inputs we feed it.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Exponent cap: beyond `2^10` the backoff is longer than any
/// plausible discovery run, and capping avoids u64 overflow.
const MAX_BACKOFF_SHIFT: u32 = 10;

impl RetryPolicy {
    /// A fixed policy with `max_retries` re-issues.
    pub fn fixed(max_retries: u32) -> RetryPolicy {
        RetryPolicy::Fixed { max_retries }
    }

    /// Exponential backoff with the default jitter amplitude (±25%).
    pub fn exponential(max_retries: u32) -> RetryPolicy {
        RetryPolicy::Exponential {
            max_retries,
            jitter: 0.25,
        }
    }

    /// A per-request deadline policy.
    pub fn deadline(budget: SimDuration) -> RetryPolicy {
        RetryPolicy::Deadline { budget }
    }

    /// Whether a request that already burned `retries_done` re-issues
    /// may be re-issued once more. `base` is the FM's base request
    /// timeout (only the deadline policy consults it).
    pub fn allows_retry(&self, base: SimDuration, retries_done: u32) -> bool {
        match *self {
            RetryPolicy::Fixed { max_retries } | RetryPolicy::Exponential { max_retries, .. } => {
                retries_done < max_retries
            }
            RetryPolicy::Deadline { budget } => {
                // Attempts 0..=retries_done have spent base * (retries_done
                // + 1) of the budget; allow another only if it still fits.
                base * u64::from(retries_done) + base * 2 <= budget
            }
        }
    }

    /// Timeout of attempt `attempt` (0-based; attempt 0 is the first
    /// issue). `salt` individualizes jitter per request — the engine
    /// passes the request id of the first attempt — and the result is a
    /// pure function of `(base, attempt, salt)`.
    pub fn attempt_timeout(&self, base: SimDuration, attempt: u32, salt: u32) -> SimDuration {
        match *self {
            RetryPolicy::Fixed { .. } | RetryPolicy::Deadline { .. } => base,
            RetryPolicy::Exponential { jitter, .. } => {
                if attempt == 0 {
                    // The first attempt is not a retry: issue it with the
                    // plain base timeout so a loss-free run is untouched.
                    return base;
                }
                let shift = attempt.min(MAX_BACKOFF_SHIFT);
                let backed_off = base * (1u64 << shift);
                if jitter <= 0.0 {
                    return backed_off;
                }
                // u ∈ [0, 1) from 53 hash bits; factor ∈ [1-j, 1+j).
                let bits = mix64((u64::from(salt) << 32) | u64::from(attempt));
                let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
                let factor = 1.0 + jitter * (2.0 * u - 1.0);
                backed_off.scaled(factor)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: SimDuration = SimDuration::from_us(500);

    #[test]
    fn default_is_the_papers_no_retry_scheme() {
        let p = RetryPolicy::default();
        assert_eq!(p, RetryPolicy::Fixed { max_retries: 0 });
        assert!(!p.allows_retry(BASE, 0));
        assert_eq!(p.attempt_timeout(BASE, 0, 7), BASE);
    }

    #[test]
    fn fixed_budget_counts_reissues() {
        let p = RetryPolicy::fixed(3);
        assert!(p.allows_retry(BASE, 0));
        assert!(p.allows_retry(BASE, 2));
        assert!(!p.allows_retry(BASE, 3));
        for attempt in 0..4 {
            assert_eq!(p.attempt_timeout(BASE, attempt, 9), BASE);
        }
    }

    #[test]
    fn exponential_doubles_and_caps() {
        let p = RetryPolicy::Exponential {
            max_retries: 20,
            jitter: 0.0,
        };
        assert_eq!(p.attempt_timeout(BASE, 0, 0), BASE);
        assert_eq!(p.attempt_timeout(BASE, 1, 0), BASE * 2);
        assert_eq!(p.attempt_timeout(BASE, 3, 0), BASE * 8);
        assert_eq!(p.attempt_timeout(BASE, 10, 0), BASE * 1024);
        // Capped: attempt 15 backs off no further than attempt 10.
        assert_eq!(p.attempt_timeout(BASE, 15, 0), BASE * 1024);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_salted() {
        let p = RetryPolicy::exponential(8);
        let a = p.attempt_timeout(BASE, 2, 41);
        let b = p.attempt_timeout(BASE, 2, 41);
        assert_eq!(a, b, "same (base, attempt, salt) must replay");
        let other_salt = p.attempt_timeout(BASE, 2, 42);
        assert_ne!(a, other_salt, "different requests spread apart");
        // Bounded by the ±25% default amplitude around base * 4.
        let nominal = BASE * 4;
        assert!(a >= nominal.scaled(0.75) && a <= nominal.scaled(1.25));
        // Attempt 0 is always exactly the base timeout.
        assert_eq!(p.attempt_timeout(BASE, 0, 41), BASE);
    }

    #[test]
    fn deadline_budget_gates_the_next_attempt() {
        // Budget of 3 base timeouts: attempts 0, 1 and 2 fit.
        let p = RetryPolicy::deadline(BASE * 3);
        assert!(p.allows_retry(BASE, 0), "second attempt fits");
        assert!(p.allows_retry(BASE, 1), "third attempt fits");
        assert!(!p.allows_retry(BASE, 2), "fourth attempt would overrun");
        assert_eq!(p.attempt_timeout(BASE, 5, 0), BASE);
    }

    #[test]
    fn zero_budget_deadline_never_retries() {
        let p = RetryPolicy::deadline(SimDuration::ZERO);
        assert!(!p.allows_retry(BASE, 0));
    }
}
