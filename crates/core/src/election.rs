//! Fabric-manager election and failover support.
//!
//! After power-up, ASI runs a distributed process that selects a primary
//! and a secondary fabric manager among the FM-capable endpoints; if the
//! primary fails, the secondary takes over (spec §fabric management,
//! paper §2). The ordering rule: higher advertised priority wins, DSN
//! breaks ties (higher DSN wins, making the order total).
//!
//! The packet-level realization reuses the ownership capability: each
//! contender walks the fabric writing its claim; a contender that reads a
//! stronger claim anywhere abdicates. The pure comparison/selection logic
//! lives here; the walking is the claim-partitioning mode of the
//! discovery [`crate::engine::Engine`].

/// An FM candidacy claim.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Claim {
    /// Advertised election priority.
    pub priority: u8,
    /// The candidate endpoint's DSN.
    pub dsn: u64,
}

impl Claim {
    /// The spec's ownership-register encoding only carries the DSN; the
    /// priority rides in the candidate's general info. For comparisons we
    /// need both.
    pub fn new(priority: u8, dsn: u64) -> Claim {
        Claim { priority, dsn }
    }
}

impl Ord for Claim {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then(self.dsn.cmp(&other.dsn))
    }
}

impl PartialOrd for Claim {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of an election round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ElectionResult {
    /// The winning claim — this endpoint hosts the primary FM.
    pub primary: Claim,
    /// The runner-up, if any — hosts the secondary FM.
    pub secondary: Option<Claim>,
}

/// Selects primary and secondary managers from the candidate set.
/// Returns `None` when no candidate exists.
pub fn elect(candidates: &[Claim]) -> Option<ElectionResult> {
    let mut sorted: Vec<Claim> = candidates.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let primary = *sorted.last()?;
    let secondary = sorted.len().checked_sub(2).map(|i| sorted[i]);
    Some(ElectionResult { primary, secondary })
}

/// Accumulates the claims one candidate hears during an election window
/// (its own claim included), then resolves them in one shot.
///
/// The PI-9 election broadcasts [`asi_proto::FmMessage::Claim`] packets;
/// each manager folds arriving claims into its ballot with
/// [`Ballot::record`] and, when its election timer fires, asks the
/// ballot for the outcome. Recording is idempotent — re-delivered or
/// duplicate claims cannot change the result — and order-independent,
/// so every manager that heard the same claim set resolves the same
/// primary regardless of packet arrival order.
///
/// ```
/// use asi_core::election::{Ballot, Claim, FmRole};
///
/// let mut ballot = Ballot::new(Claim::new(5, 0xA1));
/// ballot.record(Claim::new(9, 0xB2)); // a stronger rival
/// ballot.record(Claim::new(9, 0xB2)); // duplicates collapse
/// assert_eq!(ballot.claims().len(), 2);
/// assert_eq!(ballot.role(), FmRole::Secondary);
/// assert_eq!(ballot.resolve().unwrap().primary.dsn, 0xB2);
/// ```
#[derive(Clone, Debug)]
pub struct Ballot {
    own: Claim,
    claims: Vec<Claim>,
}

impl Ballot {
    /// A ballot holding only the candidate's own claim.
    pub fn new(own: Claim) -> Ballot {
        Ballot {
            own,
            claims: vec![own],
        }
    }

    /// This candidate's own claim.
    pub fn own(&self) -> Claim {
        self.own
    }

    /// Folds one observed claim into the ballot (idempotent).
    pub fn record(&mut self, claim: Claim) {
        if !self.claims.contains(&claim) {
            self.claims.push(claim);
        }
    }

    /// Every distinct claim heard so far, own claim included.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// Resolves the election over everything heard so far.
    pub fn resolve(&self) -> Option<ElectionResult> {
        elect(&self.claims)
    }

    /// This candidate's role under the current ballot.
    pub fn role(&self) -> FmRole {
        role_of(self.own, &self.claims)
    }
}

/// The role an FM-capable endpoint ends up with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FmRole {
    /// Owns the fabric: runs discovery and configuration.
    Primary,
    /// Hot standby: watches the primary, takes over on failure.
    Secondary,
    /// Lost the election outright.
    Bystander,
}

/// Decides this candidate's role given every claim it observed during its
/// fabric walk (its own claim included).
pub fn role_of(own: Claim, observed: &[Claim]) -> FmRole {
    let mut all = observed.to_vec();
    all.push(own);
    let Some(result) = elect(&all) else {
        return FmRole::Bystander;
    };
    if result.primary == own {
        FmRole::Primary
    } else if result.secondary == Some(own) {
        FmRole::Secondary
    } else {
        FmRole::Bystander
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_dominates_dsn() {
        let a = Claim::new(10, 1);
        let b = Claim::new(5, 999);
        assert!(a > b);
        let r = elect(&[a, b]).unwrap();
        assert_eq!(r.primary, a);
        assert_eq!(r.secondary, Some(b));
    }

    #[test]
    fn dsn_breaks_priority_ties() {
        let a = Claim::new(7, 100);
        let b = Claim::new(7, 200);
        let r = elect(&[a, b]).unwrap();
        assert_eq!(r.primary, b);
        assert_eq!(r.secondary, Some(a));
    }

    #[test]
    fn single_candidate_has_no_secondary() {
        let a = Claim::new(1, 1);
        let r = elect(&[a]).unwrap();
        assert_eq!(r.primary, a);
        assert_eq!(r.secondary, None);
    }

    #[test]
    fn empty_field_elects_nobody() {
        assert!(elect(&[]).is_none());
    }

    #[test]
    fn duplicate_claims_collapse() {
        let a = Claim::new(3, 3);
        let r = elect(&[a, a, a]).unwrap();
        assert_eq!(r.primary, a);
        assert_eq!(r.secondary, None);
    }

    #[test]
    fn roles_are_consistent() {
        let a = Claim::new(9, 10);
        let b = Claim::new(9, 5);
        let c = Claim::new(1, 99);
        let field = [a, b, c];
        assert_eq!(role_of(a, &field), FmRole::Primary);
        assert_eq!(role_of(b, &field), FmRole::Secondary);
        assert_eq!(role_of(c, &field), FmRole::Bystander);
    }

    #[test]
    fn ballot_is_order_independent_and_idempotent() {
        let own = Claim::new(5, 5);
        let rivals = [Claim::new(9, 9), Claim::new(1, 1), Claim::new(9, 2)];
        let mut forward = Ballot::new(own);
        for r in rivals {
            forward.record(r);
            forward.record(r);
        }
        let mut reverse = Ballot::new(own);
        for r in rivals.iter().rev() {
            reverse.record(*r);
        }
        assert_eq!(forward.resolve(), reverse.resolve());
        assert_eq!(forward.claims().len(), 4);
        let result = forward.resolve().unwrap();
        assert_eq!(result.primary, Claim::new(9, 9));
        assert_eq!(result.secondary, Some(Claim::new(9, 2)));
        assert_eq!(forward.role(), FmRole::Bystander);
    }

    #[test]
    fn lone_ballot_elects_itself() {
        let ballot = Ballot::new(Claim::new(0, 7));
        assert_eq!(ballot.role(), FmRole::Primary);
        assert_eq!(ballot.resolve().unwrap().secondary, None);
    }

    #[test]
    fn role_with_partial_observation_still_sound() {
        // A candidate that saw only weaker claims believes it is primary —
        // the walk guarantees the true primary observes (or is observed
        // by) every rival on a connected fabric.
        let own = Claim::new(5, 5);
        assert_eq!(role_of(own, &[Claim::new(1, 1)]), FmRole::Primary);
        assert_eq!(
            role_of(own, &[Claim::new(9, 9), Claim::new(7, 7)]),
            FmRole::Bystander
        );
    }
}
