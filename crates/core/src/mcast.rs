//! Multicast group management (an FM function the paper lists in §2:
//! "multicast group management", with MVC virtual channels and per-switch
//! multicast forwarding tables in the architecture).
//!
//! Given a member set, the manager derives a distribution tree over its
//! discovered topology — the union of BFS shortest paths from the first
//! member to every other member — and turns it into per-device multicast
//! table writes:
//!
//! - each switch on the tree gets the bitmask of its tree ports for the
//!   group (a packet entering on one tree port is replicated to all the
//!   others, so any member can be the source);
//! - each member endpoint gets a non-zero membership flag, which its NIC
//!   filter uses to accept the group's packets.

use crate::db::TopologyDb;
use asi_proto::{CapabilityAddr, DeviceType, CAP_MCAST_TABLE, MCAST_GROUPS};
use std::collections::{HashMap, HashSet, VecDeque};

/// Errors planning a multicast group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McastError {
    /// Group id beyond the devices' table size.
    GroupOutOfRange(u16),
    /// Fewer than two members.
    TooFewMembers,
    /// A member DSN is not in the database.
    UnknownMember(u64),
    /// A member is not an endpoint.
    NotAnEndpoint(u64),
    /// Members are not mutually reachable over discovered links.
    Unreachable(u64),
}

impl core::fmt::Display for McastError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            McastError::GroupOutOfRange(g) => write!(f, "group {g} out of range"),
            McastError::TooFewMembers => write!(f, "a group needs at least two members"),
            McastError::UnknownMember(d) => write!(f, "member {d:#x} not in the database"),
            McastError::NotAnEndpoint(d) => write!(f, "member {d:#x} is not an endpoint"),
            McastError::Unreachable(d) => write!(f, "member {d:#x} unreachable"),
        }
    }
}

impl std::error::Error for McastError {}

/// One multicast-table write: `(target dsn, group offset, mask word)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct McastWrite {
    /// Device whose table is written.
    pub target_dsn: u64,
    /// The group id (capability offset).
    pub group: u16,
    /// Output-port bitmask (switch) or membership flag (endpoint).
    pub mask: u32,
}

impl McastWrite {
    /// The PI-4 address this write targets.
    pub fn addr(&self) -> CapabilityAddr {
        CapabilityAddr {
            capability: CAP_MCAST_TABLE,
            offset: self.group,
        }
    }
}

/// Plans the distribution tree for `group` covering `members`
/// (endpoint DSNs). Returns the table writes, including membership flags
/// for the member endpoints.
pub fn plan_multicast(
    db: &TopologyDb,
    group: u16,
    members: &[u64],
) -> Result<Vec<McastWrite>, McastError> {
    if group >= MCAST_GROUPS {
        return Err(McastError::GroupOutOfRange(group));
    }
    let mut members: Vec<u64> = members.to_vec();
    members.sort_unstable();
    members.dedup();
    if members.len() < 2 {
        return Err(McastError::TooFewMembers);
    }
    for &m in &members {
        let d = db.device(m).ok_or(McastError::UnknownMember(m))?;
        if d.info.device_type != DeviceType::Endpoint {
            return Err(McastError::NotAnEndpoint(m));
        }
    }

    // Adjacency over discovered links.
    let mut adj: HashMap<u64, Vec<(u8, u64, u8)>> = HashMap::new();
    for ((a, ap), (b, bp)) in db.links() {
        adj.entry(a).or_default().push((ap, b, bp));
        adj.entry(b).or_default().push((bp, a, ap));
    }
    for v in adj.values_mut() {
        v.sort_unstable();
    }

    // BFS tree from the first member.
    let root = members[0];
    let mut prev: HashMap<u64, (u64, u8, u8)> = HashMap::new(); // node -> (parent, parent_port, entry_port)
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(root);
    let mut queue = VecDeque::new();
    queue.push_back(root);
    while let Some(n) = queue.pop_front() {
        for &(p, m, mp) in adj.get(&n).into_iter().flatten() {
            if db.contains(m) && seen.insert(m) {
                prev.insert(m, (n, p, mp));
                queue.push_back(m);
            }
        }
    }

    // Union of root→member paths: collect tree ports per device.
    let mut ports: HashMap<u64, u32> = HashMap::new();
    for &m in &members[1..] {
        if !prev.contains_key(&m) {
            return Err(McastError::Unreachable(m));
        }
        let mut cur = m;
        while cur != root {
            let &(parent, parent_port, entry_port) = prev.get(&cur).expect("on tree");
            *ports.entry(parent).or_default() |= 1u32 << parent_port;
            *ports.entry(cur).or_default() |= 1u32 << entry_port;
            cur = parent;
        }
    }

    let mut writes = Vec::new();
    for (&dsn, &mask) in &ports {
        let device = db.device(dsn).expect("tree node known");
        match device.info.device_type {
            DeviceType::Switch => writes.push(McastWrite {
                target_dsn: dsn,
                group,
                mask,
            }),
            DeviceType::Endpoint => {
                // Endpoints get a membership flag rather than a mask.
                if members.contains(&dsn) {
                    writes.push(McastWrite {
                        target_dsn: dsn,
                        group,
                        mask: 1,
                    });
                }
            }
        }
    }
    // Members whose tree port map is empty (the root when it is a lone
    // leaf) still need their membership flag.
    for &m in &members {
        if !writes.iter().any(|w| w.target_dsn == m) {
            writes.push(McastWrite {
                target_dsn: m,
                group,
                mask: 1,
            });
        }
    }
    writes.sort_by_key(|w| w.target_dsn);
    Ok(writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DeviceRoute;
    use asi_proto::{DeviceInfo, TurnPool};

    fn info(dsn: u64, device_type: DeviceType, ports: u16) -> DeviceInfo {
        DeviceInfo {
            device_type,
            dsn,
            port_count: ports,
            max_packet_size: 2048,
            fm_capable: device_type == DeviceType::Endpoint,
            fm_priority: 0,
        }
    }

    fn route0() -> DeviceRoute {
        DeviceRoute {
            egress: 0,
            pool: TurnPool::with_capacity(64),
            entry_port: 0,
            hops: 0,
        }
    }

    /// ep1 -(sw10)- sw11 - ep2; sw10 also has ep3.
    ///
    /// ```text
    ///   ep1 --0 sw10 1-- 0 sw11 1-- ep2
    ///            2
    ///            |
    ///           ep3
    /// ```
    fn db() -> TopologyDb {
        let mut db = TopologyDb::new(1);
        db.insert_device(info(1, DeviceType::Endpoint, 1), route0());
        db.insert_device(info(2, DeviceType::Endpoint, 1), route0());
        db.insert_device(info(3, DeviceType::Endpoint, 1), route0());
        db.insert_device(info(10, DeviceType::Switch, 16), route0());
        db.insert_device(info(11, DeviceType::Switch, 16), route0());
        db.add_link((1, 0), (10, 0));
        db.add_link((10, 1), (11, 0));
        db.add_link((11, 1), (2, 0));
        db.add_link((10, 2), (3, 0));
        db
    }

    #[test]
    fn two_member_tree_is_the_path() {
        let writes = plan_multicast(&db(), 5, &[1, 2]).unwrap();
        let find = |dsn: u64| writes.iter().find(|w| w.target_dsn == dsn);
        // sw10 bridges ports 0 (to ep1) and 1 (to sw11).
        assert_eq!(find(10).unwrap().mask, 0b11);
        // sw11 bridges ports 0 and 1.
        assert_eq!(find(11).unwrap().mask, 0b11);
        // Members flagged; ep3 untouched.
        assert_eq!(find(1).unwrap().mask, 1);
        assert_eq!(find(2).unwrap().mask, 1);
        assert!(find(3).is_none());
        assert!(writes.iter().all(|w| w.group == 5));
    }

    #[test]
    fn three_member_tree_branches_at_the_switch() {
        let writes = plan_multicast(&db(), 0, &[1, 2, 3]).unwrap();
        let find = |dsn: u64| writes.iter().find(|w| w.target_dsn == dsn).unwrap();
        // sw10 now bridges ports 0 (ep1), 1 (toward ep2) and 2 (ep3).
        assert_eq!(find(10).mask, 0b111);
        assert_eq!(find(3).mask, 1);
    }

    #[test]
    fn validation_errors() {
        let d = db();
        assert_eq!(
            plan_multicast(&d, MCAST_GROUPS, &[1, 2]),
            Err(McastError::GroupOutOfRange(MCAST_GROUPS))
        );
        assert_eq!(plan_multicast(&d, 0, &[1]), Err(McastError::TooFewMembers));
        assert_eq!(
            plan_multicast(&d, 0, &[1, 99]),
            Err(McastError::UnknownMember(99))
        );
        assert_eq!(
            plan_multicast(&d, 0, &[1, 10]),
            Err(McastError::NotAnEndpoint(10))
        );
        let mut disconnected = d.clone();
        disconnected.insert_device(info(4, DeviceType::Endpoint, 1), route0());
        assert_eq!(
            plan_multicast(&disconnected, 0, &[1, 4]),
            Err(McastError::Unreachable(4))
        );
    }

    #[test]
    fn duplicate_members_collapse() {
        let writes = plan_multicast(&db(), 1, &[2, 1, 2, 1]).unwrap();
        assert_eq!(writes.iter().filter(|w| w.mask == 1).count(), 2);
    }
}
